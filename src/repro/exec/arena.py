"""Shared-memory column arenas: lane fan-out without pickling.

The ``"batch-parallel-sweep"`` pool fan-out ships every lane task as a
pickled tuple of numpy arrays -- the *entire* pruned index is serialized
once per lane, per page, and the matched pair arrays are pickled again on
the way back.  On the benchmark workload that is tens of megabytes of
serialization for a probe whose compute is microseconds per lane.  This
module replaces both directions with ``multiprocessing.shared_memory``:

* a :class:`ColumnArena` is one shared segment used as a bump allocator.
  The parent pushes the pruned index's columns once per outer block and
  each page's lane columns once per dispatch; workers receive only
  ``(offset, length)`` descriptors and rebuild zero-copy ``np.frombuffer``
  views over the same physical pages.
* :class:`LaneResultSlabs` preallocates one result slab per lane.  Workers
  write their matched-pair arrays (and a count header) straight into their
  slab and return a bare row count; the parent copies the rows back out of
  shared memory.  Only a lane whose matches overflow its slab falls back to
  pickling its arrays -- counted, never wrong.

Both fan-out flavors are exposed as *dispatchers* -- callables with the
``dispatch(shared, lane_tasks)`` signature that
:func:`repro.exec.sweep_parallel.probe_pruned` accepts -- so the engine
can A/B them and every failure path (segment creation refused, arena
overflow, slab overflow) degrades to the pickling path of the identical
computation.

Copy accounting: the module keeps process-wide ``bytes_pickled`` /
``bytes_shared`` counters (see :func:`copy_counters`), fed by both
dispatchers, so benchmarks and the CI perf gate can compare serialization
traffic across modes without instrumenting ``pickle`` itself.

Lifecycle: every live segment is registered in a module registry
(:func:`active_arena_count`); :meth:`ShmLaneDispatcher.close` -- invoked
from the sweep's ``finally`` via the engine -- unlinks them on success,
crash, and degradation paths alike, which the arena leak tests assert.
"""

from __future__ import annotations

import itertools
import os
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.backend import np
from repro.model.errors import SlabCorruptionError

#: Descriptor of one array pushed into an arena: (offset bytes, length rows).
Span = Tuple[int, int]

_SEQ = itertools.count()

#: Live segments created by this process, name -> SharedMemory.  The leak
#: tests assert this drains to empty however a sweep ends.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}

# Process-wide copy-traffic counters (reset by benchmarks per run).
_COPY = {"bytes_pickled": 0, "bytes_shared": 0}


def copy_counters() -> Dict[str, int]:
    """Snapshot of the process-wide copy-traffic counters."""
    return dict(_COPY)


def reset_copy_counters() -> None:
    """Zero the process-wide copy-traffic counters."""
    _COPY["bytes_pickled"] = 0
    _COPY["bytes_shared"] = 0


def active_arena_count() -> int:
    """Shared segments this process created and has not yet unlinked."""
    return len(_LIVE_SEGMENTS)


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create and register a uniquely named shared segment."""
    name = f"repro_arena_{os.getpid():x}_{next(_SEQ):x}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(8, nbytes))
    _LIVE_SEGMENTS[shm.name] = shm
    return shm


def _release_segment(shm: Optional[shared_memory.SharedMemory]) -> None:
    """Close and unlink a segment (idempotent, exception-safe)."""
    if shm is None:
        return
    _LIVE_SEGMENTS.pop(shm.name, None)
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        # Already unlinked (double close) or the platform cleaned it up.
        pass


class ArenaOverflowError(Exception):
    """A push would not fit the arena; the caller falls back to pickling."""


#: Words of the per-lane slab header: ``[count][seq][crc]``.  The sequence
#: number is assigned by the parent per dispatch and the CRC covers the
#: written row prefixes, so a stale slab (a lane that died before writing)
#: or a torn one (corrupted shared pages) fails validation at gather time
#: instead of silently feeding garbage into the join.
_SLAB_HEADER = 3


def _slab_words(capacity: int) -> int:
    """Slab size in int64 words for one lane of *capacity* rows."""
    return _SLAB_HEADER + 4 * capacity


def _slab_crc(arrays) -> int:
    """CRC-32 chained over the four result arrays (row prefixes only)."""
    crc = 0
    for arr in arrays:
        crc = zlib.crc32(np.ascontiguousarray(arr, dtype=np.int64), crc)
    return crc


def _write_slab(slab, slot: int, capacity: int, arrays, seq: int) -> None:
    """Write one lane's result arrays plus validation header into *slab*.

    Shared by the worker-side task and the parent-side test helper so the
    writer and :meth:`LaneResultSlabs.read_lane` can never disagree on the
    layout.
    """
    words = _slab_words(capacity)
    base = slot * words
    count = len(arrays[0])
    slab[base] = count
    slab[base + 1] = seq
    slab[base + 2] = _slab_crc(arrays)
    off = base + _SLAB_HEADER
    for i, arr in enumerate(arrays):
        slab[off + i * capacity : off + i * capacity + count] = arr


class ColumnArena:
    """A bump allocator over one shared-memory segment of ``int64`` columns.

    The parent is the only writer; workers attach read-only views.  Pushes
    are 8-byte aligned by construction (everything stored is ``int64``).
    """

    __slots__ = ("shm", "nbytes", "offset", "total_pushed", "_np")

    def __init__(self, nbytes: int) -> None:
        self.shm = _new_segment(nbytes)
        self.nbytes = self.shm.size
        self.offset = 0
        self.total_pushed = 0
        self._np = np.frombuffer(self.shm.buf, dtype=np.int64)

    def mark(self) -> int:
        """The current bump offset (bytes), for later :meth:`reset_to`."""
        return self.offset

    def reset_to(self, mark: int) -> None:
        """Roll the allocator back to *mark*, reusing the space above it."""
        self.offset = mark

    def push(self, column) -> Span:
        """Copy *column* (any int64 array) into the arena.

        Returns the ``(offset, length)`` descriptor a worker needs to
        rebuild the view.  This is the *single* copy of the fan-out --
        parent memory to shared pages -- replacing a pickle serialization,
        a pipe write, a pipe read, and an unpickle allocation per lane.
        """
        arr = np.ascontiguousarray(column, dtype=np.int64)
        start = self.offset
        end = start + arr.nbytes
        if end > self.nbytes:
            raise ArenaOverflowError(
                f"push of {arr.nbytes} bytes at {start} exceeds arena of {self.nbytes}"
            )
        self._np[start // 8 : end // 8] = arr
        self.offset = end
        self.total_pushed += arr.nbytes
        _COPY["bytes_shared"] += arr.nbytes
        return (start, int(arr.size))

    def view(self, span: Span):
        """Zero-copy view of a pushed column (parent side)."""
        offset, length = span
        return self._np[offset // 8 : offset // 8 + length]

    def close(self) -> None:
        """Release the segment (idempotent)."""
        self._np = None
        _release_segment(self.shm)
        self.shm = None


class LaneResultSlabs:
    """Preallocated per-lane result slabs in one shared segment.

    Slab layout (all ``int64``): ``[count][seq][crc][inner xC][pos xC]
    [start xC][end xC]`` where ``C`` is the per-lane row capacity.  Lanes
    write disjoint slabs, so no synchronization is needed beyond the pool's
    own request/response ordering; the header validates each gather against
    stale or torn writes (see :meth:`read_lane`).
    """

    __slots__ = ("shm", "lanes", "capacity", "total_read", "_words", "_np")

    def __init__(self, lanes: int, capacity: int) -> None:
        self.lanes = lanes
        self.capacity = capacity
        self.total_read = 0
        self._words = _slab_words(capacity)
        self.shm = _new_segment(8 * lanes * self._words)
        self._np = np.frombuffer(self.shm.buf, dtype=np.int64)

    def write(self, slot: int, arrays, seq: int = 0) -> None:
        """Parent-side slab write (tests and tooling; workers use the task)."""
        _write_slab(self._np, slot, self.capacity, arrays, seq)

    def read_lane(self, slot: int, count: int, expected_seq: Optional[int] = None) -> Tuple:
        """Copy lane *slot*'s arrays back out of the slab, validated.

        The copy is mandatory -- the slab is reused by the next dispatch --
        and is the only parent-side copy of the return direction.  The
        header is validated on every read: the stored count must match the
        worker's returned *count*, the CRC must cover the stored rows, and
        (when *expected_seq* is given) the sequence number must be this
        dispatch's -- a slab last written by an earlier dispatch means the
        lane died before writing.  Any mismatch raises
        :class:`~repro.model.errors.SlabCorruptionError`; the dispatcher
        then recomputes the dispatch through the pickled path.
        """
        base = slot * self._words
        cap = self.capacity
        view = self._np
        stored_count = int(view[base])
        stored_seq = int(view[base + 1])
        stored_crc = int(view[base + 2])
        if stored_count != count:
            raise SlabCorruptionError(
                f"slab header count {stored_count} != returned count {count}",
                slot=slot,
            )
        if expected_seq is not None and stored_seq != expected_seq:
            raise SlabCorruptionError(
                f"slab sequence {stored_seq} != dispatch sequence {expected_seq}",
                slot=slot,
            )
        off = base + _SLAB_HEADER
        arrays = tuple(
            view[off + i * cap : off + i * cap + count].copy() for i in range(4)
        )
        if _slab_crc(arrays) != stored_crc:
            raise SlabCorruptionError(
                f"slab CRC mismatch for {count} rows", slot=slot
            )
        self.total_read += 32 * count
        _COPY["bytes_shared"] += 32 * count
        return arrays

    def corrupt(self, slot: int) -> None:
        """Chaos helper: damage lane *slot* so validation must fail.

        Flips bits in the first payload word when rows are present (a torn
        page), or in the stored CRC when the lane is empty.
        """
        base = slot * self._words
        if int(self._np[base]) > 0:
            self._np[base + _SLAB_HEADER] ^= 0x5A5A5A5A
        else:
            self._np[base + 2] ^= 1

    def close(self) -> None:
        """Release the segment (idempotent)."""
        self._np = None
        _release_segment(self.shm)
        self.shm = None


@dataclass(frozen=True)
class ArenaDescriptor:
    """Checkpointable arena *geometry* -- never buffer contents.

    A checkpoint must be able to bring a resumed sweep back to an
    equivalent execution environment, but the arena contents are pure
    scratch (rebuilt from the tuple cache and the partition pages on
    replay), so only the shape is worth persisting.
    """

    data_bytes: int
    slab_rows: int
    lanes: int


# -- worker side --------------------------------------------------------------

#: Worker-process cache of attached segments, name -> SharedMemory.  Entries
#: live for the worker's lifetime; the parent's unlink still reclaims the
#: pages once every attached process exits.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment, once per worker process.

    On Python < 3.13 attaching registers the segment with the resource
    tracker, which then spuriously warns (and double-unlinks) at exit for
    segments the *parent* owns; explicitly unregistering restores the
    pre-3.13 ``track=False`` semantics.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    _ATTACHED[name] = shm
    return shm


def _segment_view(name: str):
    """Whole-segment ``int64`` view of an attached segment."""
    return np.frombuffer(_attach(name).buf, dtype=np.int64)


def _span_view(seg, span: Span):
    offset, length = span
    return seg[offset // 8 : offset // 8 + length]


def _shm_lane_task(args) -> object:
    """Pool entry point: probe one lane entirely through shared memory.

    Receives only names, descriptors, and two scalars; returns the match
    count when the results fit the lane's slab, or the raw arrays (pickled
    by the pool as usual) when they overflow it.
    """
    (
        data_name,
        index_spans,
        min_start,
        stride,
        lane_spans,
        slab_name,
        slot,
        capacity,
        seq,
    ) = args
    from repro.exec.sweep_parallel import _lane_pairs

    seg = _segment_view(data_name)
    comp, starts_sorted, ends_sorted, grp_maxlen = (
        _span_view(seg, span) for span in index_spans
    )
    g, rows, i_starts, i_ends = (_span_view(seg, span) for span in lane_spans)
    pair_inner, pos, cs, ce = _lane_pairs(
        comp,
        starts_sorted,
        ends_sorted,
        grp_maxlen,
        min_start,
        stride,
        g,
        rows,
        i_starts,
        i_ends,
    )
    count = int(pair_inner.size)
    if count > capacity:
        return (pair_inner, pos, cs, ce)
    slab = _segment_view(slab_name)
    _write_slab(slab, slot, capacity, (pair_inner, pos, cs, ce), seq)
    return count


# -- dispatchers --------------------------------------------------------------


def _task_nbytes(task: Sequence) -> int:
    """Approximate serialized payload of a lane task (array bytes only)."""
    total = 0
    for item in task:
        nbytes = getattr(item, "nbytes", None)
        total += nbytes if nbytes is not None else 8
    return total


class PickledLaneDispatcher:
    """The PR-3 fan-out as a dispatcher: ``pool.map`` over pickled tasks.

    Exists so the engine (and the benchmark ablation) can meter the
    serialization traffic of the baseline path through the same counters
    the shared-memory path uses.
    """

    __slots__ = ("pool", "bytes_pickled", "_supervisor")

    def __init__(self, pool, *, supervisor=None) -> None:
        self.pool = pool
        self.bytes_pickled = 0
        self._supervisor = supervisor

    def _map(self, fn, tasks) -> List:
        if self._supervisor is not None:
            return self._supervisor.map(fn, tasks, label="pickled-lanes")
        return self.pool.map(fn, tasks)

    def __call__(self, shared, lane_tasks) -> List[Tuple]:
        from repro.exec.sweep_parallel import _lane_task

        tasks = [shared + task for task in lane_tasks]
        sent = sum(_task_nbytes(task) for task in tasks)
        parts = self._map(_lane_task, tasks)
        received = sum(_task_nbytes(part) for part in parts)
        self.bytes_pickled += sent + received
        _COPY["bytes_pickled"] += sent + received
        return parts

    def close(self) -> None:  # symmetry with ShmLaneDispatcher
        pass


class ShmLaneDispatcher:
    """Zero-pickle lane fan-out over shared-memory arenas.

    Per outer block, the pruned index's four columns are pushed into the
    data arena **once**; per page dispatch, only each lane's four small
    input columns follow.  Workers receive descriptors, compute, and write
    into their result slab.  Every overflow degrades to the pickling path
    of the same computation (counted in :attr:`arena_overflows` /
    :attr:`slab_overflows`).
    """

    __slots__ = (
        "pool",
        "arena",
        "slabs",
        "bytes_pickled",
        "arena_overflows",
        "slab_overflows",
        "slab_poisoned",
        "dispatches",
        "_index_src",
        "_index_spans",
        "_index_mark",
        "_pickled",
        "_supervisor",
    )

    def __init__(
        self, pool, *, data_bytes: int, slab_rows: int, lanes: int, supervisor=None
    ) -> None:
        self.pool = pool
        self.arena = ColumnArena(data_bytes)
        try:
            self.slabs = LaneResultSlabs(lanes, slab_rows)
        except BaseException:
            # The arena segment is already live; without this the failed
            # construction leaked it (no dispatcher exists to close it).
            self.arena.close()
            raise
        self.bytes_pickled = 0
        self.arena_overflows = 0
        self.slab_overflows = 0
        self.slab_poisoned = 0
        self.dispatches = 0
        self._index_src: Optional[Tuple] = None
        self._index_spans: Optional[List[Span]] = None
        self._index_mark = 0
        self._supervisor = supervisor
        self._pickled = PickledLaneDispatcher(pool, supervisor=supervisor)
        if supervisor is not None:
            # Supervisor-owned teardown: segments are reclaimed even when a
            # lane dies mid-gather and the engine's unwind path is abnormal.
            supervisor.add_teardown(self.close)

    @property
    def descriptor(self) -> ArenaDescriptor:
        """Checkpointable geometry of the attached segments."""
        return ArenaDescriptor(
            data_bytes=self.arena.nbytes if self.arena is not None else 0,
            slab_rows=self.slabs.capacity if self.slabs is not None else 0,
            lanes=self.slabs.lanes if self.slabs is not None else 0,
        )

    @property
    def bytes_shared(self) -> int:
        """Bytes moved through shared memory by this dispatcher, both ways."""
        pushed = self.arena.total_pushed if self.arena is not None else 0
        read = self.slabs.total_read if self.slabs is not None else 0
        return pushed + read

    def __call__(self, shared, lane_tasks) -> List[Tuple]:
        try:
            return self._dispatch_shared(shared, lane_tasks)
        except ArenaOverflowError:
            # The planner under-sized the arena for this block/page (e.g. a
            # degraded grant shrank it).  Same computation, pickled.
            self.arena_overflows += 1
            parts = self._pickled(shared, lane_tasks)
            self.bytes_pickled = self._pickled.bytes_pickled
            return parts
        except SlabCorruptionError as damage:
            # A result slab failed CRC/sequence validation: stale write
            # from a dead lane or torn shared pages.  The lane tasks are
            # pure, so recomputing the whole dispatch through the pickled
            # transport is bit-identical -- and bypasses the damaged slab.
            self.slab_poisoned += 1
            if self._supervisor is not None:
                self._supervisor.note_poison(str(damage))
            parts = self._pickled(shared, lane_tasks)
            self.bytes_pickled = self._pickled.bytes_pickled
            return parts

    def _map(self, fn, tasks) -> List:
        if self._supervisor is not None:
            return self._supervisor.map(fn, tasks, label="shm-lanes")
        return self.pool.map(fn, tasks)

    def _dispatch_shared(self, shared, lane_tasks) -> List[Tuple]:
        comp, starts_sorted, ends_sorted, grp_maxlen, min_start, stride = shared
        # One index push per outer block: the block's columns are identified
        # by object identity, and holding the reference pins the id.
        if self._index_src is None or self._index_src[0] is not comp:
            self.arena.reset_to(0)
            self._index_src = None
            self._index_spans = [
                self.arena.push(col)
                for col in (comp, starts_sorted, ends_sorted, grp_maxlen)
            ]
            self._index_src = shared
            self._index_mark = self.arena.mark()

        self.arena.reset_to(self._index_mark)
        slab_name = self.slabs.shm.name
        data_name = self.arena.shm.name
        capacity = self.slabs.capacity
        seq = self.dispatches + 1
        tasks = []
        for slot, task in enumerate(lane_tasks):
            lane_spans = [self.arena.push(col) for col in task]
            tasks.append(
                (
                    data_name,
                    self._index_spans,
                    min_start,
                    stride,
                    lane_spans,
                    slab_name,
                    slot,
                    capacity,
                    seq,
                )
            )
        results = self._map(_shm_lane_task, tasks)
        self.dispatches = seq
        if self._supervisor is not None and self._supervisor.scripted_slab_poison(seq):
            self._corrupt_scripted(results)

        parts: List[Tuple] = []
        for slot, result in enumerate(results):
            if isinstance(result, int):
                pair_inner, pos, cs, ce = self.slabs.read_lane(
                    slot, result, expected_seq=seq
                )
            else:
                # Slab overflow: the worker pickled its arrays back.
                self.slab_overflows += 1
                pair_inner, pos, cs, ce = result
                overflow_bytes = _task_nbytes(result)
                self.bytes_pickled += overflow_bytes
                _COPY["bytes_pickled"] += overflow_bytes
            parts.append((pair_inner, pos, cs, ce))
        return parts

    def _corrupt_scripted(self, results) -> None:
        """Scripted chaos: damage the first slab-resident lane of a gather."""
        for slot, result in enumerate(results):
            if isinstance(result, int):
                self.slabs.corrupt(slot)
                return

    def close(self) -> None:
        """Unlink both segments (idempotent; never raises).

        The engine's ``close`` -- which the sweep's ``finally`` always
        reaches, success or crash -- funnels here, so segment lifetime is
        bounded by the join however it ends.
        """
        if self.arena is not None:
            self.arena.close()
            self.arena = None
        if self.slabs is not None:
            self.slabs.close()
            self.slabs = None
        self._index_src = None
        self._index_spans = None


# -- shared-memory transport for parallel Grace placement ---------------------


def _locate_shm_task(args) -> int:
    """Pool entry point: locate one descriptor-addressed chunk of chronons.

    Reads the chronon column from the shared input segment and writes the
    located partition indices into the same rows of the output segment;
    only the two names, two descriptors, and the boundary list cross the
    pool boundary.
    """
    in_name, span, out_name, boundary_ends = args
    from repro.exec.kernels import get_kernels

    seg = _segment_view(in_name)
    chronons = _span_view(seg, span)
    kernels = get_kernels()
    located = kernels.locate(chronons, kernels.prepare_boundaries(list(boundary_ends)))
    out = _segment_view(out_name)
    offset, length = span
    out[offset // 8 : offset // 8 + length] = np.asarray(located, dtype=np.int64)
    return length


def locate_spans_shared(
    chronons: Sequence[int],
    boundary_ends: Sequence[int],
    pool,
    chunk: int,
    mapper=None,
) -> Optional[List[int]]:
    """Locate *chronons* through a shared-memory scatter/gather.

    The chronon column is written to a shared input segment once; workers
    fill a shared output segment in place.  Returns None when the segments
    cannot be created (the caller falls back to the pickling transport).
    *mapper* overrides ``pool.map`` -- the supervised locate path passes
    :meth:`~repro.resilience.supervisor.LaneSupervisor.map` here.
    """
    n = len(chronons)
    arena = out = None
    try:
        try:
            arena = ColumnArena(8 * n)
            out = ColumnArena(8 * n)
        except Exception:
            return None
        span = arena.push(np.asarray(chronons, dtype=np.int64))
        out.offset = 8 * n  # reserve; workers write via descriptors
        ends = list(boundary_ends)
        tasks = [
            (arena.shm.name, (8 * i, min(chunk, n - i)), out.shm.name, ends)
            for i in range(0, n, chunk)
        ]
        (mapper if mapper is not None else pool.map)(_locate_shm_task, tasks)
        _COPY["bytes_shared"] += 8 * n
        return out.view((0, n)).tolist()
    finally:
        if arena is not None:
            arena.close()
        if out is not None:
            out.close()


__all__ = [
    "ArenaDescriptor",
    "ArenaOverflowError",
    "ColumnArena",
    "LaneResultSlabs",
    "PickledLaneDispatcher",
    "ShmLaneDispatcher",
    "active_arena_count",
    "copy_counters",
    "locate_spans_shared",
    "reset_copy_counters",
]
