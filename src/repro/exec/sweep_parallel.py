"""The ``"batch-parallel-sweep"`` probe executor: interval-pruned
whole-block probing with per-key-bucket lane fan-out.

The temporal migration that threads the sweep's iterations together is
inherently sequential -- iteration ``i+1`` consumes the tuple cache
iteration ``i`` wrote -- but *within* one partition the probe work
decomposes cleanly along the Grace hash buckets of the explicit join
attributes: an inner tuple can only match outer tuples of its own key
group.  This module exploits that twice:

* **Interval-pruned probe.**  The PR-1 batch kernels expand every inner row
  against *every* outer row of its key group (CSR gather) and filter
  afterwards; on temporally wide partitions with short intervals almost all
  candidates die in the intersection filter.  Here the outer block is
  sorted by ``(key group, start chronon)`` once per block, each group's
  maximum interval length is reduced with ``np.maximum.reduceat``, and each
  inner row then probes only the start-window ``[inner.start - maxlen,
  inner.end]`` of its group, located with two ``searchsorted`` calls on a
  composite ``group * stride + (start - min_start)`` key.  Candidates that
  cannot intersect are never materialized.  The exact intersection, the
  exactly-once owner filter, and the (inner row, outer insertion order)
  emission sort still run afterwards, so results are bit-identical to the
  oracle.  Blocks whose composite key would overflow ``int64`` fall back to
  the unpruned PR-1 CSR probe.
* **Lane fan-out.**  Key groups are dealt round-robin onto ``lanes`` lanes
  (``group_rank % lanes`` -- a deterministic function of the block, never
  Python's salted ``hash``).  Lanes are data-parallel and side-effect-free:
  each returns flat pair arrays, the parent concatenates and applies the
  final emission sort, so the output is a pure function of the input
  whatever the lane count or pool geometry.  With >= 2 effective workers
  the lanes run on a ``multiprocessing`` pool; pool failure of any kind
  degrades to in-process execution of the identical computation, mirroring
  :mod:`repro.exec.parallel`.

All charged I/O stays in the caller (the sweep loop and its prefetch
pipeline); like the PR-1 kernels, everything here is pure in-memory
compute, which is what keeps the statistics independent of worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.backend import HAVE_NUMPY, np
from repro.exec.batch import CodeTranslator
from repro.exec.kernels import Kernels, Match, get_kernels
from repro.model.vtuple import VTTuple
from repro.resilience.supervisor import LANE_POOL_ERRORS
from repro.time.interval import Interval

#: Arena geometry used when no multibuffer plan is supplied: one generous
#: data arena and per-lane slabs sized for a full page's worth of matches.
DEFAULT_ARENA_BYTES = 1 << 22
DEFAULT_SLAB_ROWS = 1 << 16

#: Pairs-per-page threshold below which lanes always run in-process: pool
#: round-trip latency costs more than the probe itself.
MIN_LANE_ROWS = 2048

#: Composite-key headroom guard: ``n_groups * stride`` must stay below this
#: bound or the pruned index falls back to the unpruned CSR probe.
_COMPOSITE_LIMIT = 2**62

#: Tests set this to force multi-lane pools on machines with fewer cores
#: than requested workers (the result must not depend on it).
OVERSUBSCRIBE = False


def default_sweep_workers() -> int:
    """Worker-count default: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def effective_sweep_workers(requested: Optional[int] = None) -> int:
    """Lanes actually used for *requested* workers on this machine.

    Oversubscribing a machine buys nothing for pure compute, so the count
    is clamped to the visible cores unless a test forces otherwise.
    """
    wanted = default_sweep_workers() if requested is None else max(1, requested)
    if OVERSUBSCRIBE:
        return wanted
    return max(1, min(wanted, os.cpu_count() or 1))


# -- numpy pruned index ------------------------------------------------------


class PrunedProbeIndex:
    """An outer block sorted by (key group, start) with window metadata.

    ``fallback`` is set (and every other field None) when the composite
    search key cannot fit ``int64``; the engine then routes the block
    through the unpruned PR-1 CSR probe.
    """

    __slots__ = (
        "block",
        "order",
        "uniq_ids",
        "n_groups",
        "starts_sorted",
        "ends_sorted",
        "comp",
        "grp_maxlen",
        "min_start",
        "stride",
        "fallback",
    )

    def __init__(self, block: Sequence[VTTuple], interner, translator=None) -> None:
        columnar = translator is not None and hasattr(block, "columns")
        # A ColumnarBlock stays packed (rows materialize on emission only);
        # anything else is snapshotted into a list as before.
        self.block = block if columnar else list(block)
        self.fallback = None
        n = len(self.block)
        if n == 0:
            self.order = np.empty(0, np.int64)
            self.uniq_ids = np.empty(0, np.int64)
            self.n_groups = 0
            self.starts_sorted = np.empty(0, np.int64)
            self.ends_sorted = np.empty(0, np.int64)
            self.comp = np.empty(0, np.int64)
            self.grp_maxlen = np.empty(0, np.int64)
            self.min_start = 0
            self.stride = 1
            return
        if columnar:
            key_ids, starts, ends = self.block.columns(translator)
        else:
            key_ids = np.fromiter(
                (interner.intern(tup.key) for tup in self.block), np.int64, count=n
            )
            starts = np.fromiter(
                (tup.valid.start for tup in self.block), np.int64, count=n
            )
            ends = np.fromiter((tup.valid.end for tup in self.block), np.int64, count=n)
        # Sort by (group, start); ties keep arbitrary relative order -- the
        # emission sort restores block insertion order from ``order``.
        self.order = np.lexsort((starts, key_ids))
        ids_sorted = key_ids[self.order]
        self.starts_sorted = starts[self.order]
        self.ends_sorted = ends[self.order]
        self.uniq_ids, group_first, counts = np.unique(
            ids_sorted, return_index=True, return_counts=True
        )
        self.n_groups = int(self.uniq_ids.size)
        self.grp_maxlen = np.maximum.reduceat(
            self.ends_sorted - self.starts_sorted, group_first
        )
        self.min_start = int(self.starts_sorted.min())
        span = int(self.starts_sorted.max()) - self.min_start
        self.stride = span + 2
        if self.n_groups * self.stride >= _COMPOSITE_LIMIT:
            from repro.exec.kernels import _NumpyProbeIndex

            self.fallback = _NumpyProbeIndex(self.block, interner)
            return
        rank = np.repeat(
            np.arange(self.n_groups, dtype=np.int64), counts.astype(np.int64)
        )
        self.comp = rank * self.stride + (self.starts_sorted - self.min_start)


def _lane_pairs(
    comp,
    starts_sorted,
    ends_sorted,
    grp_maxlen,
    min_start: int,
    stride: int,
    g,
    i_rows,
    i_starts,
    i_ends,
):
    """One lane's probe: window-search its inner rows, expand, intersect.

    Pure array-in/array-out (picklable for pool dispatch).  Returns
    ``(pair_inner_rows, pair_pos, common_starts, common_ends)`` where
    ``pair_pos`` indexes the *sorted* outer block; emission mapping and the
    owner filter stay in the caller, which holds the boundary metadata.
    """
    span_hi = stride - 2
    lo_off = np.clip(i_starts - grp_maxlen[g] - min_start, 0, span_hi + 1)
    hi_off = np.clip(i_ends - min_start, -1, span_hi)
    lo = np.searchsorted(comp, g * stride + lo_off, side="left")
    hi = np.searchsorted(comp, g * stride + hi_off, side="right")
    counts = np.maximum(hi - lo, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, np.int64)
        return empty, empty, empty, empty
    cum = np.cumsum(counts)
    group_start = cum - counts
    pos = np.repeat(lo - group_start, counts) + np.arange(total, dtype=np.int64)
    inner_starts = np.repeat(i_starts, counts)
    inner_ends = np.repeat(i_ends, counts)
    common_start = np.maximum(starts_sorted[pos], inner_starts)
    common_end = np.minimum(ends_sorted[pos], inner_ends)
    kept = np.nonzero(common_start <= common_end)[0]
    if kept.size == 0:
        empty = np.empty(0, np.int64)
        return empty, empty, empty, empty
    pair_inner = np.repeat(i_rows, counts)[kept]
    return pair_inner, pos[kept], common_start[kept], common_end[kept]


def _lane_task(args) -> Tuple:
    """Pool entry point: unpack one lane's work tuple and run it."""
    return _lane_pairs(*args)


def probe_pruned(
    index: PrunedProbeIndex,
    key_ids,
    starts,
    ends,
    boundaries,
    part_index: int,
    direction: str,
    *,
    lanes: int = 1,
    pool=None,
    dispatch=None,
) -> Tuple:
    """Probe one inner page's columns against a pruned index.

    Returns ``(pair_outer_rows, pair_inner_rows, common_starts,
    common_ends)`` in the oracle's emission order -- (inner row, outer
    block insertion order) -- as flat arrays.  ``lanes``/``pool`` control
    the fan-out; *dispatch* (a ``dispatch(shared, lane_tasks)`` callable,
    e.g. an :class:`~repro.exec.arena.ShmLaneDispatcher`) replaces the raw
    ``pool.map`` when given.  The output is identical for every lane
    count and for every fan-out flavor, pool or in-process.
    """
    empty = np.empty(0, np.int64)
    n = int(key_ids.shape[0]) if hasattr(key_ids, "shape") else len(key_ids)
    if n == 0 or index.n_groups == 0:
        return empty, empty, empty, empty
    g = np.searchsorted(index.uniq_ids, key_ids)
    g_safe = np.minimum(g, index.n_groups - 1)
    valid = (key_ids >= 0) & (index.uniq_ids[g_safe] == key_ids)
    rows = np.nonzero(valid)[0]
    if rows.size == 0:
        return empty, empty, empty, empty
    g = g_safe[rows]
    i_starts = np.asarray(starts, dtype=np.int64)[rows]
    i_ends = np.asarray(ends, dtype=np.int64)[rows]

    shared = (
        index.comp,
        index.starts_sorted,
        index.ends_sorted,
        index.grp_maxlen,
        index.min_start,
        index.stride,
    )
    lanes = max(1, lanes)
    if lanes == 1 or rows.size < MIN_LANE_ROWS:
        parts = [_lane_pairs(*shared, g, rows, i_starts, i_ends)]
    else:
        lane_of = g % lanes
        lane_tasks = []
        for lane in range(lanes):
            members = np.nonzero(lane_of == lane)[0]
            if members.size:
                lane_tasks.append(
                    (g[members], rows[members], i_starts[members], i_ends[members])
                )
        if dispatch is not None:
            parts = dispatch(shared, lane_tasks)
        elif pool is not None:
            parts = pool.map(_lane_task, [shared + task for task in lane_tasks])
        else:
            parts = [_lane_pairs(*shared, *task) for task in lane_tasks]

    pair_inner = np.concatenate([p[0] for p in parts]) if parts else empty
    if pair_inner.size == 0:
        return empty, empty, empty, empty
    pos = np.concatenate([p[1] for p in parts])
    common_start = np.concatenate([p[2] for p in parts])
    common_end = np.concatenate([p[3] for p in parts])

    if boundaries is not None:
        owner = common_end if direction == "backward" else common_start
        owner_part = np.minimum(
            np.searchsorted(boundaries.ends_np, owner, side="left"),
            boundaries.n - 1,
        )
        owned = np.nonzero(owner_part == part_index)[0]
        if owned.size == 0:
            return empty, empty, empty, empty
        pair_inner = pair_inner[owned]
        pos = pos[owned]
        common_start = common_start[owned]
        common_end = common_end[owned]

    pair_outer = index.order[pos]
    # Restore the oracle's emission order: inner row ascending, then outer
    # block insertion order (the lanes and the start-sorted windows both
    # scrambled it).
    perm = np.lexsort((pair_outer, pair_inner))
    return pair_outer[perm], pair_inner[perm], common_start[perm], common_end[perm]


# -- pure-Python pruned index ------------------------------------------------


class PrunedProbeIndexPython:
    """Per-key start-sorted entry lists with window metadata (no numpy)."""

    __slots__ = ("block", "groups", "maxlen")

    def __init__(self, block: Sequence[VTTuple]) -> None:
        self.block = list(block)
        #: key -> (starts list, [(start, end, block row)]) sorted by start.
        self.groups: Dict[Tuple, Tuple[List[int], List[Tuple[int, int, int]]]] = {}
        self.maxlen: Dict[Tuple, int] = {}
        staging: Dict[Tuple, List[Tuple[int, int, int]]] = {}
        for row, tup in enumerate(self.block):
            staging.setdefault(tup.key, []).append(
                (tup.valid.start, tup.valid.end, row)
            )
        for key, entries in staging.items():
            entries.sort()
            self.groups[key] = ([entry[0] for entry in entries], entries)
            self.maxlen[key] = max(end - start for start, end, _ in entries)


def probe_pruned_python(
    index: PrunedProbeIndexPython,
    page: Sequence[VTTuple],
    boundaries,
    part_index: int,
    direction: str,
) -> List[Tuple[int, int, int, int]]:
    """The numpy-free window probe: identical output, bisect windows.

    Returns ``(outer row, inner row, common start, common end)`` tuples in
    the oracle's emission order.
    """
    backward = direction == "backward"
    ends = boundaries.ends if boundaries is not None else None
    last = boundaries.n - 1 if boundaries is not None else 0
    out: List[Tuple[int, int, int, int]] = []
    for row, inner_tup in enumerate(page):
        group = index.groups.get(inner_tup.key)
        if group is None:
            continue
        starts_list, entries = group
        i_start = inner_tup.valid.start
        i_end = inner_tup.valid.end
        lo = bisect_left(starts_list, i_start - index.maxlen[inner_tup.key])
        for outer_start, outer_end, outer_row in entries[lo:]:
            if outer_start > i_end:
                break
            cs = outer_start if outer_start > i_start else i_start
            ce = outer_end if outer_end < i_end else i_end
            if cs > ce:
                continue
            if ends is not None:
                owner = ce if backward else cs
                if min(bisect_left(ends, owner), last) != part_index:
                    continue
            out.append((outer_row, row, cs, ce))
    out.sort(key=lambda pair: (pair[1], pair[0]))
    return out


# -- the engine --------------------------------------------------------------


class PipelinedSweepEngine:
    """Drop-in probe engine for the sweep's ``"batch-parallel-sweep"`` mode.

    Satisfies the same ``build_index`` / ``process_page`` contract as the
    tuple and batch engines of :mod:`repro.core.joiner` (duck-typed -- all
    I/O stays in the caller) and emits bit-identical matches and migration
    rows; only the in-memory algorithm and its parallelism differ.
    """

    def __init__(
        self,
        partition_map,
        direction: str,
        *,
        workers: Optional[int] = None,
        kernels: Optional[Kernels] = None,
        obs=None,
        zero_copy: bool = False,
        interner=None,
        arena_plan=None,
        supervisor=None,
        report=None,
    ) -> None:
        self._kernels = kernels if kernels is not None else get_kernels()
        self._boundaries = self._kernels.prepare_boundaries(partition_map)
        # An injected interner (the service's epoch-keyed shared one) skips
        # the rebuild-per-join churn; id values never affect results, so
        # sharing is sound (see KeyInterner docstring).
        self._interner = interner if interner is not None else self._kernels.make_interner()
        self._translator = (
            CodeTranslator(self._interner) if self._kernels.use_numpy else None
        )
        self._direction = direction
        # A LaneSupervisor owns the pool (and the lane count, which its
        # quarantine ladder may shrink mid-sweep); without one the engine
        # manages a bare pool exactly as before.
        self.supervision = supervisor
        self._lanes = effective_sweep_workers(workers)
        self._pool = None
        self._pool_broken = self._kernels.use_numpy is False  # lanes ship arrays
        self.pool_dispatches = 0
        self.pool_fallbacks = 0
        #: Fan the lanes out through shared-memory arenas instead of pickled
        #: ``pool.map`` tasks (the ``"zero-copy-sweep"`` mode).
        self.zero_copy = zero_copy
        self._arena_plan = arena_plan
        self._arena_broken = False
        self._dispatcher = None
        # Observation only (trace events on pool lifecycle transitions);
        # the probe computation never consults it.
        self._obs = obs
        # Degradation sink (lane failures, pool fallbacks); observation
        # only -- the probe computation never consults it.
        self._report = report

    # -- pool management ----------------------------------------------------

    @property
    def lanes(self) -> int:
        """Current lane count (shrinks when the supervisor quarantines)."""
        if self.supervision is not None:
            return self.supervision.lanes
        return self._lanes

    def _ensure_pool(self):
        if self.supervision is not None:
            pool = self.supervision.ensure_pool()
            if pool is None and not self._pool_broken:
                # Retired (or never spawnable): probes run in-process from
                # here on.  The supervisor already recorded why.
                self._pool_broken = True
                self.pool_fallbacks += 1
            return pool
        if self._pool is None and not self._pool_broken and self.lanes >= 2:
            try:
                self._pool = multiprocessing.get_context().Pool(processes=self.lanes)
                if self._obs is not None:
                    self._obs.event("pool-start", lanes=self.lanes)
            except LANE_POOL_ERRORS:
                # Restricted environments (sandboxes, some CI runners)
                # cannot spawn; same computation, one process.
                self._pool_broken = True
                self.pool_fallbacks += 1
                self._degrade("pool-fallback", "lane pool could not be spawned")
                if self._obs is not None:
                    self._obs.event("pool-fallback", reason="spawn-failed")
        return self._pool

    def _degrade(self, kind: str, detail: str) -> None:
        if self._report is not None:
            self._report.record_degradation(kind, detail)

    def _ensure_dispatcher(self, pool):
        """The fan-out dispatcher for *pool* (created lazily, like the pool).

        Zero-copy mode gets a shared-memory dispatcher, falling back to the
        metered pickling dispatcher when segments cannot be created (e.g.
        no ``/dev/shm`` in a sandbox); the classic mode always gets the
        metered pickling dispatcher.  Either way the computation -- and
        thus the result -- is identical.
        """
        from repro.exec import arena as arena_mod

        if self._dispatcher is not None:
            return self._dispatcher
        if self.zero_copy and not self._arena_broken:
            plan = self._arena_plan
            try:
                self._dispatcher = arena_mod.ShmLaneDispatcher(
                    pool,
                    data_bytes=(
                        plan.data_bytes if plan is not None else DEFAULT_ARENA_BYTES
                    ),
                    slab_rows=(
                        plan.slab_rows if plan is not None else DEFAULT_SLAB_ROWS
                    ),
                    lanes=self.lanes,
                    supervisor=self.supervision,
                )
                if self._obs is not None:
                    desc = self._dispatcher.descriptor
                    self._obs.event(
                        "arena-start",
                        data_bytes=desc.data_bytes,
                        slab_rows=desc.slab_rows,
                        lanes=desc.lanes,
                    )
                return self._dispatcher
            except Exception:
                self._arena_broken = True
                self._degrade("arena-fallback", "shared segments could not be created")
                if self._obs is not None:
                    self._obs.event("arena-fallback", reason="segment-create-failed")
        self._dispatcher = arena_mod.PickledLaneDispatcher(
            pool, supervisor=self.supervision
        )
        return self._dispatcher

    @property
    def arena_descriptor(self):
        """Checkpointable arena geometry, or None when no arena is live."""
        dispatcher = self._dispatcher
        if dispatcher is None or not hasattr(dispatcher, "descriptor"):
            return None
        return dispatcher.descriptor

    def copy_traffic(self) -> Dict[str, int]:
        """Serialization/copy counters of the active fan-out (for obs)."""
        dispatcher = self._dispatcher
        return {
            "bytes_pickled": getattr(dispatcher, "bytes_pickled", 0),
            "bytes_shared": getattr(dispatcher, "bytes_shared", 0),
            "arena_overflows": getattr(dispatcher, "arena_overflows", 0),
            "slab_overflows": getattr(dispatcher, "slab_overflows", 0),
            "slab_poisoned": getattr(dispatcher, "slab_poisoned", 0),
        }

    def close(self) -> None:
        """Shut the lane pool down (idempotent; the sweep's finally calls it).

        Also unlinks the shared-memory arenas, so the segments' lifetime is
        bounded by the join on every path -- success, crash unwinding, and
        pool-degradation all funnel here.  Under supervision the segments
        are additionally registered as supervisor teardowns, so closing the
        supervisor reclaims them too.
        """
        if self._dispatcher is not None:
            try:
                self._dispatcher.close()
            except Exception:
                pass
            self._dispatcher = None
        if self.supervision is not None:
            self.supervision.close()
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:
                pass
            self._pool = None

    # -- engine contract ----------------------------------------------------

    @property
    def supports_columnar_blocks(self) -> bool:
        """Whether :meth:`build_index` consumes packed ColumnarBlocks."""
        return self._kernels.use_numpy

    def build_index(self, block: Sequence[VTTuple]):
        if self._kernels.use_numpy:
            return PrunedProbeIndex(block, self._interner, translator=self._translator)
        return PrunedProbeIndexPython(block)

    def process_page(
        self,
        index_obj,
        page: Sequence[VTTuple],
        part_index: int,
        next_index: Optional[int],
        want_migration: bool,
    ) -> Tuple[List[Match], List[int]]:
        batch = self._kernels.page_batch(page, self._interner, translator=self._translator)
        if self._kernels.use_numpy:
            matches = self._probe_numpy(index_obj, batch, part_index)
        else:
            matches = [
                (index_obj.block[o], page[i], Interval(cs, ce))
                for o, i, cs, ce in probe_pruned_python(
                    index_obj, page, self._boundaries, part_index, self._direction
                )
            ]
        migrate_rows: List[int] = []
        if want_migration and next_index is not None:
            migrate_rows = self._kernels.migration_rows(
                batch, self._boundaries, next_index
            )
        return matches, migrate_rows

    def _probe_numpy(self, index_obj: PrunedProbeIndex, batch, part_index: int):
        if index_obj.fallback is not None:
            return self._kernels.probe(
                index_obj.fallback, batch, self._boundaries, part_index, self._direction
            )
        pool = self._ensure_pool() if self.lanes >= 2 else None
        dispatch = self._ensure_dispatcher(pool) if pool is not None else None
        try:
            pair_outer, pair_inner, cs, ce = probe_pruned(
                index_obj,
                batch.key_ids,
                batch.starts,
                batch.ends,
                self._boundaries,
                part_index,
                self._direction,
                lanes=self.lanes if pool is not None else 1,
                pool=pool,
                dispatch=dispatch,
            )
            if pool is not None:
                self.pool_dispatches += 1
        except LANE_POOL_ERRORS:
            # An unsupervised pool dying surfaces here (the supervisor
            # recovers these internally); degrade to one process for the
            # rest of the sweep -- identical computation, same result.
            self.close()
            self._pool_broken = True
            self.pool_fallbacks += 1
            self._degrade("pool-fallback", "lane pool failed mid-dispatch")
            if self._obs is not None:
                self._obs.event("pool-fallback", reason="worker-died")
            pair_outer, pair_inner, cs, ce = probe_pruned(
                index_obj,
                batch.key_ids,
                batch.starts,
                batch.ends,
                self._boundaries,
                part_index,
                self._direction,
            )
        block = index_obj.block
        inner_tuples = batch.tuples
        return [
            (block[o], inner_tuples[i], Interval(s, e))
            for o, i, s, e in zip(
                pair_outer.tolist(), pair_inner.tolist(), cs.tolist(), ce.tolist()
            )
        ]


__all__ = [
    "MIN_LANE_ROWS",
    "PipelinedSweepEngine",
    "PrunedProbeIndex",
    "PrunedProbeIndexPython",
    "default_sweep_workers",
    "effective_sweep_workers",
    "probe_pruned",
    "probe_pruned_python",
]
