"""Columnar batches: the unit of work of the vectorized kernels.

A :class:`PageBatch` is a page of tuples decomposed into parallel columns --
interned key ids, start chronons, end chronons, and row indices back into
the original tuple list.  It is built **once per page** as the page passes
through memory; every kernel then operates on whole columns instead of
revisiting each tuple.

Keys are arbitrary Python tuples (the explicit join attributes), so they
cannot live in a numeric column directly.  A :class:`KeyInterner` maps each
distinct key to a small integer id; the build side of a join *interns*
(assigns fresh ids), the probe side *looks up* (unknown keys map to ``-1``
and can never match, which is exactly the hash-join semantics of
``probe_index.get(key, ())``).

The module also provides the batch (de)composition helpers shared by the
model layer and the columnar serialization format
(:func:`tuples_to_columns` / :func:`tuples_from_columns`), plus the
zero-copy batch path: :meth:`PageBatch.from_columnar` lifts a
:class:`~repro.storage.columnar_page.ColumnarPage` into a batch whose time
columns are views over the page buffer and whose key ids come from one
vectorized gather through a :class:`CodeTranslator` table instead of a
Python dict lookup per tuple.
"""

from __future__ import annotations

import threading

from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exec.backend import HAVE_NUMPY, np
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


class KeyInterner:
    """Bidirectional key <-> dense-integer-id map shared across batches.

    ``version`` counts fresh interns; translation-table caches keyed on it
    (:class:`CodeTranslator`) invalidate exactly when the id space grew.
    The concrete id *values* never influence join results -- match sets are
    id-agnostic and emission order is restored by a final row-index sort --
    which is what makes sharing one interner across queries sound.
    """

    __slots__ = ("_ids", "version")

    def __init__(self) -> None:
        self._ids: Dict[Tuple, int] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, key: Tuple) -> int:
        """Id of *key*, assigning the next dense id on first sight."""
        ids = self._ids
        found = ids.get(key)
        if found is None:
            found = len(ids)
            ids[key] = found
            self.version += 1
        return found

    def lookup(self, key: Tuple) -> int:
        """Id of *key*, or ``-1`` when the key was never interned."""
        return self._ids.get(key, -1)

    def keys_in_id_order(self) -> List[Tuple]:
        """Every interned key, ordered by assigned id (snapshot copy)."""
        return list(self._ids)


class SharedKeyInterner(KeyInterner):
    """A :class:`KeyInterner` safe to share across a service's sessions.

    The service runs concurrent queries on worker threads; two joins over
    the same relation version may intern simultaneously.  ``intern`` is a
    read-modify-write on the id dict, so it takes a lock; ``lookup`` stays
    lock-free (a single ``dict.get``, atomic under the GIL, and ids are
    never reassigned or removed).
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def intern(self, key: Tuple) -> int:
        with self._lock:
            return super().intern(key)


class PageBatch:
    """One page of tuples in columnar form.

    Attributes:
        tuples: the page's tuples, in page order (kernels return row indices
            into this list; emission still hands whole :class:`VTTuple`
            objects to the pair function).
        key_ids: per-row interned key id (``-1`` = key unknown to the build
            side), or None when built without an interner (the partitioner
            only needs the time columns).
        starts: per-row valid-time start chronon.
        ends: per-row valid-time end chronon.

    Columns are numpy ``int64`` arrays under the numpy backend and plain
    lists under the fallback; the matching kernels consume them natively.
    """

    __slots__ = ("tuples", "key_ids", "starts", "ends")

    def __init__(self, tuples, key_ids, starts, ends) -> None:
        self.tuples = tuples
        self.key_ids = key_ids
        self.starts = starts
        self.ends = ends

    def __len__(self) -> int:
        return len(self.tuples)

    @classmethod
    def from_tuples(
        cls,
        tuples: Sequence[VTTuple],
        interner: Optional[KeyInterner] = None,
        *,
        intern: bool = False,
        use_numpy: bool = HAVE_NUMPY,
    ) -> "PageBatch":
        """Decompose *tuples* into columns.

        Args:
            tuples: the page (any tuple sequence works; pages are typical).
            interner: key dictionary shared with the other batches of the
                join; omit when key columns are not needed.
            intern: assign fresh ids for unseen keys (build side) instead of
                mapping them to ``-1`` (probe side).
            use_numpy: emit numpy columns; callers pass their kernels'
                backend so explicitly-chosen fallback kernels get lists even
                when numpy is importable.
        """
        n = len(tuples)
        key_ids: Optional[Sequence[int]]
        if interner is None:
            key_ids = None
        elif intern:
            key_ids = [interner.intern(tup.key) for tup in tuples]
        else:
            key_ids = [interner.lookup(tup.key) for tup in tuples]
        starts: Sequence[int] = [tup.valid.start for tup in tuples]
        ends: Sequence[int] = [tup.valid.end for tup in tuples]
        if use_numpy:
            if not HAVE_NUMPY:
                raise RuntimeError("numpy batches requested but numpy is unavailable")
            if n:
                starts = np.array(starts, dtype=np.int64)
                ends = np.array(ends, dtype=np.int64)
                if key_ids is not None:
                    key_ids = np.array(key_ids, dtype=np.int64)
            else:
                # Normalized empty columns: every column is int64 even when
                # the page is empty, so downstream concatenation/sorting
                # never sees a stray float64 from ``np.array([])``.
                starts = np.empty(0, np.int64)
                ends = np.empty(0, np.int64)
                if key_ids is not None:
                    key_ids = np.empty(0, np.int64)
        return cls(list(tuples), key_ids, starts, ends)

    @classmethod
    def from_columnar(
        cls,
        page,
        interner: Optional[KeyInterner] = None,
        *,
        intern: bool = False,
        use_numpy: bool = HAVE_NUMPY,
        translator: Optional["CodeTranslator"] = None,
    ) -> "PageBatch":
        """Lift a :class:`~repro.storage.columnar_page.ColumnarPage` into a
        batch without per-tuple work.

        The time columns are ``np.frombuffer`` views straight over the page
        buffer (plain lists under the fallback backend).  Key ids come from
        one vectorized gather ``table[codes]`` through the *translator*'s
        per-dictionary code->id table on the probe side; the build side
        interns row by row, in page order, exactly like the tuple path.
        The batch's ``tuples`` **is the page itself** -- a lazy Sequence
        that materializes a ``VTTuple`` only when a row is emitted.
        """
        n = page.n_rows
        if use_numpy:
            if not HAVE_NUMPY:
                raise RuntimeError("numpy batches requested but numpy is unavailable")
            starts = page.starts_view()
            ends = page.ends_view()
        else:
            starts = page.starts_list()
            ends = page.ends_list()
        key_ids: Optional[Sequence[int]]
        if interner is None:
            key_ids = None
        elif intern:
            # Build side: intern in row order so id assignment matches the
            # tuple path exactly.
            intern_one = interner.intern
            key_of = page.dictionary.key
            ids = [intern_one(key_of(code)) for code in page.codes_list()]
            key_ids = np.array(ids, dtype=np.int64) if use_numpy and n else (
                np.empty(0, np.int64) if use_numpy else ids
            )
        elif translator is not None:
            key_ids = translator.translate(page, use_numpy=use_numpy)
        else:
            lookup = interner.lookup
            key_of = page.dictionary.key
            ids = [lookup(key_of(code)) for code in page.codes_list()]
            key_ids = np.array(ids, dtype=np.int64) if use_numpy and n else (
                np.empty(0, np.int64) if use_numpy else ids
            )
        return cls(page, key_ids, starts, ends)


class CodeTranslator:
    """Caches per-dictionary code -> join-id translation tables.

    A columnar page stores relation-local key *codes* (dense, first-seen
    order at write time); a join works in interner *ids*.  The bridge is a
    dense table ``table[code] == interner.lookup(dictionary.key(code))``,
    built once per (dictionary, interner version) and reused for every page
    of the file -- the per-page cost collapses to one ``table[codes]``
    gather.  Tables are invalidated when the interner grows (a later block
    interned new keys, so ``-1`` entries may have become real ids) or when
    the dictionary grew (the file gained pages with fresh keys).
    """

    __slots__ = ("_interner", "_tables", "_interned")

    def __init__(self, interner: KeyInterner) -> None:
        self._interner = interner
        self._tables: Dict[int, Tuple[object, int, Sequence[int]]] = {}
        self._interned: Dict[int, Tuple[object, int]] = {}

    def ensure_interned(self, dictionary) -> None:
        """Intern every key of *dictionary* (build-side translation).

        ``translate`` uses read-only lookups (probe semantics: unknown keys
        map to ``-1``); an outer *index* build must assign real ids instead.
        Interning the whole dictionary once -- instead of per block tuple --
        is sound because id values never influence join results (see
        :class:`KeyInterner`), and it keeps the translation table cacheable
        across the blocks of a file."""
        cache_key = id(dictionary)
        n = len(dictionary)
        seen = self._interned.get(cache_key)
        if seen is not None and seen[0] is dictionary and seen[1] == n:
            return
        intern = self._interner.intern
        for key in dictionary.keys:
            intern(key)
        self._interned[cache_key] = (dictionary, n)

    def table_for(self, dictionary, *, use_numpy: bool = HAVE_NUMPY) -> Sequence[int]:
        """The code->id table of *dictionary* (cached until stale)."""
        cache_key = id(dictionary)
        version = self._interner.version
        n = len(dictionary)
        cached = self._tables.get(cache_key)
        if cached is not None:
            dict_ref, cached_version, table = cached
            if dict_ref is dictionary and cached_version == version and len(table) == n:
                return table
        lookup = self._interner.lookup
        ids = [lookup(key) for key in dictionary.keys]
        table: Sequence[int]
        if use_numpy:
            table = np.array(ids, dtype=np.int64) if n else np.empty(0, np.int64)
        else:
            table = ids
        self._tables[cache_key] = (dictionary, version, table)
        return table

    def translate(self, page, *, use_numpy: bool = HAVE_NUMPY) -> Sequence[int]:
        """Per-row join ids of *page* via one gather through the table."""
        table = self.table_for(page.dictionary, use_numpy=use_numpy)
        if use_numpy:
            if page.n_rows == 0:
                return np.empty(0, np.int64)
            return table[page.codes_view()]
        return [table[code] for code in page.codes_list()]


class ColumnarBlock(Sequence):
    """An outer block kept as columnar page segments (zero-copy sweep).

    Logically this is exactly the ``List[VTTuple]`` the row-oriented joiner
    assembles -- same rows, same order -- but the rows stay packed: the
    block is a list of ``(page, rows)`` segments, where ``rows`` is ``None``
    for a whole page or an ``int64`` index array for the survivors of a
    retained-tuple purge.  The probe index reads whole columns straight off
    the segments (:meth:`columns`), the partition-boundary purge is one
    vectorized ``searchsorted`` per segment (:meth:`purged`), and a tuple is
    materialized only when something downstream touches the row -- emission
    of a match, spilling an overflow block, or checkpointing.  Row
    materialization goes through each page's memoized :meth:`row`, so a row
    is built at most once however many blocks reference it.
    """

    __slots__ = ("_segments", "_offsets", "_len")

    def __init__(self, segments) -> None:
        self._segments = [
            (page, rows)
            for page, rows in segments
            if (len(page) if rows is None else len(rows))
        ]
        self._offsets: List[int] = []
        total = 0
        for page, rows in self._segments:
            self._offsets.append(total)
            total += len(page) if rows is None else len(rows)
        self._len = total

    # -- sequence protocol (lazy) -------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._len))]
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError(f"row {index} out of range for {self._len}-row block")
        seg = bisect_right(self._offsets, index) - 1
        page, rows = self._segments[seg]
        offset = index - self._offsets[seg]
        return page.row(offset if rows is None else int(rows[offset]))

    def __iter__(self) -> Iterator[VTTuple]:
        for page, rows in self._segments:
            if rows is None:
                yield from page
            else:
                row = page.row
                for index in rows:
                    yield row(int(index))

    # -- column access (the index build path) -------------------------------

    def columns(self, translator: "CodeTranslator"):
        """``(key_ids, starts, ends)`` of the whole block, as int64 arrays.

        Key ids come from one interning gather per segment through the
        page dictionaries' translation tables; the time columns are sliced
        straight off the page buffers.  No tuple is materialized.
        """
        n = self._len
        key_ids = np.empty(n, np.int64)
        starts = np.empty(n, np.int64)
        ends = np.empty(n, np.int64)
        position = 0
        for page, rows in self._segments:
            translator.ensure_interned(page.dictionary)
            ids = translator.translate(page)
            if rows is None:
                count = len(page)
                key_ids[position : position + count] = ids
                starts[position : position + count] = page.starts_view()
                ends[position : position + count] = page.ends_view()
            else:
                count = len(rows)
                key_ids[position : position + count] = ids[rows]
                starts[position : position + count] = page.starts_view()[rows]
                ends[position : position + count] = page.ends_view()[rows]
            position += count
        return key_ids, starts, ends

    # -- vectorized retained-tuple purge -------------------------------------

    def _overlap_mask(self, page, rows, boundary_ends, last: int, index: int):
        """Which segment rows overlap partition *index* (edge-clamped).

        Vectorizes ``PartitionMap.overlaps_partition``:
        ``first_overlapping(valid) <= index <= last_overlapping(valid)``
        with ``bisect_left`` == ``searchsorted(side="left")`` and the same
        edge clamp.
        """
        starts = page.starts_view()
        ends = page.ends_view()
        if rows is not None:
            starts = starts[rows]
            ends = ends[rows]
        first = np.minimum(np.searchsorted(boundary_ends, starts, side="left"), last)
        last_part = np.minimum(np.searchsorted(boundary_ends, ends, side="left"), last)
        return (first <= index) & (index <= last_part)

    def _boundary_ends(self, partition_map):
        return np.asarray(
            [interval.end for interval in partition_map.intervals], dtype=np.int64
        )

    def purged(self, partition_map, index: int) -> "ColumnarBlock":
        """The sub-block of rows overlapping partition *index*, same order."""
        boundary_ends = self._boundary_ends(partition_map)
        last = len(partition_map) - 1
        segments = []
        for page, rows in self._segments:
            keep = self._overlap_mask(page, rows, boundary_ends, last, index)
            if keep.all():
                segments.append((page, rows))
                continue
            survivors = np.nonzero(keep)[0]
            if survivors.size:
                segments.append(
                    (page, survivors if rows is None else rows[survivors])
                )
        return ColumnarBlock(segments)

    def count_overlapping(self, partition_map, index: int) -> int:
        """How many rows overlap partition *index* (the prefetch predictor)."""
        boundary_ends = self._boundary_ends(partition_map)
        last = len(partition_map) - 1
        total = 0
        for page, rows in self._segments:
            total += int(
                self._overlap_mask(page, rows, boundary_ends, last, index).sum()
            )
        return total


def iter_page_batches(
    pages: Iterable[Sequence[VTTuple]],
    interner: Optional[KeyInterner] = None,
    *,
    intern: bool = False,
    use_numpy: bool = HAVE_NUMPY,
) -> Iterator[PageBatch]:
    """Wrap a page stream (e.g. ``HeapFile.scan_pages()``) into batches.

    I/O accounting is untouched: the underlying stream charges page reads
    exactly as it would tuple-at-a-time; only the in-memory representation
    changes.
    """
    for page in pages:
        yield PageBatch.from_tuples(
            page, interner, intern=intern, use_numpy=use_numpy
        )


# -- batch (de)composition of tuple sequences --------------------------------------


def tuples_to_columns(
    tuples: Iterable[VTTuple],
) -> Tuple[List[Tuple], List[Tuple], List[int], List[int]]:
    """Decompose *tuples* into ``(keys, payloads, starts, ends)`` columns."""
    keys: List[Tuple] = []
    payloads: List[Tuple] = []
    starts: List[int] = []
    ends: List[int] = []
    for tup in tuples:
        keys.append(tup.key)
        payloads.append(tup.payload)
        starts.append(tup.valid.start)
        ends.append(tup.valid.end)
    return keys, payloads, starts, ends


def tuples_from_columns(
    keys: Sequence[Tuple],
    payloads: Sequence[Tuple],
    starts: Sequence[int],
    ends: Sequence[int],
) -> List[VTTuple]:
    """Recompose columns produced by :func:`tuples_to_columns`."""
    if not (len(keys) == len(payloads) == len(starts) == len(ends)):
        raise ValueError("column lengths differ")
    return [
        VTTuple(tuple(key), tuple(payload), Interval(int(vs), int(ve)))
        for key, payload, vs, ve in zip(keys, payloads, starts, ends)
    ]
