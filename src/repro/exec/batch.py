"""Columnar batches: the unit of work of the vectorized kernels.

A :class:`PageBatch` is a page of tuples decomposed into parallel columns --
interned key ids, start chronons, end chronons, and row indices back into
the original tuple list.  It is built **once per page** as the page passes
through memory; every kernel then operates on whole columns instead of
revisiting each tuple.

Keys are arbitrary Python tuples (the explicit join attributes), so they
cannot live in a numeric column directly.  A :class:`KeyInterner` maps each
distinct key to a small integer id; the build side of a join *interns*
(assigns fresh ids), the probe side *looks up* (unknown keys map to ``-1``
and can never match, which is exactly the hash-join semantics of
``probe_index.get(key, ())``).

The module also provides the batch (de)composition helpers shared by the
model layer and the columnar serialization format
(:func:`tuples_to_columns` / :func:`tuples_from_columns`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exec.backend import HAVE_NUMPY, np
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


class KeyInterner:
    """Bidirectional key <-> dense-integer-id map shared across batches."""

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: Dict[Tuple, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, key: Tuple) -> int:
        """Id of *key*, assigning the next dense id on first sight."""
        ids = self._ids
        found = ids.get(key)
        if found is None:
            found = len(ids)
            ids[key] = found
        return found

    def lookup(self, key: Tuple) -> int:
        """Id of *key*, or ``-1`` when the key was never interned."""
        return self._ids.get(key, -1)


class PageBatch:
    """One page of tuples in columnar form.

    Attributes:
        tuples: the page's tuples, in page order (kernels return row indices
            into this list; emission still hands whole :class:`VTTuple`
            objects to the pair function).
        key_ids: per-row interned key id (``-1`` = key unknown to the build
            side), or None when built without an interner (the partitioner
            only needs the time columns).
        starts: per-row valid-time start chronon.
        ends: per-row valid-time end chronon.

    Columns are numpy ``int64`` arrays under the numpy backend and plain
    lists under the fallback; the matching kernels consume them natively.
    """

    __slots__ = ("tuples", "key_ids", "starts", "ends")

    def __init__(self, tuples, key_ids, starts, ends) -> None:
        self.tuples = tuples
        self.key_ids = key_ids
        self.starts = starts
        self.ends = ends

    def __len__(self) -> int:
        return len(self.tuples)

    @classmethod
    def from_tuples(
        cls,
        tuples: Sequence[VTTuple],
        interner: Optional[KeyInterner] = None,
        *,
        intern: bool = False,
        use_numpy: bool = HAVE_NUMPY,
    ) -> "PageBatch":
        """Decompose *tuples* into columns.

        Args:
            tuples: the page (any tuple sequence works; pages are typical).
            interner: key dictionary shared with the other batches of the
                join; omit when key columns are not needed.
            intern: assign fresh ids for unseen keys (build side) instead of
                mapping them to ``-1`` (probe side).
            use_numpy: emit numpy columns; callers pass their kernels'
                backend so explicitly-chosen fallback kernels get lists even
                when numpy is importable.
        """
        n = len(tuples)
        key_ids: Optional[Sequence[int]]
        if interner is None:
            key_ids = None
        elif intern:
            key_ids = [interner.intern(tup.key) for tup in tuples]
        else:
            key_ids = [interner.lookup(tup.key) for tup in tuples]
        starts: Sequence[int] = [tup.valid.start for tup in tuples]
        ends: Sequence[int] = [tup.valid.end for tup in tuples]
        if use_numpy:
            if not HAVE_NUMPY:
                raise RuntimeError("numpy batches requested but numpy is unavailable")
            starts = np.array(starts, dtype=np.int64)
            ends = np.array(ends, dtype=np.int64)
            if key_ids is not None:
                key_ids = np.array(key_ids, dtype=np.int64) if n else np.empty(0, np.int64)
        return cls(list(tuples), key_ids, starts, ends)


def iter_page_batches(
    pages: Iterable[Sequence[VTTuple]],
    interner: Optional[KeyInterner] = None,
    *,
    intern: bool = False,
    use_numpy: bool = HAVE_NUMPY,
) -> Iterator[PageBatch]:
    """Wrap a page stream (e.g. ``HeapFile.scan_pages()``) into batches.

    I/O accounting is untouched: the underlying stream charges page reads
    exactly as it would tuple-at-a-time; only the in-memory representation
    changes.
    """
    for page in pages:
        yield PageBatch.from_tuples(
            page, interner, intern=intern, use_numpy=use_numpy
        )


# -- batch (de)composition of tuple sequences --------------------------------------


def tuples_to_columns(
    tuples: Iterable[VTTuple],
) -> Tuple[List[Tuple], List[Tuple], List[int], List[int]]:
    """Decompose *tuples* into ``(keys, payloads, starts, ends)`` columns."""
    keys: List[Tuple] = []
    payloads: List[Tuple] = []
    starts: List[int] = []
    ends: List[int] = []
    for tup in tuples:
        keys.append(tup.key)
        payloads.append(tup.payload)
        starts.append(tup.valid.start)
        ends.append(tup.valid.end)
    return keys, payloads, starts, ends


def tuples_from_columns(
    keys: Sequence[Tuple],
    payloads: Sequence[Tuple],
    starts: Sequence[int],
    ends: Sequence[int],
) -> List[VTTuple]:
    """Recompose columns produced by :func:`tuples_to_columns`."""
    if not (len(keys) == len(payloads) == len(starts) == len(ends)):
        raise ValueError("column lengths differ")
    return [
        VTTuple(tuple(key), tuple(payload), Interval(int(vs), int(ve)))
        for key, payload, vs, ve in zip(keys, payloads, starts, ends)
    ]
