"""Operations on sets of intervals: union, difference, coverage.

The outerjoin variants need to compute the sub-intervals of a timestamp
*not* covered by any matching tuple, and coalescing needs to merge
overlapping or adjacent value-equivalent timestamps.  Both reduce to the
canonicalization implemented here: an interval set is kept as a sorted list
of disjoint, non-adjacent intervals.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.time.interval import Interval


def normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Canonical form: sorted, disjoint, non-adjacent intervals.

    Overlapping or meeting intervals are merged, so the result is the unique
    minimal representation of the covered chronon set.
    """
    ordered = sorted(intervals, key=lambda interval: (interval.start, interval.end))
    merged: List[Interval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end + 1:
            if interval.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, interval.end)
        else:
            merged.append(interval)
    return merged


def subtract(interval: Interval, covered: Iterable[Interval]) -> List[Interval]:
    """The maximal sub-intervals of *interval* not covered by *covered*.

    Used by the outerjoins: a tuple's unmatched validity is its timestamp
    minus the union of the overlaps with every matching partner.
    """
    remaining_start = interval.start
    gaps: List[Interval] = []
    for block in normalize(covered):
        clipped = block.intersect(interval)
        if clipped is None:
            continue
        if clipped.start > remaining_start:
            gaps.append(Interval(remaining_start, clipped.start - 1))
        remaining_start = clipped.end + 1
        if remaining_start > interval.end:
            break
    if remaining_start <= interval.end:
        gaps.append(Interval(remaining_start, interval.end))
    return gaps


def total_duration(intervals: Iterable[Interval]) -> int:
    """Chronons covered by the (possibly overlapping) interval collection."""
    return sum(interval.duration for interval in normalize(intervals))


def covers(intervals: Iterable[Interval], target: Interval) -> bool:
    """True when the union of *intervals* covers every chronon of *target*."""
    return not subtract(target, intervals)
