"""A first-class interval set with operator syntax.

The functional core (:mod:`repro.time.intervalset`) keeps interval sets as
plain lists; :class:`IntervalSet` wraps them in the container API users
reach for -- ``|``, ``&``, ``-``, ``in``, iteration, equality on covered
chronons -- while maintaining the canonical (sorted, disjoint,
non-adjacent) representation as an invariant.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Union

from repro.time.interval import Interval
from repro.time.intervalset import normalize, subtract, total_duration


class IntervalSet:
    """An immutable set of chronons, stored as maximal intervals.

    Two interval sets are equal iff they cover the same chronons,
    regardless of how they were built.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        object.__setattr__(self, "_intervals", tuple(normalize(intervals)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntervalSet is immutable")

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        """Number of maximal intervals (not chronons)."""
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __contains__(self, item: Union[int, Interval]) -> bool:
        if isinstance(item, Interval):
            return not subtract(item, self._intervals)
        return any(interval.contains_chronon(item) for interval in self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{i.start},{i.end}]" for i in self._intervals)
        return f"IntervalSet({inner})"

    # -- algebra ------------------------------------------------------------------

    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._intervals + other._intervals)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        gaps: List[Interval] = []
        for interval in self._intervals:
            gaps.extend(subtract(interval, other._intervals))
        return IntervalSet(gaps)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self - (self - other)

    def __xor__(self, other: "IntervalSet") -> "IntervalSet":
        return (self - other) | (other - self)

    # -- measures -----------------------------------------------------------------

    @property
    def duration(self) -> int:
        """Total chronons covered."""
        return total_duration(self._intervals)

    def hull(self) -> Interval | None:
        """Smallest single interval covering the set (None when empty)."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    def complement_within(self, bounds: Interval) -> "IntervalSet":
        """The chronons of *bounds* not covered by this set."""
        return IntervalSet([bounds]) - self
