"""Valid-time domain: chronons, intervals, Allen's relations, lifespans.

The paper (Section 2) models the valid-time line as a sequence of
minimal-duration intervals called *chronons* [DS93].  Timestamps are single
intervals denoted by inclusive starting and ending chronons.  This package
provides that time domain:

* :mod:`repro.time.chronon` -- the chronon scale, sentinels, granularities.
* :mod:`repro.time.interval` -- inclusive intervals ``[Vs, Ve]`` and the
  ``overlap`` function exactly as defined in Section 2 of the paper.
* :mod:`repro.time.allen` -- Allen's thirteen interval relations [All83],
  used by the extended join variants of Leung and Muntz [LM90].
* :mod:`repro.time.lifespan` -- lifespans (interval hulls) of tuple
  collections and partitioning-interval coverage checks.
"""

from repro.time.chronon import (
    BEGINNING,
    FOREVER,
    Granularity,
    is_chronon,
    validate_chronon,
)
from repro.time.interval import Interval, hull, overlap, overlaps
from repro.time.allen import AllenRelation, relate
from repro.time.lifespan import Lifespan, covers_lifespan, lifespan_of
from repro.time.intervalset import covers, normalize, subtract, total_duration
from repro.time.intervalset_class import IntervalSet
from repro.time.granularity import GranularityConversion

__all__ = [
    "BEGINNING",
    "FOREVER",
    "Granularity",
    "is_chronon",
    "validate_chronon",
    "Interval",
    "hull",
    "overlap",
    "overlaps",
    "AllenRelation",
    "relate",
    "Lifespan",
    "covers_lifespan",
    "lifespan_of",
    "covers",
    "normalize",
    "subtract",
    "total_duration",
    "IntervalSet",
    "GranularityConversion",
]
