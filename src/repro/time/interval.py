"""Inclusive valid-time intervals and the paper's ``overlap`` function.

Section 2 of the paper timestamps every tuple with a single interval
``[Vs, Ve]`` of inclusive starting and ending chronons, and defines the
valid-time natural join in terms of ``overlap(U, V)``: the maximal interval
contained in both arguments, or bottom (here ``None``) when the arguments
share no chronon.

The procedural definition in the paper iterates over every chronon of ``U``;
that is the *specification*.  :func:`overlap` implements the equivalent
closed form ``[max(Us, Vs), min(Ue, Ve)]`` and the test-suite checks the two
against each other chronon-by-chronon on small intervals.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.time.chronon import validate_chronon


class Interval:
    """An inclusive interval ``[start, end]`` of chronons.

    Instances are immutable and hashable so they can key dictionaries and
    live in sets.  ``start == end`` denotes an instantaneous (one-chronon)
    interval -- the kind used for the non-long-lived tuples in the paper's
    experiments.

    Raises:
        ValueError: if ``end < start`` (the empty interval is represented by
            ``None`` throughout the library, mirroring the paper's bottom).
    """

    __slots__ = ("start", "end")

    start: int
    end: int

    def __init__(self, start: int, end: int) -> None:
        validate_chronon(start, "start")
        validate_chronon(end, "end")
        if end < start:
            raise ValueError(f"interval end {end} precedes start {start}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interval is immutable")

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.start == other.start and self.end == other.end

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __repr__(self) -> str:
        return f"Interval({self.start}, {self.end})"

    def __lt__(self, other: "Interval") -> bool:
        """Order by start chronon, then end chronon (sort-merge order)."""
        if not isinstance(other, Interval):
            return NotImplemented
        return (self.start, self.end) < (other.start, other.end)

    # -- basic queries -----------------------------------------------------

    @property
    def duration(self) -> int:
        """Number of chronons covered; an instantaneous interval has 1."""
        return self.end - self.start + 1

    def contains_chronon(self, t: int) -> bool:
        """Return True when chronon *t* lies within the interval."""
        return self.start <= t <= self.end

    def contains(self, other: "Interval") -> bool:
        """Return True when *other* lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Return True when the two intervals share at least one chronon."""
        return self.start <= other.end and other.start <= self.end

    def precedes(self, other: "Interval") -> bool:
        """Return True when this interval ends before *other* starts."""
        return self.end < other.start

    def meets(self, other: "Interval") -> bool:
        """Return True when this interval ends exactly one chronon before
        *other* starts (adjacent but not overlapping)."""
        return self.end + 1 == other.start

    def chronons(self) -> Iterator[int]:
        """Iterate over every chronon in the interval.

        Only sensible for short intervals; used by the specification-level
        tests that replay the paper's chronon-by-chronon ``overlap``.
        """
        return iter(range(self.start, self.end + 1))

    # -- combination -------------------------------------------------------

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The paper's ``overlap``: maximal interval within both, else None."""
        start = self.start if self.start >= other.start else other.start
        end = self.end if self.end <= other.end else other.end
        if end < start:
            return None
        return Interval(start, end)

    def union(self, other: "Interval") -> "Interval":
        """Union of two overlapping or adjacent intervals.

        Raises:
            ValueError: if the intervals neither overlap nor meet, since the
                union would not be a single interval.
        """
        if not (self.overlaps(other) or self.meets(other) or other.meets(self)):
            raise ValueError(f"union of disjoint intervals {self} and {other}")
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def clamp(self, bounds: "Interval") -> Optional["Interval"]:
        """Restrict this interval to *bounds* (alias of :meth:`intersect`)."""
        return self.intersect(bounds)

    def shifted(self, delta: int) -> "Interval":
        """Return a copy translated by *delta* chronons."""
        return Interval(self.start + delta, self.end + delta)


def overlap(u: Optional[Interval], v: Optional[Interval]) -> Optional[Interval]:
    """Module-level ``overlap`` exactly as named in the paper.

    Accepts ``None`` (bottom) for either argument and propagates it, so the
    algorithms of Appendix A can be transcribed directly.
    """
    if u is None or v is None:
        return None
    return u.intersect(v)


def overlaps(u: Interval, v: Interval) -> bool:
    """Predicate form of :func:`overlap`: do *u* and *v* share a chronon?"""
    return u.overlaps(v)


def hull(intervals: "list[Interval]") -> Optional[Interval]:
    """Smallest single interval covering every interval in the list.

    Returns None for an empty list.
    """
    if not intervals:
        return None
    start = min(interval.start for interval in intervals)
    end = max(interval.end for interval in intervals)
    return Interval(start, end)
