"""Lifespans: the interval hull of a collection of timestamps.

The paper's partitioning strategies (Section 3.4, Appendix A.3) operate on
the *relation lifespan* -- the span of valid time covered by any tuple.  The
experiments likewise describe databases via their lifespan ("long-lived
tuples had their starting chronon randomly distributed over the first 1/2 of
the relation lifespan ...").

A :class:`Lifespan` is a thin, named wrapper over an :class:`Interval` with
helpers for fractions of the span, which the workload generators use to
express exactly the recipes of Sections 4.2-4.4.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.time.interval import Interval


class Lifespan(Interval):
    """The span of valid time covered by a relation (inclusive hull)."""

    __slots__ = ()

    def fraction_point(self, fraction: float) -> int:
        """Chronon located *fraction* of the way through the lifespan.

        ``fraction_point(0.0)`` is the first chronon; ``fraction_point(1.0)``
        the last.  Used by the generators, e.g. the Section 4.3 long-lived
        recipe places start chronons uniformly in ``[0, 0.5)`` of the span.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        return self.start + int(fraction * (self.duration - 1))

    def prefix(self, fraction: float) -> Interval:
        """The initial *fraction* of the lifespan as an interval."""
        return Interval(self.start, self.fraction_point(fraction))

    def scaled_duration(self, fraction: float) -> int:
        """Duration, in chronons, of *fraction* of the lifespan (>= 1)."""
        return max(1, int(fraction * self.duration))


def lifespan_of(intervals: Iterable[Interval]) -> Optional[Lifespan]:
    """Compute the lifespan of a collection of timestamps (None if empty)."""
    start: Optional[int] = None
    end: Optional[int] = None
    for interval in intervals:
        if start is None or interval.start < start:
            start = interval.start
        if end is None or interval.end > end:
            end = interval.end
    if start is None or end is None:
        return None
    return Lifespan(start, end)


def covers_lifespan(partitioning: Sequence[Interval], lifespan: Interval) -> bool:
    """Check that *partitioning* completely covers *lifespan* without gaps.

    Section 3.3 requires the partitioning intervals to be non-overlapping and
    to completely cover the valid-time line (in practice: the lifespan).
    The intervals must be supplied in ascending order, as produced by
    :func:`repro.core.intervals.choose_intervals`.
    """
    if not partitioning:
        return False
    if partitioning[0].start > lifespan.start:
        return False
    expected_next = partitioning[0].end + 1
    for interval in partitioning[1:]:
        if interval.start != expected_next:
            return False
        expected_next = interval.end + 1
    return expected_next > lifespan.end
