"""Calendar support: dates as chronons at day granularity.

The paper works in abstract chronons; real data carries dates.  This
module fixes a day-granularity mapping (chronon 0 = 1970-01-01, matching
the Unix epoch) so applications can build valid-time intervals from
``datetime.date`` values and render query results back as dates.
"""

from __future__ import annotations

from datetime import date, timedelta
from typing import Tuple

from repro.time.interval import Interval

#: Chronon 0 at day granularity.
EPOCH = date(1970, 1, 1)


def day_to_chronon(day: date) -> int:
    """The chronon (day number since the epoch) containing *day*."""
    return (day - EPOCH).days


def chronon_to_day(chronon: int) -> date:
    """The calendar day of *chronon* (inverse of :func:`day_to_chronon`)."""
    return EPOCH + timedelta(days=chronon)


def between(start: date, end: date) -> Interval:
    """The valid-time interval covering *start* through *end*, inclusive.

    Raises:
        ValueError: if *end* precedes *start* (via Interval validation).
    """
    return Interval(day_to_chronon(start), day_to_chronon(end))


def on(day: date) -> Interval:
    """The instantaneous interval of a single calendar day."""
    chronon = day_to_chronon(day)
    return Interval(chronon, chronon)


def as_dates(interval: Interval) -> Tuple[date, date]:
    """Render an interval back as its inclusive (start, end) days."""
    return chronon_to_day(interval.start), chronon_to_day(interval.end)
