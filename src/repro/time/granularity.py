"""Granularity conversion: timestamps across chronon scales [DS93].

The paper anchors its timestamp model in Dyreson and Snodgrass's chronon
semantics, where the same fact may be recorded at different granularities
(days in one relation, hours in another).  Joining across granularities
requires converting intervals between scales; the conversions here follow
the [DS93] containment semantics:

* **Refining** (to a finer scale, e.g. days -> hours) maps a chronon to the
  full run of finer chronons it contains -- the fact was true throughout.
* **Coarsening** (to a coarser scale) has two readings: ``"cover"`` keeps
  every coarse chronon the interval touches (the interval *may* hold
  there), ``"within"`` keeps only coarse chronons entirely contained in the
  interval (the interval *must* hold there), which can be empty.

Refining then coarsening with either policy is the identity; coarsening is
lossy, as it must be.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.relation import ValidTimeRelation
from repro.time.interval import Interval


@dataclass(frozen=True)
class GranularityConversion:
    """A conversion between two chronon scales.

    Attributes:
        factor: how many fine chronons make one coarse chronon.
    """

    factor: int

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"conversion factor must be >= 1, got {self.factor}")

    # -- single intervals -----------------------------------------------------

    def refine(self, interval: Interval) -> Interval:
        """Coarse -> fine: the full run of fine chronons the interval covers."""
        return Interval(
            interval.start * self.factor,
            interval.end * self.factor + (self.factor - 1),
        )

    def coarsen(self, interval: Interval, *, policy: str = "cover") -> Interval | None:
        """Fine -> coarse under the chosen [DS93] reading.

        Args:
            interval: the fine-granularity interval.
            policy: ``"cover"`` (coarse chronons the interval touches) or
                ``"within"`` (coarse chronons fully inside the interval).

        Returns:
            The coarse interval, or None when the ``"within"`` reading is
            empty (the interval spans no complete coarse chronon).
        """
        if policy == "cover":
            return Interval(
                interval.start // self.factor, interval.end // self.factor
            )
        if policy == "within":
            start = -(-interval.start // self.factor)  # ceil division
            end = (interval.end + 1) // self.factor - 1
            if end < start:
                return None
            return Interval(start, end)
        raise ValueError(f"unknown coarsening policy {policy!r}")

    # -- whole relations ----------------------------------------------------------

    def refine_relation(self, relation: ValidTimeRelation) -> ValidTimeRelation:
        """Restamp every tuple at the finer scale."""
        result = ValidTimeRelation(relation.schema)
        for tup in relation:
            result.add(tup.with_valid(self.refine(tup.valid)))
        return result

    def coarsen_relation(
        self, relation: ValidTimeRelation, *, policy: str = "cover"
    ) -> ValidTimeRelation:
        """Restamp every tuple at the coarser scale; ``"within"``-empty
        tuples are dropped (they assert nothing at the coarse scale)."""
        result = ValidTimeRelation(relation.schema)
        for tup in relation:
            coarse = self.coarsen(tup.valid, policy=policy)
            if coarse is not None:
                result.add(tup.with_valid(coarse))
        return result
