"""Allen's thirteen interval relations [All83].

Leung and Muntz extended sort-merge temporal joins to the predicates defined
by Allen [LM90]; the join variants in :mod:`repro.variants.allen_joins` are
built on the classification implemented here.

The thirteen relations partition all possible configurations of two
non-empty intervals: six basic relations, their six inverses, and equality.
On a discrete chronon time-line "meets" holds when one interval ends exactly
one chronon before the other starts.
"""

from __future__ import annotations

import enum

from repro.time.interval import Interval


class AllenRelation(enum.Enum):
    """One of Allen's thirteen qualitative interval relations."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met_by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped_by"
    STARTS = "starts"
    STARTED_BY = "started_by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished_by"
    EQUAL = "equal"

    @property
    def inverse(self) -> "AllenRelation":
        """The relation that holds with the arguments swapped."""
        return _INVERSES[self]

    @property
    def intersects(self) -> bool:
        """True when the relation implies the intervals share a chronon."""
        return self not in (
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
            AllenRelation.MEETS,
            AllenRelation.MET_BY,
        )


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
}


def relate(u: Interval, v: Interval) -> AllenRelation:
    """Classify the configuration of *u* relative to *v*.

    Exactly one relation holds for any pair of intervals; the classification
    is exhaustive, so the final branch needs no guard.
    """
    if u.end + 1 < v.start:
        return AllenRelation.BEFORE
    if v.end + 1 < u.start:
        return AllenRelation.AFTER
    if u.end + 1 == v.start:
        return AllenRelation.MEETS
    if v.end + 1 == u.start:
        return AllenRelation.MET_BY
    if u.start == v.start and u.end == v.end:
        return AllenRelation.EQUAL
    if u.start == v.start:
        return AllenRelation.STARTS if u.end < v.end else AllenRelation.STARTED_BY
    if u.end == v.end:
        return AllenRelation.FINISHES if u.start > v.start else AllenRelation.FINISHED_BY
    if v.start < u.start and u.end < v.end:
        return AllenRelation.DURING
    if u.start < v.start and v.end < u.end:
        return AllenRelation.CONTAINS
    if u.start < v.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY
