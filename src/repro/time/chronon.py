"""Chronons: the indivisible units of the valid-time line.

Following Dyreson and Snodgrass [DS93], the time-line is partitioned into
minimal-duration intervals termed *chronons*.  A chronon is represented here
as a plain ``int`` for efficiency -- relations hold hundreds of thousands of
timestamps, so a wrapper class per chronon would be prohibitively expensive.
This module supplies the scale around those ints: validation, the sentinel
chronons bounding the representable time-line, and :class:`Granularity` for
translating chronons to and from human-readable instants.
"""

from __future__ import annotations

from dataclasses import dataclass

# Sentinels bounding the representable valid-time line.  The paper's
# experiments use a finite relation lifespan, so these bounds exist only to
# catch programming errors (e.g. reversed intervals built from unvalidated
# input), not to model infinite time.
BEGINNING: int = -(2**62)
FOREVER: int = 2**62


def is_chronon(value: object) -> bool:
    """Return True when *value* is usable as a chronon.

    Booleans are rejected even though ``bool`` subclasses ``int``: a ``True``
    timestamp is invariably a bug in calling code.
    """
    return isinstance(value, int) and not isinstance(value, bool) and BEGINNING <= value <= FOREVER


def validate_chronon(value: object, what: str = "chronon") -> int:
    """Validate *value* as a chronon and return it.

    Raises:
        TypeError: if *value* is not an ``int``.
        ValueError: if *value* lies outside ``[BEGINNING, FOREVER]``.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{what} must be an int chronon, got {type(value).__name__}")
    if not BEGINNING <= value <= FOREVER:
        raise ValueError(f"{what} {value} outside representable time-line")
    return value


@dataclass(frozen=True, slots=True)
class Granularity:
    """A mapping between chronons and an external time scale.

    A granularity is defined by the duration of one chronon in some external
    unit (e.g. seconds) and the external instant corresponding to chronon 0.
    The paper never fixes a physical granularity -- its experiments only use
    ratios of durations -- but a usable temporal-database library needs one
    to present query results.

    Attributes:
        unit: human-readable name of the external unit (e.g. ``"second"``).
        chronons_per_unit: how many chronons make up one external unit.
        origin: external-unit value of chronon 0.
    """

    unit: str = "chronon"
    chronons_per_unit: int = 1
    origin: int = 0

    def __post_init__(self) -> None:
        if self.chronons_per_unit <= 0:
            raise ValueError("chronons_per_unit must be positive")

    def to_chronon(self, instant: float) -> int:
        """Convert an external-unit *instant* to the chronon containing it."""
        return int((instant - self.origin) * self.chronons_per_unit)

    def from_chronon(self, chronon: int) -> float:
        """Convert *chronon* to the external-unit instant of its start."""
        validate_chronon(chronon)
        return self.origin + chronon / self.chronons_per_unit


#: The default granularity: one chronon per unit, origin zero.  All the
#: paper's experiments are expressed directly in chronons.
DEFAULT_GRANULARITY = Granularity()
