"""Pipelined-sweep throughput: tuple vs batch vs batch-parallel-sweep.

Runs the same partition join (by default 50 000 x 50 000 tuples, the
``harness`` probe-heavy workload) under the tuple oracle, the PR-1 batch
kernels, and the pipelined ``"batch-parallel-sweep"`` mode, and reports
wall-clock throughput plus the charged-I/O bill of each.  Before
reporting, it asserts the tentpole's contract: identical join outcomes in
every mode, identical per-phase op *counts* for the pipelined mode, and a
weighted I/O cost never above the serial sweep -- a speedup can never come
from doing less (or different) work.

Writes machine-readable ``BENCH_sweep.json`` next to the repo root.  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py

CI gates on the committed numbers with ``--check``::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py \\
        --tuples 8000 --check BENCH_sweep.json

which re-measures the charged-I/O cost ratio (pipelined sweep vs batch)
and fails if it regressed more than 10% against the committed report.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import Dict, List, Optional

from harness import (
    REPO_ROOT,
    environment,
    load_report,
    observed_config,
    phase_op_fingerprint,
    phase_stats_fingerprint,
    probe_heavy_relation,
    result_fingerprint,
    time_modes,
    write_report,
    write_trace,
)
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.exec import HAVE_NUMPY
from repro.storage.page import PageSpec

MODES = ("tuple", "batch", "batch-parallel-sweep")
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sweep.json"

#: CI regression gate: the pipelined sweep's charged-I/O cost, as a ratio
#: of the batch mode's, may drift at most this much above the committed
#: report before the perf-smoke job fails.
IO_RATIO_TOLERANCE = 0.10


def run_benchmark(
    n_tuples: int,
    *,
    memory_pages: int = 48,
    sweep_workers: Optional[int] = 4,
    prefetch_depth: int = 8,
) -> Dict:
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    page_spec = PageSpec(page_bytes=8192, tuple_bytes=16)

    def make_config(mode: str) -> PartitionJoinConfig:
        return PartitionJoinConfig(
            memory_pages=memory_pages,
            page_spec=page_spec,
            execution=mode,
            sweep_workers=sweep_workers if mode == "batch-parallel-sweep" else None,
            prefetch_depth=prefetch_depth,
            collect_result=False,
            # A small planner grid keeps mode-independent planning time from
            # diluting the comparison; all modes share the same plan.
            max_plan_candidates=6,
        )

    results = time_modes(r, s, MODES, make_config)

    # -- the equivalence contract, asserted before any number is reported --
    oracle = results["tuple"]["run"]
    for mode in MODES[1:]:
        run = results[mode]["run"]
        if result_fingerprint(run) != result_fingerprint(oracle):
            raise AssertionError(f"execution={mode!r} changed the join outcome")
    # Batch replays the oracle's access sequence byte for byte; the
    # pipelined sweep may reorder accesses (read-ahead, write-behind) but
    # must charge the same op counts per phase at no higher weighted cost.
    if phase_stats_fingerprint(results["batch"]["run"]) != phase_stats_fingerprint(oracle):
        raise AssertionError("execution='batch' diverged from the tuple I/O sequence")
    sweep = results["batch-parallel-sweep"]
    if phase_op_fingerprint(sweep["run"]) != phase_op_fingerprint(oracle):
        raise AssertionError(
            "execution='batch-parallel-sweep' changed per-phase op counts"
        )
    if sweep["io"]["io_cost"] > results["tuple"]["io"]["io_cost"]:
        raise AssertionError("the pipelined sweep must never cost more I/O")

    for row in results.values():
        del row["run"]
    for mode in MODES[1:]:
        results[mode]["speedup_vs_tuple"] = round(
            results[mode]["tuples_per_sec"] / results["tuple"]["tuples_per_sec"], 2
        )
    sweep["speedup_vs_batch"] = round(
        sweep["tuples_per_sec"] / results["batch"]["tuples_per_sec"], 2
    )
    sweep["io_cost_ratio_vs_batch"] = round(
        sweep["io"]["io_cost"] / results["batch"]["io"]["io_cost"], 4
    )

    return {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "memory_pages": memory_pages,
            "page_bytes": page_spec.page_bytes,
            "tuple_bytes": page_spec.tuple_bytes,
            "sweep_workers": sweep_workers,
            "prefetch_depth": prefetch_depth,
            "num_partitions": results["tuple"]["num_partitions"],
        },
        "environment": environment(),
        "modes": results,
    }


def trace_join(
    n_tuples: int,
    trace_out: Path,
    *,
    memory_pages: int = 48,
    sweep_workers: Optional[int] = 4,
    prefetch_depth: int = 8,
) -> Dict[str, Path]:
    """One extra *observed* pipelined-sweep run, exporting its trace.

    Kept separate from the timed comparison so the observability hooks can
    never color the reported numbers or the equivalence fingerprints.
    """
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    config = observed_config(
        PartitionJoinConfig(
            memory_pages=memory_pages,
            page_spec=PageSpec(page_bytes=8192, tuple_bytes=16),
            execution="batch-parallel-sweep",
            sweep_workers=sweep_workers,
            prefetch_depth=prefetch_depth,
            collect_result=False,
            max_plan_candidates=6,
        )
    )
    run = partition_join(r, s, config)
    return write_trace(run, trace_out)


def format_report(report: Dict) -> List[str]:
    lines = [
        "pipelined sweep -- {n_tuples_per_side} x {n_tuples_per_side} tuples, "
        "{num_partitions} partitions, workers={sweep_workers}, "
        "depth={prefetch_depth}, backend={backend}".format(
            backend=report["environment"]["backend"], **report["workload"]
        ),
        f"{'mode':<22} {'seconds':>9} {'tuples/sec':>12} {'io cost':>10} {'speedup':>8}",
    ]
    for mode, row in report["modes"].items():
        speedup = row.get("speedup_vs_tuple", 1.0)
        lines.append(
            f"{mode:<22} {row['seconds']:>9.3f} {row['tuples_per_sec']:>12,.0f} "
            f"{row['io']['io_cost']:>10,.0f} {speedup:>8}"
        )
    sweep = report["modes"]["batch-parallel-sweep"]
    lines.append(
        f"sweep vs batch: {sweep['speedup_vs_batch']}x wall-clock, "
        f"{sweep['io_cost_ratio_vs_batch']}x charged I/O cost"
    )
    return lines


def check_against(report: Dict, committed_path: Path) -> List[str]:
    """The CI perf-smoke gate: fresh I/O ratio vs the committed report."""
    committed = load_report(committed_path)
    failures = []
    fresh = report["modes"]["batch-parallel-sweep"]["io_cost_ratio_vs_batch"]
    baseline = committed["modes"]["batch-parallel-sweep"]["io_cost_ratio_vs_batch"]
    bound = baseline * (1.0 + IO_RATIO_TOLERANCE)
    if fresh > bound:
        failures.append(
            f"charged-I/O ratio regressed: {fresh} > {bound:.4f} "
            f"(committed {baseline} + {IO_RATIO_TOLERANCE:.0%})"
        )
    if report["modes"]["batch-parallel-sweep"]["n_result_tuples"] <= 0 < report[
        "workload"
    ]["n_tuples_per_side"]:
        failures.append("smoke workload produced no result tuples")
    return failures


def test_sweep_throughput(benchmark):
    """Pytest entry: the same comparison at the suite's bench scale."""
    scale = int(os.environ.get("REPRO_BENCH_SCALE", 16))
    # Floor of 8k tuples: below that the pruned probe's win over the batch
    # kernels sits inside timer noise and the assertion below would flake.
    n_tuples = max(8_000, 50_000 // scale)
    report = benchmark.pedantic(run_benchmark, args=(n_tuples,), rounds=1, iterations=1)
    print()
    for line in format_report(report):
        print(line)
    benchmark.extra_info.update(
        {mode: row["tuples_per_sec"] for mode, row in report["modes"].items()}
    )
    sweep = report["modes"]["batch-parallel-sweep"]
    assert sweep["io_cost_ratio_vs_batch"] <= 1.0
    if HAVE_NUMPY:
        # The acceptance bar (>= 2x over batch) is asserted at full 50k
        # scale by main(); at reduced scale it must still win outright.
        assert sweep["speedup_vs_batch"] > 1.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=50_000, help="tuples per side")
    parser.add_argument("--memory-pages", type=int, default=48)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--prefetch-depth", type=int, default=8)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="TRACE_JSON",
        help="also run one observed join and export a Chrome trace_event "
        "JSON here plus a <stem>.metrics.json snapshot beside it",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="regression-gate mode: compare against a committed report "
        "instead of writing one",
    )
    args = parser.parse_args(argv)
    if args.tuples < 1:
        parser.error(f"--tuples must be >= 1, got {args.tuples}")

    report = run_benchmark(
        args.tuples,
        memory_pages=args.memory_pages,
        sweep_workers=args.workers,
        prefetch_depth=args.prefetch_depth,
    )
    for line in format_report(report):
        print(line)

    if args.trace_out is not None:
        paths = trace_join(
            args.tuples,
            args.trace_out,
            memory_pages=args.memory_pages,
            sweep_workers=args.workers,
            prefetch_depth=args.prefetch_depth,
        )
        print(f"wrote {paths['trace']} and {paths['metrics']}")

    if args.check is not None:
        failures = check_against(report, args.check)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(f"ok: within {IO_RATIO_TOLERANCE:.0%} of {args.check}")
        return 0

    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
