"""Extension bench: inner-relation sampling under mismatched distributions.

Section 5: "We made the simplifying assumption ... that the distribution
of tuples over valid time was approximately the same for both the inner
and outer relations.  Obviously, this assumption may not be valid for many
applications since gross mis-estimation of tuple caching costs may
result."

This bench builds exactly that adversarial case -- an all-instantaneous
outer relation joined with a heavily long-lived inner relation -- and
compares the planner flying blind (outer-based cache estimate, the paper's
default) against the suggested fix of "directly sampling the inner
relation".
"""

import random

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.report import format_table
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.iostats import CostModel
from repro.time.interval import Interval
from repro.workloads.specs import DatabaseSpec
from repro.workloads.generator import generate_relation


def mismatched_inner(spec: DatabaseSpec) -> ValidTimeRelation:
    """An inner relation where half the tuples are long-lived."""
    rng = random.Random(f"{spec.seed}/mismatch")
    schema = RelationSchema(
        "s", join_attributes=("object_id",), payload_attributes=("s_value",),
        tuple_bytes=spec.tuple_bytes,
    )
    relation = ValidTimeRelation(schema)
    half_life = spec.lifespan_chronons // 2
    for number in range(spec.relation_tuples):
        key = (rng.randrange(spec.n_objects),)
        if number % 2 == 0:
            start = rng.randrange(half_life)
            valid = Interval(start, min(start + half_life, spec.lifespan_chronons - 1))
        else:
            instant = rng.randrange(spec.lifespan_chronons)
            valid = Interval(instant, instant)
        relation.add(VTTuple(key, (number,), valid))
    return relation


def test_ablation_inner_sampling(benchmark, config):
    spec = DatabaseSpec("mismatch").scaled(config.scale)
    r = generate_relation(spec, "r")  # all instantaneous
    s = mismatched_inner(spec)  # half long-lived
    model = CostModel.with_ratio(5)

    def make_config(sample_inner):
        return PartitionJoinConfig(
            memory_pages=config.memory_pages(4),
            cost_model=model,
            page_spec=config.page_spec(spec.tuple_bytes),
            max_plan_candidates=config.max_plan_candidates,
            collect_result=False,
            sample_inner_relation=sample_inner,
        )

    def run_both():
        blind = partition_join(r, s, make_config(False))
        informed = partition_join(r, s, make_config(True))
        return blind, informed

    blind, informed = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def estimated_cache(run):
        return sum(run.plan.cache_pages)

    rows = [
        (
            "outer-based estimate (paper)",
            estimated_cache(blind),
            blind.plan.num_partitions,
            blind.layout.tracker.stats.cost(model),
        ),
        (
            "inner sampled (Section 5 fix)",
            estimated_cache(informed),
            informed.plan.num_partitions,
            informed.layout.tracker.stats.cost(model),
        ),
    ]
    print()
    print("Inner-sampling ablation (instantaneous outer, half-long-lived inner)")
    print(
        format_table(
            ("planner", "est. cache pages", "partitions", "total cost"), rows
        )
    )

    benchmark.extra_info["blind_cost"] = blind.layout.tracker.stats.cost(model)
    benchmark.extra_info["informed_cost"] = informed.layout.tracker.stats.cost(model)
    # The blind planner cannot see the inner's long-lived mass at all.
    assert estimated_cache(blind) == 0
    assert estimated_cache(informed) > 0
    assert blind.outcome.n_result_tuples == informed.outcome.n_result_tuples