"""Shared machinery of the benchmark suite.

Every bench that compares execution modes needs the same four things: a
probe-heavy workload whose candidate space dwarfs its result, a wall-clock
timer around :func:`repro.core.partition_join.partition_join`, an
equivalence fingerprint that stops a "speedup" from ever coming from doing
different work, and a machine-readable report written next to the repo
root so CI can gate on committed numbers.  This module holds all four;
``bench_kernels.py`` and ``bench_sweep_parallel.py`` are thin drivers on
top of it.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Callable, Dict, Sequence, Tuple

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.exec import HAVE_NUMPY, backend_name
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

#: Reports land next to the repo root, beside BENCH_kernels.json.
REPO_ROOT = Path(__file__).resolve().parent.parent


def probe_heavy_relation(
    name: str, n_tuples: int, *, seed: int, n_keys: int = 32, lifespan: int = 50_000
) -> ValidTimeRelation:
    """A relation whose join candidates vastly outnumber its matches.

    32 keys over 50k tuples gives ~1.5k tuples per key per side, i.e. a
    candidate space of tens of millions of key-matching pairs, while the
    short intervals scattered over a long lifespan keep actual
    intersections rare.  That ratio is exactly where per-candidate overhead
    dominates and both the vectorized kernels and the interval-pruned
    probe pay off.
    """
    schema = RelationSchema(
        name, join_attributes=("k",), payload_attributes=(f"{name}_payload",)
    )
    rng = random.Random(seed)
    relation = ValidTimeRelation(schema)
    for number in range(n_tuples):
        key = (f"k{rng.randrange(n_keys)}",)
        start = rng.randrange(lifespan)
        end = min(lifespan - 1, start + rng.randrange(4))
        relation.add(VTTuple(key, (f"{name}{number}",), Interval(start, end)))
    return relation


def result_fingerprint(run) -> tuple:
    """What every mode must reproduce exactly: the join's outcome counters."""
    outcome = run.outcome
    return (
        outcome.n_result_tuples,
        outcome.overflow_blocks,
        outcome.cache_tuples_peak,
        outcome.cache_tuples_spilled,
    )


def phase_stats_fingerprint(run) -> dict:
    """Full per-phase random/sequential breakdown (byte-for-byte modes)."""
    return {
        name: (s.random_reads, s.sequential_reads, s.random_writes, s.sequential_writes)
        for name, s in run.layout.tracker.phases.items()
    }


def phase_op_fingerprint(run) -> dict:
    """Per-phase (reads, writes) op counts -- the contract of modes that may
    legally *reorder* accesses (never add or drop one)."""
    return {
        name: (s.reads, s.writes) for name, s in run.layout.tracker.phases.items()
    }


def charged_io(run, config: PartitionJoinConfig) -> Dict:
    """The charged-I/O row of a report: op counts, weighted cost, tags."""
    stats = run.layout.tracker.stats
    return {
        "total_ops": stats.total_ops,
        "reads": stats.reads,
        "writes": stats.writes,
        "io_cost": round(stats.cost(config.cost_model), 1),
        "prefetch_reads": stats.prefetch_reads,
        "writeback_writes": stats.writeback_writes,
    }


def timed_join(r, s, config: PartitionJoinConfig) -> Tuple[object, float]:
    """One partition join under *config*, wall-clock timed."""
    begin = time.perf_counter()
    run = partition_join(r, s, config)
    return run, time.perf_counter() - begin


def time_modes(
    r,
    s,
    modes: Sequence[str],
    make_config: Callable[[str], PartitionJoinConfig],
) -> Dict[str, Dict]:
    """Run *modes* over the same workload; per-mode timing + I/O rows.

    The caller asserts its own equivalence contract on the returned runs
    (stored under ``"run"``; strip before serializing).
    """
    results: Dict[str, Dict] = {}
    for mode in modes:
        config = make_config(mode)
        run, elapsed = timed_join(r, s, config)
        results[mode] = {
            "run": run,
            "seconds": round(elapsed, 4),
            "tuples_per_sec": round((len(r) + len(s)) / elapsed, 1),
            "n_result_tuples": run.outcome.n_result_tuples,
            "num_partitions": run.plan.num_partitions,
            "io": charged_io(run, config),
        }
    return results


def environment() -> Dict:
    return {
        "backend": backend_name(),
        "have_numpy": HAVE_NUMPY,
        "python": platform.python_version(),
    }


def write_report(report: Dict, output: Path) -> None:
    output.write_text(json.dumps(report, indent=2) + "\n")


def load_report(path: Path) -> Dict:
    return json.loads(path.read_text())


def observed_config(config: PartitionJoinConfig) -> PartitionJoinConfig:
    """*config* with observability switched on (for ``--trace-out`` runs)."""
    import dataclasses

    from repro.obs import ObservabilityConfig

    if config.observability is not None:
        return config
    return dataclasses.replace(config, observability=ObservabilityConfig())


def write_trace(run, trace_out: Path) -> Dict[str, Path]:
    """Export a run's observability artifacts next to *trace_out*.

    Writes the Chrome ``trace_event`` JSON to *trace_out* (load it in
    ``chrome://tracing`` / Perfetto) and the metrics snapshot to
    ``<trace_out stem>.metrics.json``.  Returns the written paths.
    """
    obs = run.observability
    if obs is None:
        raise ValueError(
            "run has no observability runtime; build its config via "
            "observed_config() before joining"
        )
    trace_out = Path(trace_out)
    trace_out.write_text(json.dumps(obs.chrome_trace(), indent=2) + "\n")
    metrics_out = trace_out.with_name(trace_out.stem + ".metrics.json")
    metrics_out.write_text(json.dumps(obs.metrics_snapshot(), indent=2) + "\n")
    return {"trace": trace_out, "metrics": metrics_out}
