"""Ablation: the Section 4.2 sequential-scan sampling optimization.

The paper initially charged one random access per sample and then observed
that past ~819 samples (at 10:1) a single sequential scan of the outer
relation is cheaper.  This bench runs the partition join with the
optimization enabled and disabled across the three cost ratios and reports
the sampling-phase and total costs.
"""

import pytest

from repro.experiments.runner import run_partition
from repro.experiments.report import format_table
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig7_spec


@pytest.mark.parametrize("ratio", [2, 5, 10])
def test_ablation_scan_sampling(benchmark, config, ratio):
    r, s = config.database(fig7_spec(64_000))
    memory = config.memory_pages(4)
    model = CostModel.with_ratio(ratio)

    def run_both():
        with_opt = run_partition(r, s, memory, model, config, allow_scan_sampling=True)
        without_opt = run_partition(r, s, memory, model, config, allow_scan_sampling=False)
        return with_opt, without_opt

    with_opt, without_opt = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        (
            "scan optimization ON",
            with_opt.phase_costs.get("sample", 0.0),
            with_opt.cost,
        ),
        (
            "scan optimization OFF",
            without_opt.phase_costs.get("sample", 0.0),
            without_opt.cost,
        ),
    ]
    print()
    print(f"Sampling ablation at ratio {ratio}:1 (4 MiB memory)")
    print(format_table(("variant", "C_sample", "total"), rows))

    benchmark.extra_info["sample_cost_on"] = with_opt.phase_costs.get("sample", 0.0)
    benchmark.extra_info["sample_cost_off"] = without_opt.phase_costs.get("sample", 0.0)
    # The optimization can only help overall (same join work, cheaper draw);
    # tiny plan differences get a 5% allowance.
    assert with_opt.cost <= without_opt.cost * 1.05
