"""Figure 6 (Section 4.2): evaluation cost vs main memory size.

Sweeps 1-32 MiB of buffer memory at random:sequential cost ratios 2:1, 5:1,
and 10:1 over a database of instantaneous tuples, for the partition join,
sort-merge, and (analytical) nested loops -- the paper's nine curves.

Paper shape expectations: the partition join performs well at every memory
size and beats sort-merge wherever the relations exceed memory; nested
loops is worst at 1 MiB and competitive at 32 MiB, crossing the others as
memory grows.
"""

from repro.experiments.fig6 import MEMORY_SWEEP_MB, run_fig6, shape_checks
from repro.experiments.report import crossover, format_table, verdict_lines


def test_fig6_memory_sweep(benchmark, config):
    points = benchmark.pedantic(
        run_fig6, args=(config,), rounds=1, iterations=1
    )

    print()
    print("Figure 6 -- evaluation cost vs main memory (weighted I/O)")
    rows = [
        (p.memory_mb, f"{p.ratio:.0f}:1", p.algorithm, p.cost) for p in points
    ]
    print(format_table(("memory_MiB", "ratio", "algorithm", "cost"), rows))

    # Where does nested-loops overtake the partition join (the Figure 6
    # crossover as memory grows)?
    for ratio in (2, 5, 10):
        partition = [
            p.cost
            for p in points
            if p.algorithm == "partition" and p.ratio == ratio
        ]
        nested = [
            p.cost
            for p in points
            if p.algorithm == "nested_loop" and p.ratio == ratio
        ]
        cross = crossover(list(MEMORY_SWEEP_MB), nested, partition)
        print(
            f"nested-loops crosses below partition join at ratio {ratio}:1: "
            f"{f'{cross:.1f} MiB' if cross is not None else 'never'}"
        )

    problems = shape_checks(points)
    print(verdict_lines("fig6", problems))
    benchmark.extra_info["points"] = len(points)
    benchmark.extra_info["shape_deviations"] = len(problems)
    assert problems == []
