"""Ablation: sampled equi-depth partitioning vs naive equal-width intervals.

Section 3.4's reason for sampling at all: partition *cardinality* must be
balanced, and only the data can say where the boundaries lie.  On a
temporally skewed relation (80% of tuples inside 10% of the lifespan),
equal-width intervals pack the hot window into one partition that overflows
the outer buffer -- correctness survives (Section 3.4 promises only
performance suffers), but the overflow blocks force re-scans.  The sampled
partitioning adapts its boundaries and stays within budget.
"""

from repro.core.intervals import PartitionMap
from repro.core.joiner import join_partitions
from repro.core.partitioner import do_partitioning
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.report import format_table
from repro.storage.buffer import JoinBufferAllocation
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.time.interval import Interval
from repro.workloads.generator import skewed_relation
from repro.workloads.specs import DatabaseSpec


def equal_width_join(r, s, join_config):
    """Partition join with fixed equal-width intervals (no sampling)."""
    layout = DiskLayout(spec=join_config.page_spec)
    allocation = JoinBufferAllocation(join_config.memory_pages)
    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)

    span = r.lifespan().union(s.lifespan())
    n_parts = max(1, r_file.n_pages // max(1, allocation.buff_size - 1) + 1)
    width = max(1, span.duration // n_parts)
    intervals = []
    start = span.start
    while start <= span.end:
        end = min(span.end, start + width - 1)
        if intervals and end == span.end and start > span.end:
            break
        intervals.append(Interval(start, end))
        start = end + 1
    pmap = PartitionMap(intervals)

    with layout.tracker.phase("partition"):
        r_parts = do_partitioning(r_file, pmap, layout, "r", join_config.memory_pages)
        layout.disk.park_heads()
        s_parts = do_partitioning(s_file, pmap, layout, "s", join_config.memory_pages)
    layout.disk.park_heads()
    with layout.tracker.phase("join"):
        outcome = join_partitions(
            r_parts,
            s_parts,
            pmap,
            allocation.buff_size,
            layout,
            r.schema.join_result_schema(s.schema),
            collect=False,
        )
    return outcome, layout


def test_ablation_skew(benchmark, config):
    spec = DatabaseSpec(
        "skew_bench",
        relation_tuples=131_072,
        n_objects=26_214,
        lifespan_chronons=2**20,
    ).scaled(config.scale)
    r = skewed_relation(spec, "r")
    s = skewed_relation(spec, "s")
    model = CostModel.with_ratio(5)
    join_config = PartitionJoinConfig(
        memory_pages=config.memory_pages(4),
        cost_model=model,
        page_spec=config.page_spec(spec.tuple_bytes),
        max_plan_candidates=config.max_plan_candidates,
        collect_result=False,
    )

    def run_both():
        sampled = partition_join(r, s, join_config)
        fixed_outcome, fixed_layout = equal_width_join(r, s, join_config)
        return sampled, fixed_outcome, fixed_layout

    sampled, fixed_outcome, fixed_layout = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    sampled_cost = sampled.layout.tracker.stats.cost(model)
    fixed_cost = fixed_layout.tracker.stats.cost(model)
    print()
    print("Skew ablation (80% of tuples in 10% of the lifespan, 4 MiB)")
    print(
        format_table(
            ("partitioning", "overflow blocks", "total cost"),
            [
                ("sampled equi-depth (paper)", sampled.outcome.overflow_blocks, sampled_cost),
                ("equal-width", fixed_outcome.overflow_blocks, fixed_cost),
            ],
        )
    )

    benchmark.extra_info["sampled_cost"] = sampled_cost
    benchmark.extra_info["equal_width_cost"] = fixed_cost
    assert fixed_outcome.n_result_tuples == sampled.outcome.n_result_tuples
    # The skewed hot window must overflow equal-width partitions more than
    # the sampled ones.
    assert fixed_outcome.overflow_blocks > sampled.outcome.overflow_blocks
    assert sampled_cost < fixed_cost
