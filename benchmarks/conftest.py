"""Shared configuration for the benchmark suite.

Benches default to scale 16 (relations of 8 192 tuples / 1 024 pages each)
so the whole suite runs in well under a minute; set ``REPRO_BENCH_SCALE=1``
to run at full paper scale (131 072 tuples per relation -- slow in pure
Python but supported).  Every bench prints the table or series the paper's
figure reports (visible with ``pytest -s``) and attaches the headline
numbers to the benchmark record via ``extra_info``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

DEFAULT_SCALE = 16


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig(scale=bench_scale())
