"""Ablation: tuple migration (the paper) vs replication (Leung-Muntz).

Section 3.2 rejects replicating long-lived tuples into every overlapped
partition because it "requires additional secondary storage space and
complicates update operations".  This bench quantifies the storage side:
at increasing long-lived density, replication writes ever more partition
pages (and re-reads them during the join), while migration's tuple cache
stays cheap.
"""

import pytest

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.core.replicating import replicating_partition_join
from repro.experiments.report import format_table
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig7_spec


@pytest.mark.parametrize("long_lived_total", [16_000, 64_000, 128_000])
def test_ablation_replication(benchmark, config, long_lived_total):
    r, s = config.database(fig7_spec(long_lived_total))
    model = CostModel.with_ratio(5)
    join_config = PartitionJoinConfig(
        memory_pages=config.memory_pages(8),
        cost_model=model,
        page_spec=config.page_spec(r.schema.tuple_bytes),
        max_plan_candidates=config.max_plan_candidates,
        collect_result=False,
    )

    def run_both():
        migrated = partition_join(r, s, join_config)
        replicated = replicating_partition_join(r, s, join_config)
        return migrated, replicated

    migrated, replicated = benchmark.pedantic(run_both, rounds=1, iterations=1)

    mig_cost = migrated.layout.tracker.stats.cost(model)
    rep_cost = replicated.layout.tracker.stats.cost(model)
    mig_written = migrated.layout.tracker.phases["partition"].writes
    rep_written = replicated.layout.tracker.phases["partition"].writes

    print()
    print(f"Replication ablation at {long_lived_total} long-lived tuples")
    print(
        format_table(
            ("variant", "partition pages written", "total cost"),
            [
                ("migration (paper)", mig_written, mig_cost),
                ("replication (LM92b)", rep_written, rep_cost),
            ],
        )
    )
    print(f"extra tuple copies stored by replication: {replicated.replicated_tuples}")

    benchmark.extra_info["migration_cost"] = mig_cost
    benchmark.extra_info["replication_cost"] = rep_cost
    benchmark.extra_info["extra_copies"] = replicated.replicated_tuples
    # Replication must write at least as many partition pages as migration.
    assert rep_written >= mig_written
    assert replicated.outcome.n_result_tuples == migrated.outcome.n_result_tuples
