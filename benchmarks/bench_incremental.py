"""Extension bench: incremental view maintenance vs full recomputation.

Section 3.1's motivating observation -- "the consistency of the view is
insured by recomputing only r_i JOIN s_i" -- turned into numbers: the work
(candidate pairs probed) to absorb a batch of updates into the materialized
join is orders of magnitude below joining the base relations from scratch.
"""

from repro.core.intervals import PartitionMap, choose_intervals
from repro.experiments.report import format_table
from repro.incremental.maintenance import apply_batch
from repro.incremental.view import MaterializedVTJoin
from repro.workloads.specs import fig7_spec


def test_incremental_vs_recompute(benchmark, config):
    r, s = config.database(fig7_spec(32_000))
    sample = list(r.tuples[:2000])
    pmap = PartitionMap(choose_intervals(sample, 16))

    view = MaterializedVTJoin(r.schema, s.schema, pmap, r.tuples, s.tuples)
    updates = [("insert", "r", tup.with_valid(tup.valid)) for tup in s_like_updates(r)]

    stats = benchmark.pedantic(
        apply_batch, args=(view, updates), rounds=1, iterations=1
    )

    recompute_pairs = _recompute_probe_count(r, s)
    print()
    print("Incremental maintenance vs full recomputation")
    print(
        format_table(
            ("strategy", "updates", "pairs probed"),
            [
                ("incremental (partition-aligned)", stats.updates, stats.pairs_probed),
                ("full recompute", "-", recompute_pairs),
            ],
        )
    )
    benchmark.extra_info["pairs_incremental"] = stats.pairs_probed
    benchmark.extra_info["pairs_recompute"] = recompute_pairs
    assert stats.pairs_probed < recompute_pairs / 10


def s_like_updates(r, count=64):
    """A small batch of fresh tuples shaped like the base data."""
    fresh = []
    for number, tup in enumerate(r.tuples[:count]):
        fresh.append(
            type(tup)(tup.key, (f"new{number}",), tup.valid)
        )
    return fresh


def _recompute_probe_count(r, s) -> int:
    """Pairs a from-scratch hash join would probe: sum over keys of |r_k|x|s_k|."""
    r_groups = r.group_by_key()
    s_groups = s.group_by_key()
    return sum(
        len(r_tuples) * len(s_groups.get(key, ()))
        for key, r_tuples in r_groups.items()
    )
