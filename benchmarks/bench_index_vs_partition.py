"""Extension bench: the AP-tree index join vs the partition join.

Section 4.1 frames the design space: the Gunadhi-Segev line indexes
append-only relations (the AP-tree access path); the paper's partition
join needs no access path but touches both relations wholesale.  This
bench stages the comparison the paper only argues qualitatively: on
instantaneous data with few matches per probe, the index join's pruned
probes are competitive; as long-lived density rises, every probe fans out
over the long-lived leaves and the index join degrades, while the
partition join's cost grows only via its tuple cache.

(Index *construction* is uncharged, per the append-only story -- the index
exists because inserts maintained it.  The paper's "additional update
costs" caveat lives exactly there.)
"""

import pytest

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.report import format_table
from repro.index.index_join import index_nested_loop_join
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig7_spec


@pytest.mark.parametrize("long_lived_total", [0, 64_000])
def test_index_vs_partition(benchmark, config, long_lived_total):
    spec = fig7_spec(long_lived_total) if long_lived_total else fig7_spec(2).scaled(1)
    if long_lived_total:
        r, s = config.database(spec)
    else:
        from repro.workloads.specs import fig6_spec

        r, s = config.database(fig6_spec())
    model = CostModel.with_ratio(5)
    page_spec = config.page_spec(r.schema.tuple_bytes)

    def run_both():
        partition = partition_join(
            r,
            s,
            PartitionJoinConfig(
                memory_pages=config.memory_pages(8),
                cost_model=model,
                page_spec=page_spec,
                max_plan_candidates=config.max_plan_candidates,
                collect_result=False,
            ),
        )
        index = index_nested_loop_join(
            r, s, page_spec=page_spec, collect_result=False
        )
        return partition, index

    partition, index = benchmark.pedantic(run_both, rounds=1, iterations=1)

    partition_cost = partition.layout.tracker.stats.cost(model)
    index_cost = index.layout.tracker.stats.cost(model)
    print()
    print(f"Index join vs partition join ({long_lived_total} long-lived tuples)")
    print(
        format_table(
            ("algorithm", "cost", "notes"),
            [
                (
                    "partition join",
                    partition_cost,
                    f"{partition.plan.num_partitions} partitions",
                ),
                (
                    "AP-tree index join",
                    index_cost,
                    f"{index.index_pages_read} index pages over {index.n_probes} probes",
                ),
            ],
        )
    )
    benchmark.extra_info["partition_cost"] = partition_cost
    benchmark.extra_info["index_cost"] = index_cost
    assert partition.outcome.n_result_tuples == index.n_result_tuples