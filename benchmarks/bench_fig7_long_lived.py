"""Figure 7 (Section 4.3): evaluation cost vs long-lived tuple density.

Databases with 8 000 to 128 000 long-lived tuples (8 000-tuple steps;
scaled), memory fixed at 8 MiB and the cost ratio at 5:1.

Paper shape expectations: the partition join outperforms sort-merge at all
densities; sort-merge's backing-up makes its cost grow much faster than
the partition join's cheap tuple-cache appends; nested loops is flat.
"""

from repro.experiments.fig7 import run_fig7, shape_checks
from repro.experiments.report import format_table, verdict_lines


def test_fig7_long_lived(benchmark, config):
    points = benchmark.pedantic(
        run_fig7, args=(config,), rounds=1, iterations=1
    )

    print()
    print("Figure 7 -- evaluation cost vs # of long-lived tuples (8 MiB, 5:1)")
    rows = []
    for p in points:
        extra = ""
        if p.algorithm == "sort_merge":
            extra = f"backup={p.detail['backup_page_reads']}"
        elif p.algorithm == "partition":
            extra = f"cache_peak={p.detail['cache_tuples_peak']}"
        rows.append((p.long_lived_total, p.algorithm, p.cost, extra))
    print(format_table(("long_lived", "algorithm", "cost", "notes"), rows))

    partition = [p.cost for p in points if p.algorithm == "partition"]
    sort_merge = [p.cost for p in points if p.algorithm == "sort_merge"]
    print(
        f"growth over the sweep: partition {partition[0]:,.0f} -> {partition[-1]:,.0f} "
        f"(+{partition[-1] - partition[0]:,.0f}), "
        f"sort-merge {sort_merge[0]:,.0f} -> {sort_merge[-1]:,.0f} "
        f"(+{sort_merge[-1] - sort_merge[0]:,.0f})"
    )

    problems = shape_checks(points)
    print(verdict_lines("fig7", problems))
    benchmark.extra_info["partition_growth"] = partition[-1] - partition[0]
    benchmark.extra_info["sort_merge_growth"] = sort_merge[-1] - sort_merge[0]
    benchmark.extra_info["shape_deviations"] = len(problems)
    assert problems == []
