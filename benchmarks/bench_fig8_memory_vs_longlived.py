"""Figure 8 (Section 4.4): memory size vs long-lived density, partition join.

Eight databases (16 000 to 128 000 long-lived tuples, scaled) each
evaluated at 1, 2, 4, 16, and 32 MiB.  The paper's conclusion, which the
shape checks assert: with ample memory the density curves converge (tuple
caching becomes insignificant); with scarce memory they spread.
"""

from repro.experiments.fig8 import run_fig8, shape_checks
from repro.experiments.report import format_table, verdict_lines


def test_fig8_memory_vs_longlived(benchmark, config):
    points = benchmark.pedantic(
        run_fig8, args=(config,), rounds=1, iterations=1
    )

    print()
    print("Figure 8 -- partition-join cost: memory x long-lived density")
    memories = sorted({p.memory_mb for p in points})
    totals = sorted({p.long_lived_total for p in points})
    by_key = {(p.memory_mb, p.long_lived_total): p.cost for p in points}
    rows = [
        [total] + [by_key[(mb, total)] for mb in memories] for total in totals
    ]
    print(
        format_table(
            ["long_lived \\ MiB"] + [str(mb) for mb in memories], rows
        )
    )

    spreads = {
        mb: max(by_key[(mb, t)] for t in totals) - min(by_key[(mb, t)] for t in totals)
        for mb in memories
    }
    print("cost spread across densities per memory size:", {k: round(v) for k, v in spreads.items()})

    problems = shape_checks(points)
    print(verdict_lines("fig8", problems))
    benchmark.extra_info["spread_smallest_memory"] = spreads[memories[0]]
    benchmark.extra_info["spread_largest_memory"] = spreads[memories[-1]]
    benchmark.extra_info["shape_deviations"] = len(problems)
    assert problems == []
