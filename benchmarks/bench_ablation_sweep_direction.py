"""Ablation: backward sweep (the paper) vs forward sweep (footnote 1).

Section 3.3, footnote 1: "An equivalent strategy is to place tuples in
their first partition and propagate long-lived tuples towards the last
partition during evaluation.  We chose the given strategy with
consideration for incremental adaptations."  This bench confirms the
equivalence empirically: same results, near-identical I/O across
long-lived densities.
"""

import pytest

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.report import format_table
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig7_spec


@pytest.mark.parametrize("long_lived_total", [16_000, 96_000])
def test_ablation_sweep_direction(benchmark, config, long_lived_total):
    r, s = config.database(fig7_spec(long_lived_total))
    model = CostModel.with_ratio(5)

    def make_config(direction):
        return PartitionJoinConfig(
            memory_pages=config.memory_pages(8),
            cost_model=model,
            page_spec=config.page_spec(r.schema.tuple_bytes),
            max_plan_candidates=config.max_plan_candidates,
            collect_result=False,
            sweep_direction=direction,
        )

    def run_both():
        backward = partition_join(r, s, make_config("backward"))
        forward = partition_join(r, s, make_config("forward"))
        return backward, forward

    backward, forward = benchmark.pedantic(run_both, rounds=1, iterations=1)

    backward_cost = backward.layout.tracker.stats.cost(model)
    forward_cost = forward.layout.tracker.stats.cost(model)
    print()
    print(f"Sweep-direction ablation at {long_lived_total} long-lived tuples")
    print(
        format_table(
            ("sweep", "cache peak (tuples)", "total cost"),
            [
                ("backward (paper)", backward.outcome.cache_tuples_peak, backward_cost),
                ("forward (footnote 1)", forward.outcome.cache_tuples_peak, forward_cost),
            ],
        )
    )

    benchmark.extra_info["backward_cost"] = backward_cost
    benchmark.extra_info["forward_cost"] = forward_cost
    assert backward.outcome.n_result_tuples == forward.outcome.n_result_tuples
    # "Equivalent strategy": costs within a modest factor of each other.
    assert 0.6 < forward_cost / backward_cost < 1.6
