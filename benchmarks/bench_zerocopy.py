"""Zero-copy columnar hot path: tuple vs batch vs sweep vs zero-copy.

Runs the same partition join (by default 50 000 x 50 000 tuples, the
``harness`` probe-heavy workload under a 48-page budget) across four
execution modes -- the tuple oracle, the PR-1 batch kernels, the pipelined
``"batch-parallel-sweep"``, and the PR-6 ``"zero-copy-sweep"`` (packed
columnar pages + shared-memory lane fan-out + multibuffer-planned
auxiliary buffers) -- and reports wall-clock throughput plus the
charged-I/O bill of each.  Before any number is reported it asserts the
tentpole's contract: identical join outcomes in every mode, and for the
zero-copy mode the *entire* per-phase I/O breakdown (random/sequential
split included) bit-equal to the pipelined sweep it specializes.

A second section ablates the lane transport itself: the same fan-out
dispatched once through the metered pickling dispatcher and once through
the shared-memory arena, reporting the bytes each transport moved.  The
descriptor fan-out's win -- and the CI gate -- lives in that pair.

Writes machine-readable ``BENCH_zerocopy.json`` next to the repo root::

    PYTHONPATH=src python benchmarks/bench_zerocopy.py

CI gates on the committed numbers with ``--check``::

    PYTHONPATH=src python benchmarks/bench_zerocopy.py \\
        --tuples 8000 --check BENCH_zerocopy.json

which re-measures the transport ablation (fixed-size, scale-independent)
and the charged-I/O ratio, failing if the shared transport's copy bytes
regressed more than 10% against the committed report.
"""

from __future__ import annotations

import argparse
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Optional

from harness import (
    REPO_ROOT,
    environment,
    load_report,
    phase_stats_fingerprint,
    probe_heavy_relation,
    result_fingerprint,
    time_modes,
    write_report,
)
from repro.core.partition_join import PartitionJoinConfig
from repro.exec import HAVE_NUMPY
from repro.storage.page import PageSpec

MODES = ("tuple", "batch", "batch-parallel-sweep", "zero-copy-sweep")
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_zerocopy.json"

#: CI regression gate: the shared transport's copy bytes on the fixed
#: ablation workload may drift at most this much above the committed
#: report before the perf-smoke job fails.
COPY_BYTES_TOLERANCE = 0.10


def run_benchmark(
    n_tuples: int,
    *,
    memory_pages: int = 48,
    sweep_workers: Optional[int] = 4,
    prefetch_depth: int = 8,
) -> Dict:
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    page_spec = PageSpec(page_bytes=8192, tuple_bytes=16)

    def make_config(mode: str) -> PartitionJoinConfig:
        return PartitionJoinConfig(
            memory_pages=memory_pages,
            page_spec=page_spec,
            execution=mode,
            sweep_workers=(
                sweep_workers
                if mode in ("batch-parallel-sweep", "zero-copy-sweep")
                else None
            ),
            prefetch_depth=prefetch_depth,
            collect_result=False,
            max_plan_candidates=6,
        )

    results = time_modes(r, s, MODES, make_config)

    # -- the equivalence contract, asserted before any number is reported --
    oracle = results["tuple"]["run"]
    for mode in MODES[1:]:
        if result_fingerprint(results[mode]["run"]) != result_fingerprint(oracle):
            raise AssertionError(f"execution={mode!r} changed the join outcome")
    # The zero-copy mode is the pipelined sweep with a different memory
    # story; its charged I/O must be bit-equal to that baseline, full
    # random/sequential breakdown included.
    zero_copy = results["zero-copy-sweep"]
    if phase_stats_fingerprint(zero_copy["run"]) != phase_stats_fingerprint(
        results["batch-parallel-sweep"]["run"]
    ):
        raise AssertionError(
            "execution='zero-copy-sweep' diverged from the pipelined sweep's I/O"
        )

    for row in results.values():
        del row["run"]
    for mode in MODES[1:]:
        results[mode]["speedup_vs_tuple"] = round(
            results[mode]["tuples_per_sec"] / results["tuple"]["tuples_per_sec"], 2
        )
    for mode in ("batch-parallel-sweep", "zero-copy-sweep"):
        results[mode]["speedup_vs_batch"] = round(
            results[mode]["tuples_per_sec"] / results["batch"]["tuples_per_sec"], 2
        )
    zero_copy["io_cost_ratio_vs_sweep"] = round(
        zero_copy["io"]["io_cost"]
        / results["batch-parallel-sweep"]["io"]["io_cost"],
        4,
    )
    zero_copy["io_cost_ratio_vs_batch"] = round(
        zero_copy["io"]["io_cost"] / results["batch"]["io"]["io_cost"], 4
    )

    return {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "memory_pages": memory_pages,
            "page_bytes": page_spec.page_bytes,
            "tuple_bytes": page_spec.tuple_bytes,
            "sweep_workers": sweep_workers,
            "prefetch_depth": prefetch_depth,
            "num_partitions": results["tuple"]["num_partitions"],
        },
        "environment": environment(),
        "modes": results,
        "transport_ablation": transport_ablation(),
    }


def transport_ablation(
    *, n_block: int = 20_000, n_page: int = 4_000, n_pages: int = 6, lanes: int = 4
) -> Dict:
    """Pickled vs shared-memory lane fan-out on one fixed dispatch workload.

    Deliberately scale-independent (the ``--tuples`` flag never touches
    it) so the byte counts are comparable across runs and machines: the
    pushes are a pure function of the workload, making the CI gate tight.
    Forces a real process pool even on single-core runners -- this section
    measures transport traffic, not parallel speedup.
    """
    if not HAVE_NUMPY:
        return {"skipped": "numpy unavailable; the arena fan-out is numpy-only"}

    import repro.exec.sweep_parallel as sweep
    from repro.core.intervals import PartitionMap
    from repro.exec.arena import reset_copy_counters
    from repro.exec.sweep_parallel import PipelinedSweepEngine
    from repro.model.vtuple import VTTuple
    from repro.time.interval import Interval

    rng = random.Random(2026)

    def tuples(n, tag):
        out = []
        for i in range(n):
            start = rng.randrange(0, 600)
            end = min(599, start + rng.randrange(0, 60))
            out.append(
                VTTuple((f"k{rng.randrange(32)}",), (f"{tag}{i}",), Interval(start, end))
            )
        return out

    block = tuples(n_block, "b")
    pages = [tuples(n_page, f"p{j}_") for j in range(n_pages)]
    pmap = PartitionMap([Interval(0, 199), Interval(200, 399), Interval(400, 599)])

    saved = (sweep.OVERSUBSCRIBE, sweep.MIN_LANE_ROWS)
    sweep.OVERSUBSCRIBE, sweep.MIN_LANE_ROWS = True, 0
    try:
        rows = {}
        outputs = {}
        for label, zero_copy in (("pickled", False), ("shared", True)):
            reset_copy_counters()
            engine = PipelinedSweepEngine(
                pmap, "backward", workers=lanes, zero_copy=zero_copy
            )
            try:
                index = engine.build_index(block)
                begin = time.perf_counter()
                outputs[label] = [
                    engine.process_page(index, page, 2, 1, True) for page in pages
                ]
                elapsed = time.perf_counter() - begin
                traffic = engine.copy_traffic()
            finally:
                engine.close()
            rows[label] = {
                "seconds": round(elapsed, 4),
                "bytes_moved": (
                    traffic["bytes_shared"] if zero_copy else traffic["bytes_pickled"]
                ),
                "arena_overflows": traffic["arena_overflows"],
                "slab_overflows": traffic["slab_overflows"],
            }
        if outputs["pickled"] != outputs["shared"]:
            raise AssertionError("the transports disagreed on the fan-out results")
    finally:
        sweep.OVERSUBSCRIBE, sweep.MIN_LANE_ROWS = saved

    rows["workload"] = {
        "block_tuples": n_block,
        "page_tuples": n_page,
        "pages": n_pages,
        "lanes": lanes,
    }
    rows["bytes_ratio_shared_vs_pickled"] = round(
        rows["shared"]["bytes_moved"] / max(1, rows["pickled"]["bytes_moved"]), 4
    )
    return rows


def format_report(report: Dict) -> List[str]:
    lines = [
        "zero-copy columnar path -- {n_tuples_per_side} x {n_tuples_per_side} "
        "tuples, {num_partitions} partitions, {memory_pages} pages, "
        "workers={sweep_workers}, backend={backend}".format(
            backend=report["environment"]["backend"], **report["workload"]
        ),
        f"{'mode':<22} {'seconds':>9} {'tuples/sec':>12} {'io cost':>10} {'speedup':>8}",
    ]
    for mode, row in report["modes"].items():
        speedup = row.get("speedup_vs_tuple", 1.0)
        lines.append(
            f"{mode:<22} {row['seconds']:>9.3f} {row['tuples_per_sec']:>12,.0f} "
            f"{row['io']['io_cost']:>10,.0f} {speedup:>8}"
        )
    zero_copy = report["modes"]["zero-copy-sweep"]
    lines.append(
        f"zero-copy vs batch: {zero_copy['speedup_vs_batch']}x wall-clock; "
        f"vs pipelined sweep: {zero_copy['io_cost_ratio_vs_sweep']}x charged I/O"
    )
    ablation = report["transport_ablation"]
    if "skipped" not in ablation:
        lines.append(
            "transport ablation: pickled {p:,} bytes / {ps:.3f}s vs "
            "shared {s:,} bytes / {ss:.3f}s ({ratio}x bytes)".format(
                p=ablation["pickled"]["bytes_moved"],
                ps=ablation["pickled"]["seconds"],
                s=ablation["shared"]["bytes_moved"],
                ss=ablation["shared"]["seconds"],
                ratio=ablation["bytes_ratio_shared_vs_pickled"],
            )
        )
    return lines


def check_against(report: Dict, committed_path: Path) -> List[str]:
    """The CI perf-smoke gate: copy bytes + I/O ratio vs the committed run."""
    committed = load_report(committed_path)
    failures = []

    fresh_ratio = report["modes"]["zero-copy-sweep"]["io_cost_ratio_vs_sweep"]
    if fresh_ratio != committed["modes"]["zero-copy-sweep"]["io_cost_ratio_vs_sweep"]:
        failures.append(
            f"charged-I/O ratio vs the pipelined sweep moved: {fresh_ratio} != "
            f"{committed['modes']['zero-copy-sweep']['io_cost_ratio_vs_sweep']} "
            "(must stay bit-equal)"
        )

    fresh_ablation = report["transport_ablation"]
    committed_ablation = committed.get("transport_ablation", {})
    if "skipped" not in fresh_ablation and "skipped" not in committed_ablation:
        fresh_bytes = fresh_ablation["shared"]["bytes_moved"]
        baseline = committed_ablation["shared"]["bytes_moved"]
        bound = baseline * (1.0 + COPY_BYTES_TOLERANCE)
        if fresh_bytes > bound:
            failures.append(
                f"shared-transport copy bytes regressed: {fresh_bytes:,} > "
                f"{bound:,.0f} (committed {baseline:,} + "
                f"{COPY_BYTES_TOLERANCE:.0%})"
            )
        if fresh_ablation["shared"]["bytes_moved"] >= fresh_ablation["pickled"][
            "bytes_moved"
        ]:
            failures.append(
                "the shared transport no longer beats pickling on moved bytes"
            )
    if report["modes"]["zero-copy-sweep"]["n_result_tuples"] <= 0 < report[
        "workload"
    ]["n_tuples_per_side"]:
        failures.append("smoke workload produced no result tuples")
    return failures


def test_zerocopy_throughput(benchmark):
    """Pytest entry: the same comparison at the suite's bench scale."""
    scale = int(os.environ.get("REPRO_BENCH_SCALE", 16))
    # Same floor as bench_sweep_parallel: below 8k tuples the columnar
    # win sits inside timer noise.
    n_tuples = max(8_000, 50_000 // scale)
    report = benchmark.pedantic(run_benchmark, args=(n_tuples,), rounds=1, iterations=1)
    print()
    for line in format_report(report):
        print(line)
    benchmark.extra_info.update(
        {mode: row["tuples_per_sec"] for mode, row in report["modes"].items()}
    )
    zero_copy = report["modes"]["zero-copy-sweep"]
    assert zero_copy["io_cost_ratio_vs_sweep"] == 1.0
    if HAVE_NUMPY:
        # The acceptance bar (>= 2x over batch) is checked at full 50k
        # scale on the committed report; at reduced scale it must still
        # win outright.
        assert zero_copy["speedup_vs_batch"] > 1.0
        ablation = report["transport_ablation"]
        assert (
            ablation["shared"]["bytes_moved"] < ablation["pickled"]["bytes_moved"]
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=50_000, help="tuples per side")
    parser.add_argument("--memory-pages", type=int, default=48)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--prefetch-depth", type=int, default=8)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="regression-gate mode: compare against a committed report "
        "instead of writing one",
    )
    args = parser.parse_args(argv)
    if args.tuples < 1:
        parser.error(f"--tuples must be >= 1, got {args.tuples}")

    report = run_benchmark(
        args.tuples,
        memory_pages=args.memory_pages,
        sweep_workers=args.workers,
        prefetch_depth=args.prefetch_depth,
    )
    for line in format_report(report):
        print(line)

    if args.check is not None:
        failures = check_against(report, args.check)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(f"ok: within {COPY_BYTES_TOLERANCE:.0%} of {args.check}")
        return 0

    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
