"""Kernel throughput: tuple-at-a-time vs batch vs batch-parallel execution.

Runs the same partition join (by default 50 000 x 50 000 tuples, ~250 keys,
mostly instantaneous intervals over a long lifespan, so the candidate space
dwarfs the result) under every ``PartitionJoinConfig.execution`` mode and
reports wall-clock tuples/sec.  The modes are required to produce identical
results and identical per-phase I/O statistics -- the benchmark asserts
this before reporting, so a speedup can never come from doing less work.

Writes a machine-readable ``BENCH_kernels.json`` next to the repo root
(override with ``--output``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py

or through pytest (scaled down via ``REPRO_BENCH_SCALE``, like the other
benches)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -s
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from harness import (
    REPO_ROOT,
    environment,
    observed_config,
    phase_stats_fingerprint,
    probe_heavy_relation,
    result_fingerprint,
    write_report,
    write_trace,
)
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.exec import HAVE_NUMPY
from repro.storage.page import PageSpec

MODES = ("tuple", "batch", "batch-parallel")
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernels.json"


def observe(run) -> tuple:
    """The equivalence fingerprint: counts plus per-phase I/O statistics.

    These modes replay the oracle's access sequence byte for byte, so the
    fingerprint includes the full random/sequential breakdown (unlike the
    pipelined sweep of ``bench_sweep_parallel.py``, which may reorder).
    """
    return result_fingerprint(run) + (phase_stats_fingerprint(run),)


def run_benchmark(
    n_tuples: int,
    *,
    memory_pages: int = 48,
    parallel_workers: Optional[int] = None,
    modes: Sequence[str] = MODES,
) -> Dict:
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    page_spec = PageSpec(page_bytes=8192, tuple_bytes=16)

    results: Dict[str, Dict] = {}
    fingerprints: Dict[str, tuple] = {}
    for mode in modes:
        config = PartitionJoinConfig(
            memory_pages=memory_pages,
            page_spec=page_spec,
            execution=mode,
            parallel_workers=parallel_workers,
            collect_result=False,
            # A small planner grid keeps mode-independent planning time from
            # diluting the kernel comparison; all modes share the same plan.
            max_plan_candidates=6,
        )
        begin = time.perf_counter()
        run = partition_join(r, s, config)
        elapsed = time.perf_counter() - begin
        fingerprints[mode] = observe(run)
        results[mode] = {
            "seconds": round(elapsed, 4),
            "tuples_per_sec": round((len(r) + len(s)) / elapsed, 1),
            "n_result_tuples": run.outcome.n_result_tuples,
            "num_partitions": run.plan.num_partitions,
        }

    for mode in modes[1:]:
        if fingerprints[mode] != fingerprints[modes[0]]:
            raise AssertionError(
                f"execution={mode!r} diverged from {modes[0]!r}; "
                "a speedup must never come from different work"
            )
        results[mode]["speedup_vs_tuple"] = round(
            results[mode]["tuples_per_sec"] / results["tuple"]["tuples_per_sec"], 2
        )

    return {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "memory_pages": memory_pages,
            "page_bytes": page_spec.page_bytes,
            "tuple_bytes": page_spec.tuple_bytes,
            "num_partitions": results[modes[0]]["num_partitions"],
        },
        "environment": environment(),
        "modes": results,
    }


def trace_join(
    n_tuples: int,
    trace_out: Path,
    *,
    memory_pages: int = 48,
    parallel_workers: Optional[int] = None,
) -> Dict[str, Path]:
    """One extra *observed* batch-kernel run, exporting its trace.

    Kept separate from the timed comparison so the observability hooks can
    never color the reported numbers or the equivalence fingerprints.
    """
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    config = observed_config(
        PartitionJoinConfig(
            memory_pages=memory_pages,
            page_spec=PageSpec(page_bytes=8192, tuple_bytes=16),
            execution="batch",
            parallel_workers=parallel_workers,
            collect_result=False,
            max_plan_candidates=6,
        )
    )
    run = partition_join(r, s, config)
    return write_trace(run, trace_out)


def format_report(report: Dict) -> List[str]:
    lines = [
        "kernel throughput -- {n_tuples_per_side} x {n_tuples_per_side} tuples, "
        "{num_partitions} partitions, backend={backend}".format(
            backend=report["environment"]["backend"], **report["workload"]
        ),
        f"{'mode':<16} {'seconds':>9} {'tuples/sec':>12} {'speedup':>8}",
    ]
    for mode, row in report["modes"].items():
        speedup = row.get("speedup_vs_tuple")
        lines.append(
            f"{mode:<16} {row['seconds']:>9.3f} {row['tuples_per_sec']:>12,.0f} "
            f"{speedup if speedup is not None else 1.0:>8}"
        )
    return lines


def test_kernel_throughput(benchmark):
    """Pytest entry: the same comparison at the suite's bench scale."""
    scale = int(os.environ.get("REPRO_BENCH_SCALE", 16))
    n_tuples = max(2_000, 50_000 // scale)
    report = benchmark.pedantic(
        run_benchmark, args=(n_tuples,), rounds=1, iterations=1
    )
    print()
    for line in format_report(report):
        print(line)
    # The committed BENCH_kernels.json records the full 50k x 50k run and
    # is regenerated only by ``main()`` -- a scaled-down pytest pass must
    # not clobber it.
    benchmark.extra_info.update(
        {mode: row["tuples_per_sec"] for mode, row in report["modes"].items()}
    )
    if HAVE_NUMPY:
        # The acceptance bar (>= 5x) is asserted at full 50k scale by
        # main(); at reduced scale the kernels must still win outright.
        assert report["modes"]["batch"]["speedup_vs_tuple"] > 1.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=50_000, help="tuples per side")
    parser.add_argument("--memory-pages", type=int, default=48)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="TRACE_JSON",
        help="also run one observed join and export a Chrome trace_event "
        "JSON here plus a <stem>.metrics.json snapshot beside it",
    )
    args = parser.parse_args(argv)
    if args.tuples < 1:
        parser.error(f"--tuples must be >= 1, got {args.tuples}")

    report = run_benchmark(
        args.tuples, memory_pages=args.memory_pages, parallel_workers=args.workers
    )
    for line in format_report(report):
        print(line)
    if args.trace_out is not None:
        paths = trace_join(
            args.tuples,
            args.trace_out,
            memory_pages=args.memory_pages,
            parallel_workers=args.workers,
        )
        print(f"wrote {paths['trace']} and {paths['metrics']}")
    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
