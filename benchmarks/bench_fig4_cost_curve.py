"""Figure 4: sampling cost vs tuple-cache paging cost over partition size.

Regenerates the paper's conceptual trade-off curve from the planner's
actual search trace on a long-lived database: ``C_sample`` rises with the
expected partition size, the tuple-cache component of ``C_join`` falls, and
the planner picks the minimum of the sum.
"""

from repro.experiments.fig4 import run_fig4, shape_checks
from repro.experiments.report import format_table, verdict_lines


def test_fig4_cost_curve(benchmark, config):
    result = benchmark.pedantic(
        run_fig4, args=(config,), rounds=1, iterations=1
    )

    rows = [
        (point.part_size, point.c_sample, point.c_join_cache, point.total)
        for point in result.curve
    ]
    print()
    print("Figure 4 -- I/O cost vs partition size (partSize in pages)")
    print(
        format_table(
            ("partSize", "C_sample", "C_cache", "C_sample + C_join"), rows
        )
    )
    print(f"chosen partSize: {result.chosen_part_size} (buffSize {result.buff_size})")
    problems = shape_checks(result)
    print(verdict_lines("fig4", problems))

    benchmark.extra_info["chosen_part_size"] = result.chosen_part_size
    benchmark.extra_info["curve_points"] = len(result.curve)
    benchmark.extra_info["shape_deviations"] = len(problems)
    assert problems == []
