"""Forward-scan sweep vs the partition join, plus the Allen-predicate bill.

Runs the same natural join (by default 50 000 x 50 000 tuples, the
``harness`` probe-heavy workload under a 48-page budget) twice -- once on
endpoint-sorted inputs and once on the raw unsorted stream -- across three
executions: the tuple-mode partition join (the paper's algorithm, the
wall-clock baseline the acceptance gate measures against), the batch
partition join, and the PR-8 ``"forward-sweep"``.  Before any number is
reported it asserts the equivalence contract (identical result
cardinality in every mode on both workloads) and the planner contract:
EXPLAIN picks ``forward-sweep`` on the sorted side of the crossover and
``partition`` on the unsorted side.

A second section times the sweep under every registry predicate (the 13
Allen relations plus the ``intersects``/``covers`` disjunctions) on
endpoint-sorted inputs.  The disjoint predicates ``before``/``after``
produce O(n^2) result pairs -- ~39M at full scale -- so they run at a
capped sub-scale (default 8 000 tuples per side) with the cap recorded in
their rows; every other predicate runs at full scale.

Writes machine-readable ``BENCH_allen.json`` next to the repo root::

    PYTHONPATH=src python benchmarks/bench_allen_sweep.py

CI gates on the committed numbers with ``--check``::

    PYTHONPATH=src python benchmarks/bench_allen_sweep.py \\
        --tuples 8000 --check BENCH_allen.json

which asserts the committed sorted-input speedup still clears the 1.5x
acceptance bar, re-checks the planner crossover on the fixed-size planner
workload, and requires the fresh (small-scale) sweep to win outright on
sorted input.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import Dict, List, Optional

from harness import (
    REPO_ROOT,
    charged_io,
    environment,
    load_report,
    probe_heavy_relation,
    timed_join,
    time_modes,
    write_report,
)
from repro.algebra.predicates import NATURAL_PREDICATE, predicate_names
from repro.core.partition_join import PartitionJoinConfig
from repro.core.planner import choose_physical_operator
from repro.engine.database import TemporalDatabase
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec

MODES = ("tuple", "batch", "forward-sweep")
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_allen.json"

#: The acceptance bar on the committed full-scale report: the forward
#: sweep's wall-clock win over the partition join on endpoint-sorted input.
SORTED_SPEEDUP_FLOOR = 1.5

#: Predicates whose result set is quadratic in the input (every pair of
#: strictly disjoint intervals qualifies); they run at a capped sub-scale.
QUADRATIC_PREDICATES = ("before", "after")

#: The planner-crossover section is deliberately scale-independent (the
#: ``--tuples`` flag never touches it): 8 000 tuples per side on 1 KiB
#: pages under a 16-page budget gives 125 pages per relation -- firmly
#: past the single-partition shortcut and expensive enough that the
#: blocked nested loop is priced out -- so the sorted/unsorted operator
#: flip is a pure function of the sortedness metadata and stays
#: comparable across runs.
PLANNER_TUPLES = 8_000
PLANNER_MEMORY_PAGES = 16
PLANNER_PAGE_SPEC = PageSpec(page_bytes=1024, tuple_bytes=16)


def endpoint_sort(relation):
    return relation.sorted_by(lambda t: (t.vs, t.ve, t.key, t.payload))


def run_benchmark(
    n_tuples: int,
    *,
    memory_pages: int = 48,
    disjoint_cap: int = 8_000,
) -> Dict:
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    page_spec = PageSpec(page_bytes=8192, tuple_bytes=16)

    def make_config(mode: str, predicate: str = NATURAL_PREDICATE):
        return PartitionJoinConfig(
            memory_pages=memory_pages,
            page_spec=page_spec,
            execution=mode,
            predicate=predicate if mode == "forward-sweep" else NATURAL_PREDICATE,
            collect_result=False,
            max_plan_candidates=6,
        )

    workloads = {
        "sorted": (endpoint_sort(r), endpoint_sort(s)),
        "unsorted": (r, s),
    }
    sections: Dict[str, Dict] = {}
    for label, (outer, inner) in workloads.items():
        results = time_modes(outer, inner, MODES, make_config)
        # -- the equivalence contract, asserted before any number is
        # reported: every mode computes the same natural join.
        cardinalities = {m: row["n_result_tuples"] for m, row in results.items()}
        if len(set(cardinalities.values())) != 1:
            raise AssertionError(
                f"{label} workload: modes disagree on the join result "
                f"({cardinalities})"
            )
        for row in results.values():
            del row["run"]
        for mode in MODES[1:]:
            results[mode]["speedup_vs_partition"] = round(
                results[mode]["tuples_per_sec"] / results["tuple"]["tuples_per_sec"],
                2,
            )
        results["forward-sweep"]["speedup_vs_batch"] = round(
            results["forward-sweep"]["tuples_per_sec"]
            / results["batch"]["tuples_per_sec"],
            2,
        )
        sections[label] = results

    return {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "memory_pages": memory_pages,
            "page_bytes": page_spec.page_bytes,
            "tuple_bytes": page_spec.tuple_bytes,
            "disjoint_cap": disjoint_cap,
        },
        "environment": environment(),
        "sorted": sections["sorted"],
        "unsorted": sections["unsorted"],
        "planner": planner_crossover(),
        "predicates": predicate_sweep(
            r, s, sections, make_config, n_tuples, disjoint_cap
        ),
    }


def planner_crossover() -> Dict:
    """EXPLAIN on both sides of the crossover, on the fixed planner workload.

    Asserts -- before the rows are reported -- that the database's EXPLAIN
    picks the forward sweep when both inputs carry endpoint-sorted
    metadata and the partition join when neither does, and records the
    cost model's view of the same decision via
    :func:`repro.core.planner.choose_physical_operator`.
    """
    r = probe_heavy_relation("works_on", PLANNER_TUPLES, seed=1994)
    s = probe_heavy_relation("earns", PLANNER_TUPLES, seed=1995)
    rows: Dict[str, Dict] = {}
    for label, sort in (("sorted", True), ("unsorted", False)):
        outer = endpoint_sort(r) if sort else r
        inner = endpoint_sort(s) if sort else s
        db = TemporalDatabase(
            memory_pages=PLANNER_MEMORY_PAGES, page_spec=PLANNER_PAGE_SPEC
        )
        db.create_relation(outer.schema)
        db.create_relation(inner.schema)
        db.relation(outer.schema.name).extend(outer.tuples)
        db.relation(inner.schema.name).extend(inner.tuples)
        report = db.explain(outer.schema.name, inner.schema.name)
        pages = PLANNER_PAGE_SPEC.pages_for_tuples(PLANNER_TUPLES)
        choice = choose_physical_operator(
            pages,
            pages,
            PLANNER_MEMORY_PAGES,
            CostModel(),
            outer_sorted=sort,
            inner_sorted=sort,
        )
        expected = "forward-sweep" if sort else "partition"
        if report.operator != expected or choice.operator != expected:
            raise AssertionError(
                f"planner picked {report.operator!r}/{choice.operator!r} on the "
                f"{label} side of the crossover (expected {expected!r})"
            )
        rows[label] = {
            "operator": report.operator,
            "algorithm": report.algorithm,
            "rationale": report.operator_rationale,
            "sweep_cost": round(choice.sweep_cost, 1),
            "partition_cost": round(choice.partition_cost, 1),
            "sort_charge": round(choice.sort_charge, 1),
        }
    rows["workload"] = {
        "n_tuples_per_side": PLANNER_TUPLES,
        "memory_pages": PLANNER_MEMORY_PAGES,
    }
    return rows


def predicate_sweep(
    r, s, sections, make_config, n_tuples: int, disjoint_cap: int
) -> Dict:
    """The forward sweep under every registry predicate, on sorted input.

    ``intersects`` must reproduce the mode-comparison cardinality exactly
    (same workload, same predicate -- the natural join); the quadratic
    predicates run at ``disjoint_cap`` tuples per side and say so in
    their rows.
    """
    sorted_full = (endpoint_sort(r), endpoint_sort(s))
    capped_n = min(n_tuples, disjoint_cap)
    sorted_capped = sorted_full
    if capped_n < n_tuples:
        sorted_capped = (
            endpoint_sort(probe_heavy_relation("works_on", capped_n, seed=1994)),
            endpoint_sort(probe_heavy_relation("earns", capped_n, seed=1995)),
        )
    rows: Dict[str, Dict] = {}
    for name in predicate_names():
        capped = name in QUADRATIC_PREDICATES
        outer, inner = sorted_capped if capped else sorted_full
        config = make_config("forward-sweep", predicate=name)
        run, elapsed = timed_join(outer, inner, config)
        rows[name] = {
            "seconds": round(elapsed, 4),
            "n_result_tuples": run.outcome.n_result_tuples,
            "tuples_per_side": len(outer),
            "capped": capped,
            "io": charged_io(run, config),
        }
    natural = rows[NATURAL_PREDICATE]["n_result_tuples"]
    expected = sections["sorted"]["forward-sweep"]["n_result_tuples"]
    if natural != expected:
        raise AssertionError(
            f"the {NATURAL_PREDICATE!r} predicate row diverged from the "
            f"mode comparison ({natural} != {expected})"
        )
    return rows


def format_report(report: Dict) -> List[str]:
    lines = [
        "forward-scan sweep vs partition join -- {n_tuples_per_side} x "
        "{n_tuples_per_side} tuples, {memory_pages} pages, backend={backend}".format(
            backend=report["environment"]["backend"], **report["workload"]
        )
    ]
    for label in ("sorted", "unsorted"):
        lines.append(
            f"{label:<9} {'mode':<14} {'seconds':>9} {'tuples/sec':>12} "
            f"{'io cost':>10} {'speedup':>8}"
        )
        for mode, row in report[label].items():
            lines.append(
                f"{'':<9} {mode:<14} {row['seconds']:>9.3f} "
                f"{row['tuples_per_sec']:>12,.0f} {row['io']['io_cost']:>10,.0f} "
                f"{row.get('speedup_vs_partition', 1.0):>8}"
            )
    for label in ("sorted", "unsorted"):
        choice = report["planner"][label]
        lines.append(
            f"planner/{label}: {choice['operator']} "
            f"(sweep {choice['sweep_cost']:,.0f} vs partition "
            f"{choice['partition_cost']:,.0f})"
        )
    lines.append(f"{'predicate':<14} {'seconds':>9} {'results':>12} {'tuples':>8}")
    for name, row in sorted(report["predicates"].items()):
        cap = " (capped)" if row["capped"] else ""
        lines.append(
            f"{name:<14} {row['seconds']:>9.3f} {row['n_result_tuples']:>12,} "
            f"{row['tuples_per_side']:>8,}{cap}"
        )
    return lines


def check_against(report: Dict, committed_path: Path) -> List[str]:
    """The CI perf-smoke gate: acceptance bar + crossover vs the committed run."""
    committed = load_report(committed_path)
    failures = []

    committed_speedup = committed["sorted"]["forward-sweep"]["speedup_vs_partition"]
    if committed_speedup < SORTED_SPEEDUP_FLOOR:
        failures.append(
            f"committed sorted-input speedup {committed_speedup}x is below the "
            f"{SORTED_SPEEDUP_FLOOR}x acceptance bar"
        )
    for label, expected in (("sorted", "forward-sweep"), ("unsorted", "partition")):
        for name, rep in (("committed", committed), ("fresh", report)):
            operator = rep["planner"][label]["operator"]
            if operator != expected:
                failures.append(
                    f"{name} planner picked {operator!r} on the {label} side of "
                    f"the crossover (expected {expected!r})"
                )
    fresh_speedup = report["sorted"]["forward-sweep"]["speedup_vs_partition"]
    if fresh_speedup <= 1.0:
        failures.append(
            f"fresh sorted-input sweep no longer beats the partition join "
            f"({fresh_speedup}x)"
        )
    if report["sorted"]["forward-sweep"]["n_result_tuples"] <= 0 < report[
        "workload"
    ]["n_tuples_per_side"]:
        failures.append("smoke workload produced no result tuples")
    missing = set(committed["predicates"]) - set(report["predicates"])
    if missing:
        failures.append(f"predicates dropped from the sweep: {sorted(missing)}")
    return failures


def test_allen_sweep_throughput(benchmark):
    """Pytest entry: the same comparison at the suite's bench scale."""
    scale = int(os.environ.get("REPRO_BENCH_SCALE", 16))
    n_tuples = max(8_000, 50_000 // scale)
    report = benchmark.pedantic(
        run_benchmark, args=(n_tuples,), rounds=1, iterations=1
    )
    print()
    for line in format_report(report):
        print(line)
    benchmark.extra_info.update(
        {mode: row["tuples_per_sec"] for mode, row in report["sorted"].items()}
    )
    # The acceptance bar (>= 1.5x on sorted input) is checked at full 50k
    # scale on the committed report; at reduced scale the sweep must still
    # win outright, and the planner must flip on the crossover.
    assert report["sorted"]["forward-sweep"]["speedup_vs_partition"] > 1.0
    assert report["planner"]["sorted"]["operator"] == "forward-sweep"
    assert report["planner"]["unsorted"]["operator"] == "partition"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=50_000, help="tuples per side")
    parser.add_argument("--memory-pages", type=int, default=48)
    parser.add_argument(
        "--disjoint-cap",
        type=int,
        default=8_000,
        help="tuples per side for the quadratic-output predicates",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="regression-gate mode: compare against a committed report "
        "instead of writing one",
    )
    args = parser.parse_args(argv)
    if args.tuples < 1:
        parser.error(f"--tuples must be >= 1, got {args.tuples}")
    if args.disjoint_cap < 1:
        parser.error(f"--disjoint-cap must be >= 1, got {args.disjoint_cap}")

    report = run_benchmark(
        args.tuples,
        memory_pages=args.memory_pages,
        disjoint_cap=args.disjoint_cap,
    )
    for line in format_report(report):
        print(line)

    if args.check is not None:
        failures = check_against(report, args.check)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(f"ok: acceptance bar and crossover hold against {args.check}")
        return 0

    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
