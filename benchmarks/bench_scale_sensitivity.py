"""Methodology bench: how reduced scale distorts the Figure 6 comparison.

EXPERIMENTS.md documents one honest artifact of running the paper's
experiments below full scale: scaling divides the per-bucket partitioning
buffers along with everything else, inflating the partition join's random
writes relative to nested loops' purely sequential scans, so the
nested-loops crossover point drifts toward smaller memory.  This bench
*measures* the artifact instead of hand-waving it: it runs the 4 MiB /
5:1 Figure 6 point at several scales and reports the partition-to-nested
cost ratio, which should fall (improve for the partition join) as the
scale factor shrinks toward paper scale.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_algorithm
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig6_spec

SCALES = (64, 32, 16, 8)


def test_scale_sensitivity(benchmark):
    model = CostModel.with_ratio(5)

    def sweep():
        rows = []
        for scale in SCALES:
            config = ExperimentConfig(scale=scale)
            r, s = config.database(fig6_spec())
            pages = config.memory_pages(4)
            partition = run_algorithm("partition", r, s, pages, model, config)
            nested = run_algorithm("nested_loop", r, s, pages, model, config)
            rows.append(
                (scale, partition.cost, nested.cost, partition.cost / nested.cost)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("Scale sensitivity at the 4 MiB / 5:1 Figure 6 point")
    print(
        format_table(
            ("scale (1/x)", "partition", "nested_loop", "partition/nested"),
            [(s, p, n, f"{ratio:.2f}") for s, p, n, ratio in rows],
        )
    )
    ratios = [ratio for _, _, _, ratio in rows]
    print(
        f"partition/nested ratio {ratios[0]:.2f} at 1/{SCALES[0]} scale -> "
        f"{ratios[-1]:.2f} at 1/{SCALES[-1]} scale"
    )
    benchmark.extra_info["ratio_smallest_scale"] = ratios[0]
    benchmark.extra_info["ratio_largest_scale"] = ratios[-1]
    # The artifact shrinks toward paper scale: the ratio must improve.
    assert ratios[-1] < ratios[0]