"""Lane supervision overhead: the supervised sweep vs the bare pool.

Runs the same undisturbed zero-copy partition join (by default
50 000 x 50 000 tuples, the ``harness`` probe-heavy workload under a
48-page budget) twice per round -- once with the lane supervisor watching
the pool (``lane_supervision=True``, the default) and once on the bare
pool (``lane_supervision=False``) -- and reports the best-of-N wall-clock
of each arm.  A real pool is forced even on single-core runners: overhead
of the supervised dispatch loop only exists where a pool exists.

Before any number is reported it asserts the supervision contract on an
undisturbed run: identical join outcomes, the *entire* per-phase charged
I/O breakdown bit-equal between the arms (supervision must never charge a
single extra operation), and an empty degradation log.

Writes machine-readable ``BENCH_supervision.json`` next to the repo root::

    PYTHONPATH=src python benchmarks/bench_supervision.py

CI gates with ``--check``::

    PYTHONPATH=src python benchmarks/bench_supervision.py \\
        --tuples 8000 --check BENCH_supervision.json

failing if supervision charged any extra operation, if the committed
full-scale report no longer proves the <=2% overhead claim, or if the
fresh smoke overhead exceeds 2% plus a small absolute noise floor.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
from pathlib import Path
from typing import Dict, List, Optional

from harness import (
    REPO_ROOT,
    environment,
    load_report,
    phase_stats_fingerprint,
    probe_heavy_relation,
    result_fingerprint,
    timed_join,
)
from repro.core.partition_join import PartitionJoinConfig
from repro.exec import HAVE_NUMPY
from repro.storage.page import PageSpec

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_supervision.json"

#: CI gate: supervised wall-clock may exceed the bare pool's by at most
#: this fraction (best-of-N per arm).  The committed full-scale report
#: must prove it outright; the smoke re-measurement gets a small absolute
#: noise floor on top, because sub-100ms runs are dominated by pool-spawn
#: jitter that has nothing to do with supervision.
OVERHEAD_TOLERANCE = 0.02
NOISE_FLOOR_SECONDS = 0.05


def run_benchmark(
    n_tuples: int,
    *,
    memory_pages: int = 48,
    sweep_workers: Optional[int] = 4,
    rounds: int = 3,
) -> Dict:
    r = probe_heavy_relation("works_on", n_tuples, seed=1994)
    s = probe_heavy_relation("earns", n_tuples, seed=1995)
    page_spec = PageSpec(page_bytes=8192, tuple_bytes=16)
    base = PartitionJoinConfig(
        memory_pages=memory_pages,
        page_spec=page_spec,
        execution="zero-copy-sweep",
        sweep_workers=sweep_workers,
        collect_result=False,
        max_plan_candidates=6,
    )
    arms = {
        "supervised": base,  # lane_supervision=True is the default
        "bare-pool": dataclasses.replace(base, lane_supervision=False),
    }

    times: Dict[str, List[float]] = {label: [] for label in arms}
    runs: Dict[str, object] = {}
    if HAVE_NUMPY:
        import repro.exec.sweep_parallel as sweep

        saved = (sweep.OVERSUBSCRIBE, sweep.MIN_LANE_ROWS)
        sweep.OVERSUBSCRIBE, sweep.MIN_LANE_ROWS = True, 0
    try:
        for _ in range(max(1, rounds)):
            for label, config in arms.items():
                run, elapsed = timed_join(r, s, config)
                times[label].append(elapsed)
                runs[label] = run
    finally:
        if HAVE_NUMPY:
            sweep.OVERSUBSCRIBE, sweep.MIN_LANE_ROWS = saved

    # -- the supervision contract, asserted before any number is reported --
    supervised, bare = runs["supervised"], runs["bare-pool"]
    if result_fingerprint(supervised) != result_fingerprint(bare):
        raise AssertionError("lane supervision changed the join outcome")
    if phase_stats_fingerprint(supervised) != phase_stats_fingerprint(bare):
        raise AssertionError(
            "lane supervision changed the charged I/O of an undisturbed run"
        )
    extra_ops = (
        supervised.layout.tracker.stats.total_ops
        - bare.layout.tracker.stats.total_ops
    )
    if extra_ops != 0:
        raise AssertionError(
            f"supervision charged {extra_ops} extra operations on an "
            f"undisturbed run (must be exactly 0)"
        )
    for label, run in runs.items():
        lane_events = [
            e.kind
            for e in run.layout.resilience_report.degradations
            if e.kind.startswith("lane-")
        ]
        if lane_events:
            raise AssertionError(
                f"the undisturbed {label} run recorded lane events: {lane_events}"
            )

    rows = {}
    for label in arms:
        best = min(times[label])
        rows[label] = {
            "seconds_best": round(best, 4),
            "seconds_all": [round(t, 4) for t in times[label]],
            "tuples_per_sec": round((len(r) + len(s)) / best, 1),
        }
    overhead = rows["supervised"]["seconds_best"] / rows["bare-pool"]["seconds_best"]
    return {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "memory_pages": memory_pages,
            "page_bytes": page_spec.page_bytes,
            "tuple_bytes": page_spec.tuple_bytes,
            "sweep_workers": sweep_workers,
            "rounds": rounds,
            "n_result_tuples": supervised.outcome.n_result_tuples,
        },
        "environment": environment(),
        "arms": rows,
        "overhead_ratio": round(overhead, 4),
        "extra_charged_ops": extra_ops,
    }


def format_report(report: Dict) -> List[str]:
    lines = [
        "lane supervision overhead -- {n_tuples_per_side} x "
        "{n_tuples_per_side} tuples, {memory_pages} pages, "
        "workers={sweep_workers}, best of {rounds}, backend={backend}".format(
            backend=report["environment"]["backend"], **report["workload"]
        ),
        f"{'arm':<14} {'seconds':>9} {'tuples/sec':>12}",
    ]
    for label, row in report["arms"].items():
        lines.append(
            f"{label:<14} {row['seconds_best']:>9.3f} {row['tuples_per_sec']:>12,.0f}"
        )
    lines.append(
        f"overhead: {(report['overhead_ratio'] - 1.0) * 100.0:+.2f}% wall-clock, "
        f"{report['extra_charged_ops']} extra charged ops"
    )
    return lines


def check_against(report: Dict, committed_path: Path) -> List[str]:
    """The CI perf-smoke gate.

    Three checks: the fresh run charged zero extra ops (deterministic, no
    tolerance); the *committed* full-scale report proves the <=2% overhead
    claim; and the fresh smoke overhead stays within the 2% bound plus the
    absolute noise floor (sub-100ms smoke runs cannot resolve 2%).
    """
    committed = load_report(committed_path)
    failures = []
    if report["extra_charged_ops"] != 0:
        failures.append(
            f"supervision charged {report['extra_charged_ops']} extra ops "
            "(must be exactly 0)"
        )
    committed_bound = 1.0 + OVERHEAD_TOLERANCE
    if committed["overhead_ratio"] > committed_bound:
        failures.append(
            f"the committed full-scale report shows "
            f"{committed['overhead_ratio']}x supervision overhead, above the "
            f"{committed_bound}x bound -- re-measure and re-commit"
        )
    arms = report["arms"]
    delta = arms["supervised"]["seconds_best"] - arms["bare-pool"]["seconds_best"]
    allowed = max(
        NOISE_FLOOR_SECONDS,
        OVERHEAD_TOLERANCE * arms["bare-pool"]["seconds_best"],
    )
    if delta > allowed:
        failures.append(
            f"fresh supervision overhead {delta:.4f}s exceeds the allowed "
            f"{allowed:.4f}s (max of {NOISE_FLOOR_SECONDS}s noise floor and "
            f"{OVERHEAD_TOLERANCE:.0%} of the bare-pool wall-clock)"
        )
    if report["workload"]["n_result_tuples"] <= 0 < report["workload"][
        "n_tuples_per_side"
    ]:
        failures.append("smoke workload produced no result tuples")
    return failures


def test_supervision_overhead(benchmark):
    """Pytest entry: the same A/B at the suite's bench scale."""
    scale = int(os.environ.get("REPRO_BENCH_SCALE", 16))
    n_tuples = max(8_000, 50_000 // scale)
    report = benchmark.pedantic(
        run_benchmark, args=(n_tuples,), kwargs={"rounds": 2}, rounds=1, iterations=1
    )
    print()
    for line in format_report(report):
        print(line)
    benchmark.extra_info["overhead_ratio"] = report["overhead_ratio"]
    assert report["extra_charged_ops"] == 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=50_000, help="tuples per side")
    parser.add_argument("--memory-pages", type=int, default=48)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3, help="best-of-N per arm")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="regression-gate mode: assert the supervision contract on a "
        "fresh measurement instead of writing a report",
    )
    args = parser.parse_args(argv)
    if args.tuples < 1:
        parser.error(f"--tuples must be >= 1, got {args.tuples}")
    if args.rounds < 1:
        parser.error(f"--rounds must be >= 1, got {args.rounds}")

    report = run_benchmark(
        args.tuples,
        memory_pages=args.memory_pages,
        sweep_workers=args.workers,
        rounds=args.rounds,
    )
    for line in format_report(report):
        print(line)

    if args.check is not None:
        failures = check_against(report, args.check)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(
            f"ok: 0 extra charged ops, overhead within bounds ({args.check})"
        )
        return 0

    from harness import write_report

    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
