"""Service throughput: concurrent sessions vs a serial no-cache baseline.

The serving claim: a query service with admission control and epoch-keyed
caching turns a stream of repeated joins -- the dashboard regime, where
many clients ask the same question of slowly-changing data -- from
one-full-evaluation-per-query into one evaluation per *distinct*
(epochs, config) coordinate, everything else served from the result cache
with **zero charged I/O**.

Measures the 50k x 50k probe-heavy generator workload at 1, 4, and 16
sessions (each session issuing the same join repeatedly), against a serial
baseline with both caches disabled (the pre-service behavior: every query
evaluated from scratch).  Reports throughput, p50/p95 admission queue
wait, and cache traffic per point; writes ``BENCH_service.json`` next to
the repo root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py

CI gates with ``--check``::

    PYTHONPATH=src python benchmarks/bench_service.py \\
        --tuples 8000 --check BENCH_service.json

which re-runs at smoke scale and fails if (a) any result-cache hit charged
a single I/O operation, (b) the re-measured 4-session speedup falls under
the smoke floor, or (c) the committed report stops showing the >= 2x
4-session acceptance speedup.
"""

from __future__ import annotations

import argparse
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from harness import (
    REPO_ROOT,
    environment,
    load_report,
    probe_heavy_relation,
    write_report,
)
from repro.engine.catalog import VersionedCatalog
from repro.service import QueryService
from repro.service.workload import percentile
from repro.storage.page import PageSpec

SESSION_COUNTS = (1, 4, 16)
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"

#: Acceptance floor on the committed full-scale report (4 sessions).
FULL_SCALE_SPEEDUP_FLOOR = 2.0
#: Relaxed floor for the re-measured smoke run (tiny data, cold caches).
SMOKE_SPEEDUP_FLOOR = 1.5


def _build_catalog(n_tuples: int) -> VersionedCatalog:
    catalog = VersionedCatalog()
    for name, seed in (("works_on", 1994), ("earns", 1995)):
        relation = probe_heavy_relation(name, n_tuples, seed=seed)
        catalog.register(relation.schema, relation.tuples)
    return catalog


def _drive(
    n_tuples: int,
    n_sessions: int,
    queries_per_session: int,
    *,
    caching: bool,
    memory_pages: int,
    execution: str,
) -> Dict:
    """One measured point: *n_sessions* sessions, each repeating the join."""
    catalog = _build_catalog(n_tuples)
    records: List = []
    errors: List[str] = []
    lock = threading.Lock()
    cache_entries = 256 if caching else 0
    with QueryService(
        catalog,
        pool_pages=memory_pages,
        memory_pages=memory_pages,
        workers=min(8, n_sessions),
        execution=execution,
        page_spec=PageSpec(page_bytes=8192, tuple_bytes=16),
        plan_cache_entries=cache_entries,
        result_cache_entries=cache_entries,
        admission_timeout=600.0,
        max_sessions=max(64, n_sessions),
    ) as service:
        barrier = threading.Barrier(n_sessions)

        def client(session_number: int) -> None:
            try:
                with service.open_session(label=f"bench-{session_number}") as session:
                    barrier.wait()
                    for _ in range(queries_per_session):
                        result = session.join(
                            "works_on",
                            "earns",
                            method="partition",
                            result_timeout=600.0,
                        )
                        with lock:
                            records.append(result)
            except Exception as error:  # pragma: no cover -- reported below
                with lock:
                    errors.append(str(error))

        threads = [
            threading.Thread(target=client, args=(number,))
            for number in range(n_sessions)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin

    if errors:
        raise AssertionError(f"workload errors: {errors[:3]}")
    cardinalities = {record.outcome.n_result_tuples for record in records}
    if len(cardinalities) != 1:
        raise AssertionError(
            f"sessions disagreed on the result: cardinalities {cardinalities}"
        )
    waits = [record.queue_wait_seconds for record in records]
    hits = [record for record in records if record.result_cache_hit]
    return {
        "sessions": n_sessions,
        "queries": len(records),
        "seconds": round(elapsed, 4),
        "queries_per_second": round(len(records) / elapsed, 2),
        "queue_wait_p50_seconds": round(percentile(waits, 0.50), 6),
        "queue_wait_p95_seconds": round(percentile(waits, 0.95), 6),
        "result_cache_hits": len(hits),
        "hit_charged_ops": sum(record.charged_ops for record in hits),
        "miss_charged_ops": sum(
            record.charged_ops for record in records if not record.result_cache_hit
        ),
        "n_result_tuples": cardinalities.pop(),
    }


def run_benchmark(
    n_tuples: int,
    *,
    queries_per_session: int = 6,
    memory_pages: int = 48,
    execution: str = "batch",
    session_counts: Sequence[int] = SESSION_COUNTS,
) -> Dict:
    serial = _drive(
        n_tuples,
        1,
        queries_per_session,
        caching=False,
        memory_pages=memory_pages,
        execution=execution,
    )
    points: Dict[str, Dict] = {}
    for n_sessions in session_counts:
        point = _drive(
            n_tuples,
            n_sessions,
            queries_per_session,
            caching=True,
            memory_pages=memory_pages,
            execution=execution,
        )
        if point["n_result_tuples"] != serial["n_result_tuples"]:
            raise AssertionError(
                "cached serving changed the answer: "
                f"{point['n_result_tuples']} != {serial['n_result_tuples']}"
            )
        point["speedup_vs_serial"] = round(
            point["queries_per_second"] / serial["queries_per_second"], 2
        )
        points[str(n_sessions)] = point
    return {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "queries_per_session": queries_per_session,
            "memory_pages": memory_pages,
            "execution": execution,
            "join": "works_on JOIN_V earns (probe-heavy generator)",
        },
        "environment": environment(),
        "serial_baseline": serial,
        "sessions": points,
    }


def format_report(report: Dict) -> List[str]:
    workload = report["workload"]
    lines = [
        "service throughput -- {n_tuples_per_side} x {n_tuples_per_side} tuples, "
        "{queries_per_session} queries/session, execution={execution}".format(
            **workload
        ),
        f"{'point':<14} {'queries':>8} {'seconds':>9} {'qps':>9} "
        f"{'speedup':>8} {'hits':>6} {'wait p95':>10}",
    ]
    serial = report["serial_baseline"]
    lines.append(
        f"{'serial':<14} {serial['queries']:>8} {serial['seconds']:>9.3f} "
        f"{serial['queries_per_second']:>9.2f} {'1.0':>8} {'-':>6} "
        f"{serial['queue_wait_p95_seconds']:>10.4f}"
    )
    for count, point in report["sessions"].items():
        lines.append(
            f"{count + ' sessions':<14} {point['queries']:>8} "
            f"{point['seconds']:>9.3f} {point['queries_per_second']:>9.2f} "
            f"{point['speedup_vs_serial']:>8.2f} {point['result_cache_hits']:>6} "
            f"{point['queue_wait_p95_seconds']:>10.4f}"
        )
    return lines


def check_report(fresh: Dict, committed_path: Path) -> List[str]:
    """The CI gate: zero-I/O cache hits and the acceptance speedups."""
    failures: List[str] = []
    for count, point in fresh["sessions"].items():
        if point["hit_charged_ops"] != 0:
            failures.append(
                f"{count} sessions: result-cache hits charged "
                f"{point['hit_charged_ops']} I/O ops (must be exactly 0)"
            )
        if point["result_cache_hits"] == 0 and point["queries"] > 1:
            failures.append(f"{count} sessions: repeated queries never hit the cache")
    smoke_speedup = fresh["sessions"]["4"]["speedup_vs_serial"]
    if smoke_speedup < SMOKE_SPEEDUP_FLOOR:
        failures.append(
            f"re-measured 4-session speedup {smoke_speedup} fell under the "
            f"smoke floor {SMOKE_SPEEDUP_FLOOR}"
        )
    committed = load_report(committed_path)
    committed_speedup = committed["sessions"]["4"]["speedup_vs_serial"]
    if committed_speedup < FULL_SCALE_SPEEDUP_FLOOR:
        failures.append(
            f"committed {committed_path} shows 4-session speedup "
            f"{committed_speedup} < required {FULL_SCALE_SPEEDUP_FLOOR}"
        )
    for count, point in committed["sessions"].items():
        if point["hit_charged_ops"] != 0:
            failures.append(
                f"committed {committed_path}: {count}-session hits charged "
                f"{point['hit_charged_ops']} I/O ops"
            )
    return failures


def test_service_throughput(benchmark):
    """Pytest entry: the same comparison at the suite's bench scale."""
    from conftest import bench_scale

    n_tuples = max(2_000, 50_000 // bench_scale())
    report = benchmark.pedantic(
        run_benchmark,
        args=(n_tuples,),
        kwargs={"queries_per_session": 4, "session_counts": (1, 4)},
        rounds=1,
        iterations=1,
    )
    print()
    for line in format_report(report):
        print(line)
    benchmark.extra_info.update(
        {
            f"qps_{count}_sessions": point["queries_per_second"]
            for count, point in report["sessions"].items()
        }
    )
    for point in report["sessions"].values():
        assert point["hit_charged_ops"] == 0
    assert report["sessions"]["4"]["speedup_vs_serial"] > 1.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=50_000, help="tuples per side")
    parser.add_argument("--queries-per-session", type=int, default=6)
    parser.add_argument("--memory-pages", type=int, default=48)
    parser.add_argument(
        "--execution",
        default="batch",
        choices=("tuple", "batch", "batch-parallel", "batch-parallel-sweep"),
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="COMMITTED_JSON",
        help="gate against a committed report instead of overwriting it",
    )
    args = parser.parse_args(argv)
    if args.tuples < 1:
        parser.error(f"--tuples must be >= 1, got {args.tuples}")

    report = run_benchmark(
        args.tuples,
        queries_per_session=args.queries_per_session,
        memory_pages=args.memory_pages,
        execution=args.execution,
    )
    for line in format_report(report):
        print(line)
    if args.check is not None:
        failures = check_report(report, args.check)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(f"ok: zero-I/O cache hits and speedups hold against {args.check}")
        return 0
    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
