"""Extension bench: the Section 5 cache/partition buffer trade-off.

"The paging cost associated with [the tuple cache] can be reduced if
sufficient buffer space is allocated to retain, with high probability, the
entire tuple cache in main memory.  Trading off outer relation partition
space for tuple cache space is a possible solution."  (Section 5, future
work.)

This bench realizes the idea -- and reports an honest *negative result*
under the paper's own cost model: reserving buffer pages for the cache
does eliminate cache spill I/O, but it shrinks the outer-partition area,
forcing more partitions whose extra seeks and retained-tuple churn cost
more than the (cheap, mostly sequential) cache paging ever did.  The
paper's Section 4.3 intuition already hinted at this: "tuple caching in
the partition join incurs a low cost".  The trade-off is real but the
break-even point is rarely reached.
"""

import pytest

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.report import format_table
from repro.storage.iostats import CostModel
from repro.workloads.specs import fig8_spec


@pytest.mark.parametrize("reserve_fraction", [0.0, 0.25, 0.5])
def test_ablation_cache_reservation(benchmark, config, reserve_fraction):
    r, s = config.database(fig8_spec(128_000))
    model = CostModel.with_ratio(5)
    memory = config.memory_pages(2)
    reserve = int((memory - 3) * reserve_fraction)

    join_config = PartitionJoinConfig(
        memory_pages=memory,
        cost_model=model,
        page_spec=config.page_spec(r.schema.tuple_bytes),
        max_plan_candidates=config.max_plan_candidates,
        collect_result=False,
        cache_buffer_pages=reserve,
    )

    run = benchmark.pedantic(
        partition_join, args=(r, s, join_config), rounds=1, iterations=1
    )
    cost = run.layout.tracker.stats.cost(model)

    print()
    print(
        format_table(
            (
                "reserved cache pages",
                "partitions",
                "cache peak",
                "tuples spilled",
                "total cost",
            ),
            [
                (
                    reserve,
                    run.plan.num_partitions,
                    run.outcome.cache_tuples_peak,
                    run.outcome.cache_tuples_spilled,
                    cost,
                )
            ],
        )
    )
    benchmark.extra_info["reserve_pages"] = reserve
    benchmark.extra_info["total_cost"] = cost
    benchmark.extra_info["cache_tuples_spilled"] = run.outcome.cache_tuples_spilled
    if reserve > 0:
        # The reservation does what it promises mechanically: less spill.
        assert run.outcome.cache_tuples_spilled <= run.outcome.cache_tuples_peak * (
            run.plan.num_partitions
        )
