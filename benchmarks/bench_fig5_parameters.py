"""Figure 5: the global parameter table.

The paper's Figure 5 is a table of global parameter values; its scan is
unreadable, so DESIGN.md documents the reconstruction this repository
uses.  This bench regenerates the table (the reproduction's equivalent of
the figure) and sanity-checks the self-consistency facts the
reconstruction was derived from.
"""

from repro.experiments.report import parameter_table
from repro.workloads.specs import PAPER_PARAMETERS


def test_fig5_parameter_table(benchmark):
    table = benchmark.pedantic(parameter_table, rounds=1, iterations=1)
    print()
    print("Figure 5 -- reconstructed global parameter values")
    print(table)

    # The quoted facts the reconstruction must satisfy:
    # "Each database contained 32 megabytes (262144 tuples)"
    assert (
        PAPER_PARAMETERS["database_tuples"] * PAPER_PARAMETERS["tuple_bytes"]
        == 32 * 1024 * 1024
    )
    # "ten tuples ... for each object ... approximately 26,000 objects"
    assert PAPER_PARAMETERS["database_tuples"] // PAPER_PARAMETERS["n_objects"] == 10
    # Page geometry consistency.
    assert (
        PAPER_PARAMETERS["page_bytes"] // PAPER_PARAMETERS["tuple_bytes"]
        == PAPER_PARAMETERS["tuples_per_page"]
    )
    assert (
        PAPER_PARAMETERS["relation_tuples"] // PAPER_PARAMETERS["tuples_per_page"]
        == PAPER_PARAMETERS["relation_pages"]
    )
    benchmark.extra_info["database_tuples"] = PAPER_PARAMETERS["database_tuples"]
