"""Shard scaling: near-linear simulated-clock throughput, exact accounting.

The sharding claim has two halves and this bench gates both:

1. **Scaling** -- with key-hash sharding every shard owns ~1/N of each
   relation, its fragment join costs ~1/N of the whole-relation bill, and
   the shards' simulated disks run concurrently.  Per-query service time
   on the *simulated clock* is therefore ``max`` over shards of the
   fragment's charged cost, and simulated throughput should grow
   near-linearly through 8 shards.  The gate rides the simulated clock,
   not wall time: this container has one CPU (wall-clock parallelism is
   physically unavailable, and CI refuses to gate wall time anyway -- see
   ``.github/workflows/ci.yml``), while charged cost is deterministic on
   any machine.  Wall-clock qps is still reported, ungated, for context.

2. **Exactness** -- scaling is worthless if the answer drifts.  At every
   shard count the merged result multiset, the JoinOutcome counters, and
   the merged per-phase charged-I/O ledger must equal an in-process
   serial replay of the same fragment decomposition
   (:class:`repro.shard.worker.ShardWorker` objects, no processes, one at
   a time); at ``shards=1`` the bill must equal the plain single-process
   :class:`~repro.service.service.QueryService` exactly.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard.py

CI gates with ``--check``::

    PYTHONPATH=src python benchmarks/bench_shard.py \\
        --tuples 6000 --check BENCH_shard.json

which re-runs at smoke scale and fails if (a) any shard count's merged
result or charged-I/O ledger deviates from the serial replay, (b) the
re-measured 4-shard simulated speedup falls under the floor, or (c) the
committed report stops showing the >= 2.5x acceptance speedup.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from harness import (
    REPO_ROOT,
    environment,
    load_report,
    probe_heavy_relation,
    write_report,
)
from repro.engine.catalog import VersionedCatalog
from repro.service import QueryService
from repro.shard import ShardedQueryService
from repro.shard.partitioning import ShardMap
from repro.shard.worker import ShardWorker, schema_to_dict
from repro.storage.iostats import IOStatistics

SHARD_COUNTS = (1, 2, 4, 8)
QUERIES = 3
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_shard.json"

#: Acceptance floor on the 4-shard simulated-clock speedup (committed
#: full-scale report AND the smoke re-run; the simulated clock does not
#: degrade at smoke scale the way wall time does).
SPEEDUP_FLOOR_4_SHARDS = 2.5

MEMORY_PAGES = 48
POOL_PAGES = 256  # generous: grants never clamp, plans stay deterministic


def _build_catalog(n_tuples: int) -> VersionedCatalog:
    catalog = VersionedCatalog()
    for name, seed in (("works_on", 1994), ("earns", 1995)):
        relation = probe_heavy_relation(name, n_tuples, seed=seed)
        catalog.register(relation.schema, relation.tuples)
    return catalog


def _canonical(relation) -> List:
    return sorted((t.key, t.payload, t.vs, t.ve) for t in relation.tuples)


def _single_process(n_tuples: int) -> Dict:
    """The baseline bill: the whole join, one process, no caches."""
    catalog = _build_catalog(n_tuples)
    with QueryService(
        catalog,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        workers=1,
        execution="batch",
        plan_cache_entries=0,
        result_cache_entries=0,
    ) as service:
        with service.open_session() as session:
            begin = time.perf_counter()
            results = [
                session.join("works_on", "earns", method="partition")
                for _ in range(QUERIES)
            ]
            wall = time.perf_counter() - begin
    first = results[0]
    return {
        "queries": QUERIES,
        "cost_per_query": first.cost,
        "charged_ops_per_query": first.charged_ops,
        "n_result_tuples": first.n_result_tuples
        if hasattr(first, "n_result_tuples")
        else first.outcome.n_result_tuples,
        "result": _canonical(first.relation),
        "outcome": (
            first.outcome.n_result_tuples,
            first.outcome.overflow_blocks,
            first.outcome.cache_tuples_peak,
            first.outcome.cache_tuples_spilled,
        ),
        "wall_seconds": round(wall, 4),
        "wall_qps": round(QUERIES / wall, 2),
    }


def _serial_replay(n_tuples: int, shards: int) -> Dict:
    """The same fragment decomposition, in-process, one fragment at a time.

    ShardWorker is the exact engine the worker processes run; driving it
    directly (no sockets, no forks) re-derives what the merged ledger and
    counters *must* be if the distributed run is honest.
    """
    catalog = _build_catalog(n_tuples)
    shard_map = ShardMap(shards)
    versions = {
        name: catalog.current(name) for name in ("works_on", "earns")
    }
    request = {
        "query_id": 0,
        "outer": "works_on",
        "outer_epoch": versions["works_on"].epoch,
        "inner": "earns",
        "inner_epoch": versions["earns"].epoch,
        "method": "partition",
        "execution": "batch",
        "memory_pages": MEMORY_PAGES,
        "predicate": None,
    }
    tuples: List = []
    charged = 0
    cost = 0.0
    totals = IOStatistics()
    outcome = [0, 0, 0, 0]
    for rank in range(shards):
        worker = ShardWorker(
            {
                "rank": rank,
                "pool_pages": POOL_PAGES,
                "shard_map": shard_map.as_dict(),
            }
        )
        for name, version in versions.items():
            fragment = shard_map.fragment(version.relation, rank)
            worker.load(
                {
                    "name": name,
                    "epoch": version.epoch,
                    "schema": schema_to_dict(version.relation.schema),
                },
                fragment.to_columns(),
            )
        meta, columns = worker.execute(request)
        charged += meta["charged_ops"]
        cost += meta["cost"]
        totals.merge(IOStatistics(**meta["totals"]))
        outcome[0] += meta["outcome"]["n_result_tuples"]
        outcome[1] += meta["outcome"]["overflow_blocks"]
        outcome[2] = max(outcome[2], meta["outcome"]["cache_tuples_peak"])
        outcome[3] += meta["outcome"]["cache_tuples_spilled"]
        if columns is not None:
            keys, payloads, starts, ends = columns
            tuples.extend(zip(keys, payloads, starts, ends))
    return {
        "charged_ops": charged,
        "cost": cost,
        "totals": totals.as_dict(),
        "outcome": tuple(outcome),
        "result": sorted(tuples),
    }


def _sharded(n_tuples: int, shards: int) -> Dict:
    """One measured point: the live multi-process service at *shards*."""
    catalog = _build_catalog(n_tuples)
    with ShardedQueryService(
        catalog,
        shards=shards,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        workers=1,
        execution="batch",
    ) as service:
        with service.open_session() as session:
            begin = time.perf_counter()
            results = [
                session.join("works_on", "earns", method="partition")
                for _ in range(QUERIES)
            ]
            wall = time.perf_counter() - begin
        transport = service.report()["transport"]
    first = results[0]
    return {
        "shards": shards,
        "service_cost_per_query": first.service_cost,
        "total_cost_per_query": first.cost,
        "charged_ops_per_query": first.charged_ops,
        "totals": first.totals.as_dict(),
        "outcome": (
            first.outcome.n_result_tuples,
            first.outcome.overflow_blocks,
            first.outcome.cache_tuples_peak,
            first.outcome.cache_tuples_spilled,
        ),
        "result": _canonical(first.relation),
        "redispatches": first.redispatches,
        "wall_seconds": round(wall, 4),
        "wall_qps": round(QUERIES / wall, 2),
        "transport_frames": transport["frames_sent"] + transport["frames_received"],
        "crc_failures": transport["crc_failures"],
    }


def run(n_tuples: int, shard_counts: Sequence[int] = SHARD_COUNTS) -> Dict:
    baseline = _single_process(n_tuples)
    report: Dict = {
        "workload": {
            "n_tuples_per_side": n_tuples,
            "queries": QUERIES,
            "memory_pages": MEMORY_PAGES,
            "pool_pages_per_shard": POOL_PAGES,
            "execution": "batch",
            "strategy": "key-hash",
            "join": "works_on JOIN_V earns (probe-heavy generator)",
            "clock": (
                "simulated: service time per query = max over shards of the "
                "fragment's charged cost (each shard owns an independent "
                "simulated disk); wall-clock qps reported, not gated"
            ),
        },
        "environment": environment(),
        "baseline": {
            key: value for key, value in baseline.items() if key != "result"
        },
        "shards": {},
        "deviations": [],
    }
    for shards in shard_counts:
        point = _sharded(n_tuples, shards)
        replay = _serial_replay(n_tuples, shards)
        deviations: List[str] = []
        if point["result"] != baseline["result"]:
            deviations.append("result multiset != single-process")
        if point["outcome"][0] != baseline["outcome"][0]:
            deviations.append("n_result_tuples != single-process")
        if point["result"] != replay["result"]:
            deviations.append("result != serial replay of same fragments")
        if point["outcome"] != replay["outcome"]:
            deviations.append("JoinOutcome counters != serial replay")
        if point["charged_ops_per_query"] != replay["charged_ops"]:
            deviations.append(
                f"charged I/O {point['charged_ops_per_query']} != "
                f"serial replay {replay['charged_ops']}"
            )
        if point["totals"] != replay["totals"]:
            deviations.append("merged I/O ledger != serial replay")
        if shards == 1 and point["charged_ops_per_query"] != baseline[
            "charged_ops_per_query"
        ]:
            deviations.append("shards=1 charged I/O != single-process")
        speedup = baseline["cost_per_query"] / point["service_cost_per_query"]
        entry = {
            key: value for key, value in point.items() if key != "result"
        }
        entry["sim_speedup_vs_single_process"] = round(speedup, 2)
        entry["bit_identical"] = not deviations
        report["shards"][str(shards)] = entry
        report["deviations"].extend(
            f"shards={shards}: {line}" for line in deviations
        )
    four = report["shards"].get("4")
    report["acceptance"] = {
        "sim_speedup_at_4_shards": four["sim_speedup_vs_single_process"]
        if four
        else None,
        "floor": SPEEDUP_FLOOR_4_SHARDS,
        "bit_identical_at_every_shard_count": not report["deviations"],
    }
    return report


def _print_summary(report: Dict) -> None:
    baseline = report["baseline"]
    print(
        f"single-process: cost/query {baseline['cost_per_query']:.0f}, "
        f"charged {baseline['charged_ops_per_query']}, "
        f"wall {baseline['wall_qps']} qps"
    )
    header = f"{'shards':>6} {'svc cost':>10} {'speedup':>8} {'charged':>8} {'wall qps':>9} {'identical':>10}"
    print(header)
    for shards, entry in sorted(report["shards"].items(), key=lambda kv: int(kv[0])):
        print(
            f"{shards:>6} {entry['service_cost_per_query']:>10.0f} "
            f"{entry['sim_speedup_vs_single_process']:>7.2f}x "
            f"{entry['charged_ops_per_query']:>8} {entry['wall_qps']:>9} "
            f"{str(entry['bit_identical']):>10}"
        )
    for line in report["deviations"]:
        print(f"DEVIATION: {line}")


def _check(report: Dict, committed_path: Path) -> int:
    """The CI gate: exactness everywhere, speedup at 4 shards, both runs."""
    failures: List[str] = []
    if report["deviations"]:
        failures.extend(report["deviations"])
    measured = report["acceptance"]["sim_speedup_at_4_shards"]
    if measured is None or measured < SPEEDUP_FLOOR_4_SHARDS:
        failures.append(
            f"re-measured 4-shard simulated speedup {measured} < "
            f"{SPEEDUP_FLOOR_4_SHARDS}x"
        )
    committed = load_report(committed_path)
    committed_speedup = committed.get("acceptance", {}).get(
        "sim_speedup_at_4_shards"
    )
    if committed_speedup is None or committed_speedup < SPEEDUP_FLOOR_4_SHARDS:
        failures.append(
            f"committed report's 4-shard speedup {committed_speedup} < "
            f"{SPEEDUP_FLOOR_4_SHARDS}x"
        )
    if committed.get("deviations"):
        failures.append(
            f"committed report records deviations: {committed['deviations']}"
        )
    for line in failures:
        print(f"CHECK FAILED: {line}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=20_000)
    parser.add_argument(
        "--shards",
        default=",".join(str(n) for n in SHARD_COUNTS),
        help="comma-separated shard counts (default 1,2,4,8)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="REPORT",
        help="gate mode: re-measure and validate against the committed report",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    shard_counts = tuple(int(n) for n in args.shards.split(","))
    report = run(args.tuples, shard_counts)
    _print_summary(report)
    if args.check is not None:
        return _check(report, args.check)
    write_report(report, args.output)
    print(f"wrote {args.output}")
    return 0


# -- pytest entry (runs at smoke scale under the plain suite) -----------------

def test_shard_bench_smoke():
    report = run(2_500, shard_counts=(1, 2, 4))
    assert not report["deviations"], report["deviations"]
    assert report["shards"]["4"]["sim_speedup_vs_single_process"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
