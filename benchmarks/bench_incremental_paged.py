"""Extension bench: disk-costed incremental maintenance vs recomputation.

Section 3.1's view-maintenance argument, measured in the paper's own
currency (simulated I/O operations): absorbing a single update into the
partition-aligned materialized join re-reads and rewrites only the
overlapped partitions, a small fraction of what recomputing every
partition costs -- and the fraction scales with the updated tuple's
temporal footprint, not with the database size.
"""

from repro.core.intervals import PartitionMap, choose_intervals
from repro.experiments.report import format_table
from repro.incremental.paged_view import PagedMaterializedJoin
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.time.interval import Interval
from repro.workloads.specs import fig7_spec


def test_incremental_paged(benchmark, config):
    r, s = config.database(fig7_spec(32_000))
    pmap = PartitionMap(choose_intervals(list(r.tuples[:2000]), 16))
    layout = DiskLayout(spec=config.page_spec(r.schema.tuple_bytes))

    view = PagedMaterializedJoin(r, s, pmap, layout)
    lifespan = r.lifespan()
    half = lifespan.duration // 2

    def updates():
        instantaneous = view.insert_r(
            VTTuple((1,), ("inst",), Interval(lifespan.start + half, lifespan.start + half))
        )
        long_lived = view.insert_r(
            VTTuple(
                (2,),
                ("long",),
                Interval(lifespan.start + 10, lifespan.start + 10 + half),
            )
        )
        return instantaneous, long_lived

    instantaneous, long_lived = benchmark.pedantic(updates, rounds=1, iterations=1)
    yardstick = view.full_recompute_cost()

    print()
    print("Disk-costed incremental maintenance (32k long-lived database)")
    print(
        format_table(
            ("update", "partitions recomputed", "I/O ops"),
            [
                ("instantaneous insert", instantaneous.partitions_recomputed,
                 instantaneous.io_ops),
                ("half-lifespan insert", long_lived.partitions_recomputed,
                 long_lived.io_ops),
                ("full recompute (yardstick)", len(pmap), yardstick),
            ],
        )
    )
    benchmark.extra_info["instantaneous_io"] = instantaneous.io_ops
    benchmark.extra_info["long_lived_io"] = long_lived.io_ops
    benchmark.extra_info["full_recompute_io"] = yardstick
    assert instantaneous.io_ops < yardstick / 4
    assert instantaneous.io_ops <= long_lived.io_ops
    assert long_lived.io_ops < yardstick