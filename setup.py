"""Legacy setuptools shim.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (offline editable installs fall back to ``setup.py develop``).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
