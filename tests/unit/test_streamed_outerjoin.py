"""Unit tests for the streamed (I/O-costed) TE-outerjoin."""

import pytest

from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec
from repro.variants.event_join import te_outerjoin
from repro.variants.streamed_outerjoin import streamed_te_outerjoin
from tests.conftest import make_relation, random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)
SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


class TestStreamedTEOuterjoin:
    def test_basic_padding(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 9)])
        s = make_relation(SCHEMA_S, [("x", "b1", 3, 5)])
        run = streamed_te_outerjoin(r, s, 8, page_spec=SPEC)
        assert run.result.multiset_equal(te_outerjoin(r, s))
        assert run.n_matched == 1
        assert run.n_padded == 2  # [0,2] and [6,9]

    @pytest.mark.parametrize("memory", [4, 8, 64])
    def test_matches_in_memory_operator(self, schema_r, schema_s, memory):
        r = random_relation(schema_r, 250, seed=391, long_lived_fraction=0.4)
        s = random_relation(schema_s, 250, seed=392, long_lived_fraction=0.4)
        run = streamed_te_outerjoin(r, s, memory, page_spec=SPEC)
        assert run.result.multiset_equal(te_outerjoin(r, s))

    def test_no_matches_everything_padded(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 4), ("y", "a2", 2, 6)])
        s = make_relation(SCHEMA_S, [("z", "b1", 0, 9)])
        run = streamed_te_outerjoin(r, s, 8, page_spec=SPEC)
        assert run.n_matched == 0
        assert run.n_padded == 2
        assert run.result.multiset_equal(te_outerjoin(r, s))

    def test_empty_left(self):
        r = make_relation(SCHEMA_R, [])
        s = random_relation(SCHEMA_S, 40, seed=393)
        run = streamed_te_outerjoin(r, s, 8, page_spec=SPEC)
        assert len(run.result) == 0

    def test_right_side_never_padded(self, schema_r):
        r = make_relation(SCHEMA_R, [])
        s = make_relation(SCHEMA_S, [("x", "b1", 0, 9)])
        run = streamed_te_outerjoin(r, s, 8, page_spec=SPEC)
        assert len(run.result) == 0  # TE-outerjoin preserves the left only

    def test_equal_start_chronons(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 5, 9), ("x", "a2", 5, 7)])
        s = make_relation(SCHEMA_S, [("x", "b1", 5, 6)])
        run = streamed_te_outerjoin(r, s, 8, page_spec=SPEC)
        assert run.result.multiset_equal(te_outerjoin(r, s))

    def test_costs_tracked(self, schema_r, schema_s):
        r = random_relation(schema_r, 200, seed=394)
        s = random_relation(schema_s, 200, seed=395)
        run = streamed_te_outerjoin(r, s, 6, page_spec=SPEC)
        assert set(run.layout.tracker.phases) == {"sort", "match"}
        assert run.layout.tracker.stats.total_ops > 0

    def test_memory_minimum(self, schema_r, schema_s):
        r = random_relation(schema_r, 10, seed=396)
        s = random_relation(schema_s, 10, seed=397)
        with pytest.raises(Exception):
            streamed_te_outerjoin(r, s, 3, page_spec=SPEC)
