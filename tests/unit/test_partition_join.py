"""Unit tests for the top-level partitionJoin driver (Figure 2)."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.model.errors import BufferOverflowError, SchemaError
from repro.model.schema import RelationSchema
from repro.model.relation import ValidTimeRelation
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec
from tests.conftest import random_relation


@pytest.fixture
def config():
    return PartitionJoinConfig(
        memory_pages=12, page_spec=PageSpec(page_bytes=1024, tuple_bytes=128)
    )


@pytest.fixture
def big_r(schema_r):
    return random_relation(schema_r, 600, seed=3, payload_tag="p")


@pytest.fixture
def big_s(schema_s):
    return random_relation(schema_s, 600, seed=4, payload_tag="q")


class TestResultCorrectness:
    def test_equals_reference(self, big_r, big_s, config):
        run = partition_join(big_r, big_s, config)
        assert run.result.multiset_equal(reference_join(big_r, big_s))

    def test_empty_inner(self, schema_r, schema_s, config, big_r):
        empty = ValidTimeRelation(schema_s)
        run = partition_join(big_r, empty, config)
        assert len(run.result) == 0

    def test_incompatible_schemas(self, config, big_r):
        other = ValidTimeRelation(RelationSchema("x", ("different",)))
        with pytest.raises(SchemaError):
            partition_join(big_r, other, config)

    def test_memory_too_small(self, big_r, big_s):
        with pytest.raises(BufferOverflowError):
            partition_join(big_r, big_s, PartitionJoinConfig(memory_pages=3))


class TestPhases:
    def test_three_phases_recorded(self, big_r, big_s, config):
        run = partition_join(big_r, big_s, config)
        assert set(run.layout.tracker.phases) == {"sample", "partition", "join"}
        for stats in run.layout.tracker.phases.values():
            assert stats.total_ops > 0

    def test_total_cost_is_sum_of_phases(self, big_r, big_s, config):
        run = partition_join(big_r, big_s, config)
        model = config.cost_model
        total = run.total_cost(model)
        assert total == pytest.approx(
            sum(run.layout.tracker.breakdown(model).values())
        )

    def test_result_writes_excluded_from_cost(self, big_r, big_s, config):
        run = partition_join(big_r, big_s, config)
        assert len(run.result) > 0  # workload guarantees matches
        # Result pages were written, on the separate excluded stream.
        assert run.layout.result_stats.writes > 0
        # The reported phases account for ALL charged I/O -- nothing from
        # the result stream leaked in.
        phase_total = sum(s.total_ops for s in run.layout.tracker.phases.values())
        assert phase_total == run.layout.tracker.stats.total_ops


class TestSinglePartitionShortcut:
    def test_small_relation_skips_partitioning(self, big_r, big_s):
        config = PartitionJoinConfig(
            memory_pages=4096, page_spec=PageSpec(page_bytes=1024, tuple_bytes=128)
        )
        run = partition_join(big_r, big_s, config)
        assert run.plan.num_partitions == 1
        assert set(run.layout.tracker.phases) == {"join"}
        # Cost is exactly two linear scans (each one random + sequential).
        model = CostModel.with_ratio(5)
        pages = config.page_spec.pages_for_tuples(len(big_r)) + config.page_spec.pages_for_tuples(len(big_s))
        assert run.total_cost(model) == pytest.approx(2 * model.io_ran + (pages - 2) * model.io_seq)

    def test_shortcut_result_correct(self, big_r, big_s):
        config = PartitionJoinConfig(memory_pages=4096)
        run = partition_join(big_r, big_s, config)
        assert run.result.multiset_equal(reference_join(big_r, big_s))

    def test_shortcut_when_only_inner_fits(self, schema_r, schema_s):
        r = random_relation(schema_r, 900, seed=8)
        s = random_relation(schema_s, 40, seed=9)
        config = PartitionJoinConfig(memory_pages=16)
        run = partition_join(r, s, config)
        assert run.plan.num_partitions == 1
        assert run.result.multiset_equal(reference_join(r, s))


class TestEmptyInputs:
    """Joining an empty relation must not drive the scan estimate negative."""

    def test_both_relations_empty(self, schema_r, schema_s, config):
        run = partition_join(
            ValidTimeRelation(schema_r), ValidTimeRelation(schema_s), config
        )
        assert len(run.result) == 0
        # Zero pages on each side: the clamp leaves exactly the two seeks.
        assert run.plan.chosen.c_join_scan == 2 * config.cost_model.io_ran
        assert run.plan.chosen.c_join_scan >= 0

    def test_empty_outer_against_tiny_inner(self, schema_r, schema_s, config):
        tiny = ValidTimeRelation.from_rows(schema_s, [("k", 1, 0, 5)])
        run = partition_join(ValidTimeRelation(schema_r), tiny, config)
        assert len(run.result) == 0
        # One page total would make n_pages - 2 negative without the clamp.
        assert run.plan.chosen.c_join_scan == 2 * config.cost_model.io_ran

    def test_empty_inner_full_outer(self, config, big_r, schema_s):
        run = partition_join(big_r, ValidTimeRelation(schema_s), config)
        assert len(run.result) == 0
        assert run.plan.chosen.c_join_scan >= 0


class TestDeterminism:
    def test_same_seed_same_plan(self, big_r, big_s, config):
        a = partition_join(big_r, big_s, config)
        b = partition_join(big_r, big_s, config)
        assert a.plan.intervals == b.plan.intervals
        assert a.total_cost(config.cost_model) == b.total_cost(config.cost_model)
