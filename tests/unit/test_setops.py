"""Unit tests for temporal set operations."""

import pytest

from repro.algebra.setops import (
    temporal_difference,
    temporal_intersection,
    temporal_union,
)
from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from tests.conftest import make_relation


SCHEMA = RelationSchema("r", ("k",), ("a",))
OTHER = RelationSchema("s", ("k",), ("a",))


class TestUnion:
    def test_merges_timestamps(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 4)])
        s = make_relation(OTHER, [("x", "a", 5, 9)])
        out = temporal_union(r, s)
        assert len(out) == 1
        assert out.tuples[0].valid.start == 0
        assert out.tuples[0].valid.end == 9

    def test_distinct_values_kept_separate(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 4)])
        s = make_relation(OTHER, [("x", "b", 0, 4)])
        assert len(temporal_union(r, s)) == 2

    def test_incompatible_schemas(self):
        r = make_relation(SCHEMA, [])
        bad = make_relation(RelationSchema("x", ("k",), ("zzz",)), [])
        with pytest.raises(SchemaError):
            temporal_union(r, bad)


class TestDifference:
    def test_removes_common_chronons(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 9)])
        s = make_relation(OTHER, [("x", "a", 3, 5)])
        out = temporal_difference(r, s)
        stamps = sorted((t.valid.start, t.valid.end) for t in out)
        assert stamps == [(0, 2), (6, 9)]

    def test_value_must_match_exactly(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 9)])
        s = make_relation(OTHER, [("x", "b", 0, 9)])
        out = temporal_difference(r, s)
        assert len(out) == 1
        assert out.tuples[0].valid.duration == 10

    def test_complete_removal(self):
        r = make_relation(SCHEMA, [("x", "a", 3, 5)])
        s = make_relation(OTHER, [("x", "a", 0, 9)])
        assert len(temporal_difference(r, s)) == 0


class TestIntersection:
    def test_common_chronons_only(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 6)])
        s = make_relation(OTHER, [("x", "a", 4, 9)])
        out = temporal_intersection(r, s)
        assert [(t.valid.start, t.valid.end) for t in out] == [(4, 6)]

    def test_empty_when_disjoint_in_time(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 2)])
        s = make_relation(OTHER, [("x", "a", 5, 9)])
        assert len(temporal_intersection(r, s)) == 0


class TestSnapshotReducibility:
    def test_all_three_operators(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 9), ("y", "b", 2, 12)])
        s = make_relation(OTHER, [("x", "a", 5, 15), ("z", "c", 0, 3)])
        union = temporal_union(r, s)
        difference = temporal_difference(r, s)
        intersection = temporal_intersection(r, s)
        for chronon in range(-1, 17):
            r_rows = set(map(tuple, r.timeslice(chronon)))
            s_rows = set(map(tuple, s.timeslice(chronon)))
            assert set(map(tuple, union.timeslice(chronon))) == r_rows | s_rows
            assert set(map(tuple, difference.timeslice(chronon))) == r_rows - s_rows
            assert set(map(tuple, intersection.timeslice(chronon))) == r_rows & s_rows
