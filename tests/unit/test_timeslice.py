"""Unit tests for the timeslice operator and snapshot join."""

from repro.algebra.timeslice import snapshot_join, timeslice
from repro.model.schema import RelationSchema
from tests.conftest import make_relation


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


class TestTimeslice:
    def test_returns_valid_rows(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 5), ("y", "a2", 3, 9)])
        assert timeslice(r, 4) == sorted([("x", "a1"), ("y", "a2")], key=repr)
        assert timeslice(r, 7) == [("y", "a2")]
        assert timeslice(r, 100) == []

    def test_inclusive_endpoints(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 3, 5)])
        assert timeslice(r, 3) == [("x", "a1")]
        assert timeslice(r, 5) == [("x", "a1")]
        assert timeslice(r, 2) == []

    def test_duplicates_preserved(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 5), ("x", "a1", 2, 7)])
        assert timeslice(r, 3) == [("x", "a1"), ("x", "a1")]


class TestSnapshotJoin:
    def test_simple_match(self):
        rows = snapshot_join(
            [("x", "a1")], [("x", "b1")], SCHEMA_R, SCHEMA_S
        )
        assert rows == [("x", "a1", "b1")]

    def test_no_match(self):
        assert snapshot_join([("x", "a1")], [("y", "b1")], SCHEMA_R, SCHEMA_S) == []

    def test_multiplicity(self):
        rows = snapshot_join(
            [("x", "a1"), ("x", "a2")],
            [("x", "b1"), ("x", "b2")],
            SCHEMA_R,
            SCHEMA_S,
        )
        assert len(rows) == 4
