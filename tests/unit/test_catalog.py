"""Unit tests for catalog statistics and multi-way joins."""

import pytest

from functools import reduce

from repro.algebra.coalesce import coalesce
from repro.algebra.normalize import decompose
from repro.baselines.reference import reference_join
from repro.engine.catalog import analyze
from repro.engine.database import TemporalDatabase
from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec
from tests.conftest import make_relation, random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)


class TestAnalyze:
    def test_empty_relation(self):
        stats = analyze(ValidTimeRelation(RelationSchema("r", ("k",))), SPEC)
        assert stats.n_tuples == 0
        assert stats.lifespan is None
        assert stats.tuples_per_key == 0.0

    def test_basic_counts(self):
        schema = RelationSchema("r", ("k",), ("a",))
        relation = make_relation(
            schema,
            [("x", "a1", 0, 99), ("x", "a2", 10, 10), ("y", "a3", 20, 20)],
        )
        stats = analyze(relation, SPEC)
        assert stats.n_tuples == 3
        assert stats.n_pages == 1
        assert stats.lifespan.start == 0 and stats.lifespan.end == 99
        assert stats.n_keys == 2
        assert stats.tuples_per_key == pytest.approx(1.5)

    def test_long_lived_fraction(self):
        schema = RelationSchema("r", ("k",), ("a",))
        rows = [("x", f"a{i}", i, i) for i in range(90)]
        rows += [("x", f"L{i}", 0, 89) for i in range(10)]
        stats = analyze(make_relation(schema, rows), SPEC)
        assert stats.long_lived_fraction == pytest.approx(0.1)

    def test_mean_duration(self):
        schema = RelationSchema("r", ("k",), ("a",))
        relation = make_relation(schema, [("x", "a", 0, 9), ("x", "b", 0, 0)])
        assert analyze(relation, SPEC).mean_duration == pytest.approx(5.5)

    def test_database_caches_until_change(self, schema_r):
        db = TemporalDatabase(page_spec=SPEC)
        db.create_relation(schema_r)
        db.relation("works_on").extend(
            random_relation(schema_r, 40, seed=351).tuples
        )
        first = db.statistics("works_on")
        assert db.statistics("works_on") is first  # cached
        db.insert("works_on", [("zed", "p", 0, 1)])
        assert db.statistics("works_on") is not first  # refreshed


class TestJoinMany:
    def test_three_way_reconstruction(self):
        schema = RelationSchema("facts", ("k",), ("a", "b", "c"))
        relation = make_relation(
            schema,
            [
                ("x", "a1", "b1", "c1", 0, 9),
                ("x", "a2", "b1", "c2", 10, 19),
                ("y", "a3", "b2", "c3", 0, 19),
            ],
        )
        fragments = decompose(relation, [("a",), ("b",), ("c",)])
        db = TemporalDatabase(memory_pages=16, page_spec=SPEC)
        for fragment in fragments:
            db.create_relation(fragment.schema)
            db.relation(fragment.schema.name).extend(fragment.tuples)

        result = db.join_many([f.schema.name for f in fragments])
        expected = reduce(reference_join, fragments)
        assert result.relation.multiset_equal(expected)
        assert coalesce(result.relation).multiset_equal(coalesce(relation))
        assert result.cost > 0
        assert result.algorithm.count("+") == 1  # two join steps

    def test_intermediates_are_cleaned_up(self, schema_r, schema_s):
        db = TemporalDatabase(memory_pages=16, page_spec=SPEC)
        db.create_relation(schema_r)
        db.create_relation(schema_s)
        db.relation("works_on").extend(random_relation(schema_r, 40, seed=352).tuples)
        db.relation("earns").extend(random_relation(schema_s, 40, seed=353).tuples)
        before = db.names()
        db.join_many(["works_on", "earns"])
        assert db.names() == before

    def test_needs_two_relations(self, schema_r):
        db = TemporalDatabase(page_spec=SPEC)
        db.create_relation(schema_r)
        with pytest.raises(SchemaError, match="at least two"):
            db.join_many(["works_on"])
