"""Unit tests for catalog statistics and multi-way joins."""

import pytest

from functools import reduce

from repro.algebra.coalesce import coalesce
from repro.algebra.normalize import decompose
from repro.baselines.reference import reference_join
from repro.engine.catalog import analyze
from repro.engine.database import TemporalDatabase
from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec
from tests.conftest import make_relation, random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)


class TestAnalyze:
    def test_empty_relation(self):
        stats = analyze(ValidTimeRelation(RelationSchema("r", ("k",))), SPEC)
        assert stats.n_tuples == 0
        assert stats.lifespan is None
        assert stats.tuples_per_key == 0.0

    def test_basic_counts(self):
        schema = RelationSchema("r", ("k",), ("a",))
        relation = make_relation(
            schema,
            [("x", "a1", 0, 99), ("x", "a2", 10, 10), ("y", "a3", 20, 20)],
        )
        stats = analyze(relation, SPEC)
        assert stats.n_tuples == 3
        assert stats.n_pages == 1
        assert stats.lifespan.start == 0 and stats.lifespan.end == 99
        assert stats.n_keys == 2
        assert stats.tuples_per_key == pytest.approx(1.5)

    def test_long_lived_fraction(self):
        schema = RelationSchema("r", ("k",), ("a",))
        rows = [("x", f"a{i}", i, i) for i in range(90)]
        rows += [("x", f"L{i}", 0, 89) for i in range(10)]
        stats = analyze(make_relation(schema, rows), SPEC)
        assert stats.long_lived_fraction == pytest.approx(0.1)

    def test_mean_duration(self):
        schema = RelationSchema("r", ("k",), ("a",))
        relation = make_relation(schema, [("x", "a", 0, 9), ("x", "b", 0, 0)])
        assert analyze(relation, SPEC).mean_duration == pytest.approx(5.5)

    def test_database_caches_until_change(self, schema_r):
        db = TemporalDatabase(page_spec=SPEC)
        db.create_relation(schema_r)
        db.relation("works_on").extend(
            random_relation(schema_r, 40, seed=351).tuples
        )
        first = db.statistics("works_on")
        assert db.statistics("works_on") is first  # cached
        db.insert("works_on", [("zed", "p", 0, 1)])
        assert db.statistics("works_on") is not first  # refreshed


class TestJoinMany:
    def test_three_way_reconstruction(self):
        schema = RelationSchema("facts", ("k",), ("a", "b", "c"))
        relation = make_relation(
            schema,
            [
                ("x", "a1", "b1", "c1", 0, 9),
                ("x", "a2", "b1", "c2", 10, 19),
                ("y", "a3", "b2", "c3", 0, 19),
            ],
        )
        fragments = decompose(relation, [("a",), ("b",), ("c",)])
        db = TemporalDatabase(memory_pages=16, page_spec=SPEC)
        for fragment in fragments:
            db.create_relation(fragment.schema)
            db.relation(fragment.schema.name).extend(fragment.tuples)

        result = db.join_many([f.schema.name for f in fragments])
        expected = reduce(reference_join, fragments)
        assert result.relation.multiset_equal(expected)
        assert coalesce(result.relation).multiset_equal(coalesce(relation))
        assert result.cost > 0
        assert result.algorithm.count("+") == 1  # two join steps

    def test_intermediates_are_cleaned_up(self, schema_r, schema_s):
        db = TemporalDatabase(memory_pages=16, page_spec=SPEC)
        db.create_relation(schema_r)
        db.create_relation(schema_s)
        db.relation("works_on").extend(random_relation(schema_r, 40, seed=352).tuples)
        db.relation("earns").extend(random_relation(schema_s, 40, seed=353).tuples)
        before = db.names()
        db.join_many(["works_on", "earns"])
        assert db.names() == before

    def test_needs_two_relations(self, schema_r):
        db = TemporalDatabase(page_spec=SPEC)
        db.create_relation(schema_r)
        with pytest.raises(SchemaError, match="at least two"):
            db.join_many(["works_on"])


class TestVersionedCatalog:
    """Edge cases of the copy-on-write versioned catalog (service layer)."""

    def _schemas(self):
        r = RelationSchema("vr", join_attributes=("k",), payload_attributes=("p",))
        s = RelationSchema("vs", join_attributes=("k",), payload_attributes=("q",))
        return r, s

    def _catalog(self):
        from repro.engine.catalog import VersionedCatalog
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        catalog = VersionedCatalog()
        r_schema, s_schema = self._schemas()
        catalog.register(
            r_schema,
            [VTTuple(("a",), (1,), Interval(0, 9)),
             VTTuple(("b",), (2,), Interval(5, 14))],
        )
        catalog.register(
            s_schema,
            [VTTuple(("a",), (10,), Interval(3, 7))],
        )
        return catalog

    def test_register_bumps_epoch(self):
        catalog = self._catalog()
        assert catalog.epoch == 2
        assert catalog.current("vr").epoch == 1
        assert catalog.current("vs").epoch == 2

    def test_reregistering_name_raises(self):
        from repro.model.errors import SchemaError as Err

        catalog = self._catalog()
        r_schema, _ = self._schemas()
        before = catalog.epoch
        with pytest.raises(Err, match="already"):
            catalog.register(r_schema, [])
        assert catalog.epoch == before  # a failed register burns no epoch

    def test_epoch_monotonic_across_append_and_delete(self):
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        catalog = self._catalog()
        seen = [catalog.epoch]
        extra = VTTuple(("c",), (3,), Interval(1, 2))
        for _ in range(3):
            catalog.append("vr", [extra])
            seen.append(catalog.epoch)
            catalog.delete("vr", [extra])
            seen.append(catalog.epoch)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)  # strictly increasing: no reuse

    def test_version_at_replays_history(self):
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        catalog = self._catalog()
        first = catalog.current("vr")
        extra = VTTuple(("c",), (3,), Interval(1, 2))
        second = catalog.append("vr", [extra])
        assert len(first) == 2 and len(second) == 3
        # The old version is untouched (copy-on-write)...
        assert catalog.version_at("vr", first.epoch) is first
        # ...and any epoch between installs resolves to the version then live.
        assert catalog.version_at("vr", second.epoch - 1) is first
        assert catalog.version_at("vr", catalog.epoch) is second

    def test_version_at_before_creation_raises(self):
        from repro.model.errors import CatalogError

        catalog = self._catalog()
        with pytest.raises(CatalogError):
            catalog.version_at("vr", 0)
        with pytest.raises(CatalogError):
            catalog.version_at("nope", 1)

    def test_delete_of_absent_tuple_raises(self):
        from repro.model.errors import CatalogError
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        catalog = self._catalog()
        with pytest.raises(CatalogError, match="not present"):
            catalog.delete("vr", [VTTuple(("zz",), (0,), Interval(0, 0))])

    def test_drop_with_live_incremental_view_raises(self):
        from repro.core.intervals import PartitionMap
        from repro.incremental.view import MaterializedVTJoin
        from repro.model.errors import CatalogError
        from repro.time.interval import Interval

        catalog = self._catalog()
        r_schema, s_schema = self._schemas()
        view = MaterializedVTJoin(
            r_schema,
            s_schema,
            PartitionMap([Interval(0, 9), Interval(10, 19)]),
            r_tuples=catalog.current("vr").relation.tuples,
            s_tuples=catalog.current("vs").relation.tuples,
        )
        catalog.attach_view("v", view, "vr", "vs")
        with pytest.raises(CatalogError, match="live incremental view"):
            catalog.drop("vr")
        with pytest.raises(CatalogError, match="live incremental view"):
            catalog.drop("vs")
        catalog.detach_view("v")
        catalog.drop("vr")  # detaching unblocks the drop
        assert "vr" not in catalog.names()
        # History survives the drop: old epochs still replay.
        assert len(catalog.version_at("vr", 1)) == 2

    def test_view_maintained_by_catalog_writes(self):
        from repro.core.intervals import PartitionMap
        from repro.incremental.view import MaterializedVTJoin
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        catalog = self._catalog()
        r_schema, s_schema = self._schemas()
        view = MaterializedVTJoin(
            r_schema,
            s_schema,
            PartitionMap([Interval(0, 9), Interval(10, 19)]),
            r_tuples=catalog.current("vr").relation.tuples,
            s_tuples=catalog.current("vs").relation.tuples,
        )
        catalog.attach_view("v", view, "vr", "vs")
        before = len(view.snapshot().tuples)
        catalog.append("vs", [VTTuple(("b",), (20,), Interval(6, 12))])
        after = len(view.snapshot().tuples)
        assert after == before + 1  # ('b') overlaps [5,14] in vr

    def test_snapshot_is_isolated_from_later_writes(self):
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        catalog = self._catalog()
        snapshot = catalog.snapshot()
        catalog.append("vr", [VTTuple(("c",), (3,), Interval(1, 2))])
        assert len(snapshot.relation("vr")) == 2
        assert len(catalog.current("vr")) == 3
        assert snapshot.epoch < catalog.epoch
