"""Unit tests for the packed columnar page layout.

The contract: a :class:`ColumnarPage` is observationally identical to the
plain tuple list it was packed from -- same tuples, same order, same
checksum-relevant ``repr`` -- while exposing its time and key columns as
zero-copy views over one packed buffer.
"""

import zlib

import pytest

from repro.exec.backend import HAVE_NUMPY
from repro.exec.kernels import PythonKernels, get_kernels
from repro.model.vtuple import VTTuple
from repro.storage.columnar_page import ColumnarPage, KeyDictionary, page_view
from repro.storage.heapfile import HeapFile
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")


def vt(key, start, end, tag="x"):
    return VTTuple((key,), (tag,), Interval(start, end))


TUPLES = [
    vt("a", 0, 5, "t0"),
    vt("b", 3, 9, "t1"),
    vt("a", 7, 7, "t2"),
    vt("c", 1, 20, "t3"),
]


class TestKeyDictionary:
    def test_codes_are_dense_first_seen(self):
        d = KeyDictionary()
        assert d.code(("x",)) == 0
        assert d.code(("y",)) == 1
        assert d.code(("x",)) == 0
        assert d.key(0) == ("x",)
        assert d.key(1) == ("y",)

    def test_shared_across_pages(self):
        d = KeyDictionary()
        p1 = ColumnarPage.from_tuples(TUPLES[:2], d)
        p2 = ColumnarPage.from_tuples(TUPLES[2:], d)
        # "a" appears on both pages under one code.
        assert p1.codes_list()[0] == p2.codes_list()[0]


class TestColumnarPage:
    def test_round_trip_and_sequence_protocol(self):
        page = ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        assert len(page) == len(TUPLES)
        assert list(page) == TUPLES
        assert page[0] == TUPLES[0]
        assert page[-1] == TUPLES[-1]
        assert page[1:3] == TUPLES[1:3]
        assert page.tuples() == list(TUPLES)

    def test_column_lists_match_tuples(self):
        page = ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        assert list(page.starts_list()) == [t.valid.start for t in TUPLES]
        assert list(page.ends_list()) == [t.valid.end for t in TUPLES]
        dictionary = page.dictionary
        assert [dictionary.key(c) for c in page.codes_list()] == [
            t.key for t in TUPLES
        ]

    @needs_numpy
    def test_views_are_zero_copy(self):
        import numpy as np

        page = ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        starts = page.starts_view()
        assert starts.dtype == np.dtype("<i8")
        assert not starts.flags.owndata  # a view over the packed buffer
        assert list(starts) == [t.valid.start for t in TUPLES]
        assert list(page.ends_view()) == [t.valid.end for t in TUPLES]

    def test_materialization_is_memoized(self):
        page = ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        assert page.row(2) is page.row(2)

    def test_equality_against_lists_and_pages(self):
        d = KeyDictionary()
        page = ColumnarPage.from_tuples(TUPLES, d)
        assert page == list(TUPLES)
        assert page == tuple(TUPLES)
        assert page == ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        assert page != TUPLES[:-1]

    def test_repr_is_dictionary_independent(self):
        """``page_checksum`` hashes ``repr(page)``: two pages with the same
        tuples must collide whatever dictionary instance packed them."""
        d1, d2 = KeyDictionary(), KeyDictionary()
        d2.code(("seen-first-elsewhere",))  # skew the code assignment
        p1 = ColumnarPage.from_tuples(TUPLES, d1)
        p2 = ColumnarPage.from_tuples(TUPLES, d2)
        assert repr(p1) == repr(p2)
        assert zlib.crc32(repr(p1).encode()) == zlib.crc32(repr(p2).encode())

    def test_empty_page(self):
        page = ColumnarPage.from_tuples([], KeyDictionary())
        assert len(page) == 0
        assert list(page) == []
        assert list(page.starts_list()) == []

    def test_page_view_passthrough(self):
        page = ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        assert page_view(page) is page
        assert page_view(tuple(TUPLES)) == list(TUPLES)


class TestColumnarHeapFile:
    @pytest.mark.parametrize("columnar", [False, True])
    @pytest.mark.parametrize("checksums", [False, True])
    def test_round_trip_matrix(self, columnar, checksums):
        layout = DiskLayout(
            spec=PageSpec(page_bytes=128, tuple_bytes=32),
            columnar=columnar,
            checksums=checksums,
        )
        heap = layout.temp_file("t", capacity_tuples=len(TUPLES) * 5)
        heap.append_many(TUPLES * 5)
        heap.flush()
        assert heap.all_tuples() == TUPLES * 5
        assert [t for page in heap.scan_pages() for t in page] == TUPLES * 5

    def test_columnar_pages_reach_the_scanner(self):
        layout = DiskLayout(
            spec=PageSpec(page_bytes=128, tuple_bytes=32), columnar=True
        )
        heap = layout.temp_file("t", capacity_tuples=len(TUPLES) * 5)
        heap.append_many(TUPLES * 5)
        heap.flush()
        pages = list(heap.scan_pages())
        assert pages and all(isinstance(p, ColumnarPage) for p in pages)

    def test_page_counts_match_list_layout(self):
        """Columnar storage must not change charged I/O: same page count."""
        spec = PageSpec(page_bytes=128, tuple_bytes=32)
        def build(columnar):
            heap = DiskLayout(spec=spec, columnar=columnar).temp_file(
                "t", capacity_tuples=len(TUPLES) * 7
            )
            heap.append_many(TUPLES * 7)
            heap.flush()
            return heap

        assert build(False).n_pages == build(True).n_pages


class TestKernelsOverColumnarPages:
    """Satellite regression: the batch kernels accept columnar pages and
    produce columns identical to the tuple-list path, on both backends --
    including the empty-page dtype normalization."""

    def _batches(self, kernels, page_tuples, dictionary=None):
        d = dictionary if dictionary is not None else KeyDictionary()
        columnar = ColumnarPage.from_tuples(page_tuples, d)
        interner_a = kernels.make_interner()
        interner_b = kernels.make_interner()
        return (
            kernels.page_batch(list(page_tuples), interner_a),
            kernels.page_batch(columnar, interner_b),
        )

    @pytest.mark.parametrize("backend", ["python"] + (["numpy"] if HAVE_NUMPY else []))
    def test_columns_identical_to_list_path(self, backend):
        kernels = get_kernels(backend)
        plain, packed = self._batches(kernels, TUPLES)
        assert list(plain.starts) == list(packed.starts)
        assert list(plain.ends) == list(packed.ends)
        # The python backend skips key-id columns on both paths.
        assert (plain.key_ids is None) == (packed.key_ids is None)
        if plain.key_ids is not None:
            assert list(plain.key_ids) == list(packed.key_ids)

    @needs_numpy
    def test_build_side_interning_matches_tuple_path(self):
        kernels = get_kernels("numpy")
        columnar = ColumnarPage.from_tuples(TUPLES, KeyDictionary())
        a, b = kernels.make_interner(), kernels.make_interner()
        plain = kernels.page_batch(list(TUPLES), a, intern=True)
        packed = kernels.page_batch(columnar, b, intern=True)
        assert list(plain.key_ids) == list(packed.key_ids)
        assert a.keys_in_id_order() == b.keys_in_id_order()

    @pytest.mark.parametrize("backend", ["python"] + (["numpy"] if HAVE_NUMPY else []))
    def test_empty_page_batch(self, backend):
        kernels = get_kernels(backend)
        plain, packed = self._batches(kernels, [])
        assert len(plain.starts) == len(packed.starts) == 0
        assert len(plain) == len(packed) == 0

    @needs_numpy
    def test_empty_columns_are_int64(self):
        """The from_tuples empty path must normalize every column's dtype;
        an object-dtype empty column poisons later concatenation."""
        import numpy as np

        kernels = get_kernels("numpy")
        batch = kernels.page_batch([], kernels.make_interner())
        for column in (batch.starts, batch.ends, batch.key_ids):
            assert column.dtype == np.int64
