"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_params(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "page_bytes" in out
        assert "262144" in out

    def test_fig4_small_scale(self, capsys):
        deviations = main(["fig4", "--scale", "64"])
        out = capsys.readouterr().out
        assert "chosen partSize" in out
        assert deviations == 0
        assert "all paper claims hold" in out

    def test_fig6_small_scale(self, capsys):
        deviations = main(["fig6", "--scale", "64"])
        out = capsys.readouterr().out
        assert "partition" in out and "sort_merge" in out
        # Scale 64 is below the documented fidelity floor for some sweeps,
        # so only the mechanics are asserted here, not the verdict count.
        assert "shape checks" in out
        assert deviations >= 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure9"])

    def test_exit_code_counts_deviations(self, capsys):
        deviations = main(["fig8", "--scale", "64"])
        capsys.readouterr()
        assert isinstance(deviations, int)

    def test_summary_command(self, capsys):
        main(["summary", "--scale", "64"])
        out = capsys.readouterr().out
        assert "cheapest algorithm" in out
        assert "over runner-up" in out


class TestExplainCommand:
    def test_explain_renders_a_plan(self, capsys):
        assert main(["explain", "--scale", "512", "--method", "partition"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN valid-time natural join")
        assert "plan:" in out
        assert "result:" not in out  # no execution without --analyze

    def test_explain_analyze_reconciles(self, capsys):
        assert (
            main(
                [
                    "explain",
                    "--analyze",
                    "--scale",
                    "512",
                    "--method",
                    "partition",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN ANALYZE")
        assert "actual" in out
        assert "result:" in out

    def test_explain_rejects_unknown_execution(self):
        with pytest.raises(SystemExit):
            main(["explain", "--execution", "warp-speed"])
