"""Unit tests for PartitionMap placement lookups (Section 3.3 rules)."""

import pytest

from repro.core.intervals import PartitionMap
from repro.model.errors import PlanError
from repro.time.interval import Interval


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])


class TestConstruction:
    def test_requires_intervals(self):
        with pytest.raises(PlanError):
            PartitionMap([])

    def test_rejects_gap(self):
        with pytest.raises(PlanError, match="tile"):
            PartitionMap([Interval(0, 9), Interval(11, 19)])

    def test_rejects_overlap(self):
        with pytest.raises(PlanError, match="tile"):
            PartitionMap([Interval(0, 10), Interval(10, 19)])

    def test_len_and_indexing(self, pmap):
        assert len(pmap) == 3
        assert pmap[1] == Interval(10, 19)


class TestChrononLookup:
    def test_interior(self, pmap):
        assert pmap.index_of_chronon(5) == 0
        assert pmap.index_of_chronon(10) == 1
        assert pmap.index_of_chronon(19) == 1
        assert pmap.index_of_chronon(20) == 2

    def test_clamping(self, pmap):
        assert pmap.index_of_chronon(-100) == 0
        assert pmap.index_of_chronon(1000) == 2


class TestOverlapLookups:
    def test_storage_partition_is_last_overlap(self, pmap):
        assert pmap.last_overlapping(Interval(5, 25)) == 2
        assert pmap.last_overlapping(Interval(5, 15)) == 1
        assert pmap.last_overlapping(Interval(3, 4)) == 0

    def test_migration_floor_is_first_overlap(self, pmap):
        assert pmap.first_overlapping(Interval(5, 25)) == 0
        assert pmap.first_overlapping(Interval(12, 25)) == 1

    def test_clamped_tuples_live_at_edges(self, pmap):
        assert pmap.last_overlapping(Interval(40, 50)) == 2
        assert pmap.first_overlapping(Interval(-10, -5)) == 0

    def test_overlaps_partition(self, pmap):
        valid = Interval(5, 15)
        assert pmap.overlaps_partition(valid, 0)
        assert pmap.overlaps_partition(valid, 1)
        assert not pmap.overlaps_partition(valid, 2)

    def test_overlaps_partition_with_clamping(self, pmap):
        # A tuple past the covered lifespan belongs to the last partition.
        assert pmap.overlaps_partition(Interval(100, 200), 2)
        assert not pmap.overlaps_partition(Interval(100, 200), 1)
