"""Unit tests for granularity conversion [DS93]."""

import pytest

from repro.model.schema import RelationSchema
from repro.time.granularity import GranularityConversion
from repro.time.interval import Interval
from tests.conftest import make_relation


DAYS_TO_HOURS = GranularityConversion(24)


class TestRefine:
    def test_single_chronon(self):
        assert DAYS_TO_HOURS.refine(Interval(0, 0)) == Interval(0, 23)

    def test_multi_chronon(self):
        assert DAYS_TO_HOURS.refine(Interval(1, 2)) == Interval(24, 71)

    def test_factor_one_is_identity(self):
        identity = GranularityConversion(1)
        assert identity.refine(Interval(3, 9)) == Interval(3, 9)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            GranularityConversion(0)


class TestCoarsen:
    def test_cover_policy(self):
        # Hours 10..30 touch days 0 and 1.
        assert DAYS_TO_HOURS.coarsen(Interval(10, 30)) == Interval(0, 1)

    def test_within_policy(self):
        # Hours 0..47 contain exactly days 0 and 1.
        assert DAYS_TO_HOURS.coarsen(Interval(0, 47), policy="within") == Interval(0, 1)
        # Hours 1..47 contain only day 1 entirely.
        assert DAYS_TO_HOURS.coarsen(Interval(1, 47), policy="within") == Interval(1, 1)

    def test_within_can_be_empty(self):
        assert DAYS_TO_HOURS.coarsen(Interval(5, 20), policy="within") is None

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            DAYS_TO_HOURS.coarsen(Interval(0, 1), policy="fuzzy")

    def test_cover_contains_within(self):
        for start in range(0, 50, 7):
            for width in (0, 5, 24, 50):
                interval = Interval(start, start + width)
                cover = DAYS_TO_HOURS.coarsen(interval, policy="cover")
                within = DAYS_TO_HOURS.coarsen(interval, policy="within")
                if within is not None:
                    assert cover.contains(within)


class TestRoundTrips:
    def test_refine_then_coarsen_is_identity(self):
        for start in range(0, 10):
            for end in range(start, 10):
                coarse = Interval(start, end)
                fine = DAYS_TO_HOURS.refine(coarse)
                assert DAYS_TO_HOURS.coarsen(fine, policy="cover") == coarse
                assert DAYS_TO_HOURS.coarsen(fine, policy="within") == coarse


class TestRelationConversion:
    SCHEMA = RelationSchema("r", ("k",), ("a",))

    def test_refine_relation(self):
        relation = make_relation(self.SCHEMA, [("x", "a", 0, 1)])
        fine = DAYS_TO_HOURS.refine_relation(relation)
        assert fine.tuples[0].valid == Interval(0, 47)

    def test_coarsen_relation_drops_empty_within(self):
        relation = make_relation(
            self.SCHEMA, [("x", "a", 5, 20), ("x", "b", 0, 47)]
        )
        coarse = DAYS_TO_HOURS.coarsen_relation(relation, policy="within")
        assert len(coarse) == 1
        assert coarse.tuples[0].payload == ("b",)

    def test_cross_granularity_join_via_refinement(self):
        """Joining a day-granularity and an hour-granularity relation."""
        from repro.baselines.reference import reference_join

        days = make_relation(self.SCHEMA, [("x", "day_fact", 1, 1)])
        hours = make_relation(
            RelationSchema("s", ("k",), ("b",)), [("x", "hour_fact", 30, 40)]
        )
        joined = reference_join(DAYS_TO_HOURS.refine_relation(days), hours)
        assert len(joined) == 1
        assert joined.tuples[0].valid == Interval(30, 40)
