"""Unit tests for temporal aggregation (tree, sweep, operator)."""

import pytest

from repro.aggregate.operator import temporal_aggregate
from repro.aggregate.sweep import constant_intervals, sweep_aggregate
from repro.aggregate.tree import AggregationTree
from repro.model.schema import RelationSchema
from repro.time.interval import Interval
from tests.conftest import make_relation


class TestAggregationTree:
    def test_single_interval(self):
        tree = AggregationTree(Interval(0, 99))
        tree.insert(Interval(10, 19))
        assert tree.segments() == [(Interval(10, 19), 1.0)]

    def test_overlapping_intervals(self):
        tree = AggregationTree(Interval(0, 99))
        tree.insert(Interval(0, 49))
        tree.insert(Interval(25, 74), weight=2)
        assert tree.segments() == [
            (Interval(0, 24), 1.0),
            (Interval(25, 49), 3.0),
            (Interval(50, 74), 2.0),
        ]

    def test_value_at(self):
        tree = AggregationTree(Interval(0, 99))
        tree.insert(Interval(0, 49))
        tree.insert(Interval(25, 74))
        assert tree.value_at(0) == 1
        assert tree.value_at(30) == 2
        assert tree.value_at(60) == 1
        assert tree.value_at(80) == 0
        assert tree.value_at(-5) == 0

    def test_equal_adjacent_segments_merge(self):
        tree = AggregationTree(Interval(0, 99))
        tree.insert(Interval(0, 49))
        tree.insert(Interval(50, 99))
        assert tree.segments() == [(Interval(0, 99), 1.0)]

    def test_keep_zero(self):
        tree = AggregationTree(Interval(0, 9))
        tree.insert(Interval(3, 5))
        with_zero = tree.segments(keep_zero=True)
        assert (Interval(0, 2), 0.0) in with_zero
        assert (Interval(6, 9), 0.0) in with_zero

    def test_out_of_domain_rejected(self):
        tree = AggregationTree(Interval(0, 9))
        with pytest.raises(ValueError, match="outside"):
            tree.insert(Interval(5, 15))

    def test_matches_per_chronon_count(self):
        import random

        rng = random.Random(4)
        tree = AggregationTree(Interval(0, 63))
        intervals = []
        for _ in range(40):
            start = rng.randrange(64)
            interval = Interval(start, min(63, start + rng.randrange(20)))
            intervals.append(interval)
            tree.insert(interval)
        for chronon in range(64):
            expected = sum(1 for iv in intervals if iv.contains_chronon(chronon))
            assert tree.value_at(chronon) == expected
        # And the segment decomposition covers every nonzero chronon once.
        for segment, value in tree.segments():
            for chronon in segment.chronons():
                assert tree.value_at(chronon) == value


class TestSweep:
    def test_constant_intervals(self):
        segments = constant_intervals([Interval(0, 5), Interval(3, 9)])
        assert segments == [
            (Interval(0, 2), 1),
            (Interval(3, 5), 2),
            (Interval(6, 9), 1),
        ]

    def test_gap_between_intervals(self):
        segments = constant_intervals([Interval(0, 2), Interval(6, 8)])
        assert segments == [(Interval(0, 2), 1), (Interval(6, 8), 1)]

    def test_sum(self):
        segments = sweep_aggregate(
            [(Interval(0, 5), 10.0), (Interval(3, 9), 5.0)], "sum"
        )
        assert segments == [
            (Interval(0, 2), 10.0),
            (Interval(3, 5), 15.0),
            (Interval(6, 9), 5.0),
        ]

    def test_min_and_max(self):
        weighted = [(Interval(0, 5), 10.0), (Interval(3, 9), 5.0)]
        # Equal-valued adjacent segments merge into maximal intervals.
        assert sweep_aggregate(weighted, "min") == [
            (Interval(0, 2), 10.0),
            (Interval(3, 9), 5.0),
        ]
        assert sweep_aggregate(weighted, "max") == [
            (Interval(0, 5), 10.0),
            (Interval(6, 9), 5.0),
        ]

    def test_avg(self):
        segments = sweep_aggregate(
            [(Interval(0, 3), 10.0), (Interval(2, 3), 20.0)], "avg"
        )
        assert segments == [(Interval(0, 1), 10.0), (Interval(2, 3), 15.0)]

    def test_empty(self):
        assert sweep_aggregate([], "count") == []

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            sweep_aggregate([], "median")

    def test_tree_and_sweep_agree_on_sum(self):
        import random

        rng = random.Random(11)
        weighted = []
        tree = AggregationTree(Interval(0, 200))
        for _ in range(60):
            start = rng.randrange(180)
            interval = Interval(start, start + rng.randrange(30))
            value = float(rng.randrange(1, 9))
            weighted.append((interval, value))
            tree.insert(interval, value)
        assert tree.segments() == sweep_aggregate(weighted, "sum")


SCHEMA = RelationSchema("staff", ("dept",), ("salary",))


class TestTemporalAggregateOperator:
    @pytest.fixture
    def relation(self):
        return make_relation(
            SCHEMA,
            [
                ("db", 100, 0, 9),
                ("db", 200, 5, 14),
                ("os", 50, 0, 19),
            ],
        )

    def test_global_count(self, relation):
        out = temporal_aggregate(relation, "count")
        values = {(t.vs, t.ve): t.payload[0] for t in out}
        assert values == {
            (0, 4): 2.0,
            (5, 9): 3.0,
            (10, 14): 2.0,
            (15, 19): 1.0,
        }

    def test_per_key_sum(self, relation):
        out = temporal_aggregate(
            relation, "sum", value_of=lambda t: t.payload[0], per_key=True
        )
        db_rows = {(t.vs, t.ve): t.payload[0] for t in out if t.key == ("db",)}
        assert db_rows == {(0, 4): 100.0, (5, 9): 300.0, (10, 14): 200.0}

    def test_max_uses_sweep(self, relation):
        out = temporal_aggregate(relation, "max", value_of=lambda t: t.payload[0])
        values = {(t.vs, t.ve): t.payload[0] for t in out}
        assert values[(0, 4)] == 100.0
        assert values[(5, 14)] == 200.0
        assert values[(15, 19)] == 50.0

    def test_tree_rejected_for_min(self, relation):
        with pytest.raises(ValueError, match="tree"):
            temporal_aggregate(
                relation, "min", value_of=lambda t: t.payload[0], use_tree=True
            )

    def test_count_needs_no_extractor_sum_does(self, relation):
        temporal_aggregate(relation, "count")
        with pytest.raises(ValueError, match="value_of"):
            temporal_aggregate(relation, "sum")

    def test_empty_relation(self):
        from repro.model.relation import ValidTimeRelation

        out = temporal_aggregate(ValidTimeRelation(SCHEMA), "count")
        assert len(out) == 0

    def test_result_is_snapshot_consistent(self, relation):
        out = temporal_aggregate(relation, "count")
        for chronon in range(-1, 22):
            active = len(relation.timeslice(chronon))
            reported = [row[1] for row in out.timeslice(chronon)]
            if active:
                assert reported == [float(active)]
            else:
                assert reported == []
