"""Unit tests for the partition-based T-join."""

from repro.core.partition_join import PartitionJoinConfig
from repro.storage.page import PageSpec
from repro.variants.partitioned_time_join import partitioned_time_join
from repro.variants.time_join import time_join
from tests.conftest import random_relation


class TestPartitionedTimeJoin:
    def test_matches_in_memory_time_join(self, schema_r, schema_s):
        r = random_relation(schema_r, 120, seed=321, n_keys=6)
        s = random_relation(schema_s, 120, seed=322, n_keys=6)
        config = PartitionJoinConfig(
            memory_pages=10, page_spec=PageSpec(512, 128)
        )
        via_partition = partitioned_time_join(r, s, config)
        in_memory = time_join(r, s)
        assert via_partition.multiset_equal(in_memory)

    def test_key_values_do_not_matter(self, schema_r, schema_s):
        """The T-join pairs across different keys; verify some such pair."""
        r = random_relation(schema_r, 60, seed=323, n_keys=30)
        s = random_relation(schema_s, 60, seed=324, n_keys=30)
        config = PartitionJoinConfig(memory_pages=10, page_spec=PageSpec(512, 128))
        result = partitioned_time_join(r, s, config)
        cross_key = [
            tup for tup in result if tup.payload[0] != tup.payload[2]
        ]
        assert cross_key  # pairs with different original keys exist

    def test_result_schema_shape(self, schema_r, schema_s):
        r = random_relation(schema_r, 30, seed=325)
        s = random_relation(schema_s, 30, seed=326)
        config = PartitionJoinConfig(memory_pages=10, page_spec=PageSpec(512, 128))
        result = partitioned_time_join(r, s, config)
        assert result.schema.payload_attributes == (
            "r_emp",
            "r_project",
            "s_emp",
            "s_salary",
        )
