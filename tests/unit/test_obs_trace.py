"""Unit tests for the structured tracer (spans, lanes, exporters)."""

import json
import pickle
import threading

import pytest

from repro.obs.trace import Span, Tracer, open_span_leaks


def ticking_clock(step: int = 10):
    """A deterministic nanosecond clock advancing *step* per call."""
    state = {"now": 0}

    def clock() -> int:
        state["now"] += step
        return state["now"]

    return clock


class TestSpanLifecycle:
    def test_nesting_records_parent_and_lane(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # A child without an explicit lane inherits its parent's.
        assert outer.lane == "main"
        assert inner.lane == "main"
        assert tracer.open_spans == 0
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_explicit_lane_overrides_inherited(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("sweep"):
            with tracer.span("prefetch", lane="prefetch") as span:
                pass
        assert span.lane == "prefetch"

    def test_durations_are_monotonic(self):
        tracer = Tracer(clock=ticking_clock(step=5))
        with tracer.span("op") as span:
            assert span.duration_ns is None  # still open
        assert span.duration_ns == 5
        assert span.end_ns > span.start_ns

    def test_attributes_coerced_to_scalars(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("op", n=3, flag=True, none=None) as span:
            span.set(exotic=object(), ratio=0.5)
        assert span.attributes["n"] == 3
        assert span.attributes["flag"] is True
        assert span.attributes["none"] is None
        assert span.attributes["ratio"] == 0.5
        assert isinstance(span.attributes["exotic"], str)  # repr fallback

    def test_exception_closes_span_with_error_attr(self):
        tracer = Tracer(clock=ticking_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.open_spans == 0
        (span,) = tracer.finished
        assert "boom" in span.attributes["error"]

    def test_events_attach_to_current_span(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("op") as span:
            tracer.event("checkpoint", position=4)
        (name, at_ns, attrs) = span.events[0]
        assert name == "checkpoint"
        assert attrs == {"position": 4}
        assert at_ns > span.start_ns

    def test_orphan_events_counted_not_raised(self):
        tracer = Tracer(clock=ticking_clock())
        tracer.event("nowhere")
        assert tracer.orphan_events == 1
        assert tracer.finished == []

    def test_max_spans_retention_cap(self):
        tracer = Tracer(clock=ticking_clock(), max_spans=2)
        for number in range(5):
            with tracer.span(f"s{number}"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped_spans == 3
        assert tracer.open_spans == 0  # dropped spans are still closed

    def test_threads_nest_independently(self):
        tracer = Tracer(clock=ticking_clock())
        seen = {}

        def worker():
            with tracer.span("worker-op", lane="lane-1") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main-op"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span must not become a child of the main thread's.
        assert seen["parent"] is None
        assert tracer.open_spans == 0


class TestExporters:
    def make_traced(self) -> Tracer:
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("sweep", partitions=2):
            with tracer.span("probe", lane="probe"):
                tracer.event("match", rows=7)
        return tracer

    def test_export_jsonl_round_trips(self):
        tracer = self.make_traced()
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 2
        spans = [json.loads(line) for line in lines]
        by_name = {span["name"]: span for span in spans}
        assert by_name["probe"]["parent_id"] == by_name["sweep"]["span_id"]
        assert by_name["probe"]["events"][0]["attributes"] == {"rows": 7}

    def test_chrome_trace_shape(self):
        tracer = self.make_traced()
        trace = tracer.chrome_trace()
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"sweep", "probe"}
        # One tid lane per distinct span lane, each named via metadata.
        lanes = {e["args"]["name"] for e in metadata}
        assert lanes == {"main", "probe"}
        assert len({e["tid"] for e in complete}) == 2
        for event in complete:
            assert event["pid"] == 1
            assert event["dur"] >= 0
        # The whole thing must be JSON-serializable (the export contract).
        json.dumps(trace)

    def test_span_as_dict_matches_slots(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("op", k="v") as span:
            pass
        snapshot = span.as_dict()
        assert snapshot["name"] == "op"
        assert snapshot["attributes"] == {"k": "v"}
        assert snapshot["duration_ns"] == span.duration_ns


class TestLeakAccounting:
    def test_open_span_leaks_reports_and_clears(self):
        tracer = Tracer(clock=ticking_clock())
        context = tracer.span("leaky")
        span = context.__enter__()
        leaks = open_span_leaks()
        assert (tracer, 1) in leaks
        context.__exit__(None, None, None)
        assert span.end_ns is not None
        assert all(t is not tracer for t, _ in open_span_leaks())

    def test_pickle_drops_collected_state(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("op"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.finished == []
        assert clone.open_spans == 0
        with clone.span("fresh"):
            pass
        assert len(clone.finished) == 1


class TestSpanRepr:
    def test_repr_reflects_state(self):
        span = Span("op", 1, None, "main", 100, {})
        assert "open" in repr(span)
        span.end_ns = 150
        assert "50ns" in repr(span)
