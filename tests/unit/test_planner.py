"""Unit tests for determinePartIntervals (Appendix A.2)."""

import random

import pytest

from repro.core.planner import (
    candidate_part_sizes,
    determine_part_intervals,
    estimate_join_cost,
    estimate_pipelined_join_cost,
    recommend_sweep_workers,
)
from repro.model.errors import PlanError
from repro.model.vtuple import VTTuple
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import CostModel, IOStatistics
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from repro.time.lifespan import covers_lifespan, lifespan_of


def make_heap(tuples):
    disk = SimulatedDisk(IOStatistics())
    spec = PageSpec(page_bytes=1024, tuple_bytes=128)
    return HeapFile.bulk_load(disk, "r", spec, tuples), disk


def uniform_tuples(n, lifespan=10_000, seed=5, long_lived=0):
    rng = random.Random(seed)
    tuples = []
    for i in range(n):
        if i < long_lived:
            start = rng.randrange(lifespan // 2)
            valid = Interval(start, start + lifespan // 2)
        else:
            instant = rng.randrange(lifespan)
            valid = Interval(instant, instant)
        tuples.append(VTTuple((i % 37,), (i,), valid))
    rng.shuffle(tuples)
    return tuples


class TestCandidateGrid:
    def test_small_buffer_enumerates_all(self):
        assert candidate_part_sizes(10) == list(range(1, 10))

    def test_large_buffer_geometric(self):
        sizes = candidate_part_sizes(10_000, max_candidates=20)
        assert sizes[0] == 1
        assert sizes[-1] == 9_999
        assert len(sizes) <= 21
        assert sizes == sorted(set(sizes))

    def test_too_small_buffer(self):
        with pytest.raises(PlanError):
            candidate_part_sizes(1)


class TestEstimateJoinCost:
    def test_scan_component(self):
        model = CostModel.with_ratio(5)
        scan, cache = estimate_join_cost(100, 4, [0, 0, 0, 0], model)
        assert scan == 2 * (4 * 5 + 96 * 1)
        assert cache == 0

    def test_cache_component(self):
        model = CostModel.with_ratio(5)
        _, cache = estimate_join_cost(100, 2, [3, 0], model)
        assert cache == 2 * (5 + 2)  # one random + 2 sequential, written and read


class TestPipelinedCostModel:
    def test_zero_depth_degrades_to_serial_plus_cpu(self):
        # No read-ahead: nothing overlaps, every page is demand-paged.
        cost = estimate_pipelined_join_cost(
            100.0, 40.0, prefetch_depth=0, pages_per_partition=10
        )
        assert cost == 140.0

    def test_full_overlap_is_max_of_cpu_and_io(self):
        cost = estimate_pipelined_join_cost(
            100.0, 40.0, prefetch_depth=10, pages_per_partition=10
        )
        assert cost == 100.0  # I/O-bound: compute fully hidden
        cost = estimate_pipelined_join_cost(
            40.0, 100.0, prefetch_depth=10, pages_per_partition=10
        )
        assert cost == 100.0  # CPU-bound: I/O fully hidden

    def test_partial_overlap_interpolates(self):
        # alpha = 5/10: half the I/O overlaps the compute, half is demand.
        cost = estimate_pipelined_join_cost(
            100.0, 10.0, prefetch_depth=5, pages_per_partition=10
        )
        assert cost == max(10.0, 50.0) + 50.0

    def test_workers_divide_the_compute(self):
        cost = estimate_pipelined_join_cost(
            10.0, 80.0, prefetch_depth=10, pages_per_partition=10, workers=4
        )
        assert cost == 20.0
        # Never worse than the serial estimate, never better than the bound.
        serial = 10.0 + 80.0
        assert cost <= serial
        assert cost >= max(10.0, 80.0 / 4)

    def test_alpha_clamps_at_one(self):
        a = estimate_pipelined_join_cost(
            60.0, 0.0, prefetch_depth=50, pages_per_partition=10
        )
        b = estimate_pipelined_join_cost(
            60.0, 0.0, prefetch_depth=10, pages_per_partition=10
        )
        assert a == b == 60.0

    def test_empty_partition_means_no_overlap(self):
        cost = estimate_pipelined_join_cost(
            30.0, 5.0, prefetch_depth=8, pages_per_partition=0
        )
        assert cost == 35.0

    def test_bad_inputs_rejected(self):
        with pytest.raises(PlanError):
            estimate_pipelined_join_cost(
                -1.0, 0.0, prefetch_depth=1, pages_per_partition=1
            )
        with pytest.raises(PlanError):
            estimate_pipelined_join_cost(
                1.0, -1.0, prefetch_depth=1, pages_per_partition=1
            )
        with pytest.raises(PlanError):
            estimate_pipelined_join_cost(
                1.0, 1.0, prefetch_depth=-1, pages_per_partition=1
            )
        with pytest.raises(PlanError):
            estimate_pipelined_join_cost(
                1.0, 1.0, prefetch_depth=1, pages_per_partition=1, workers=0
            )


class TestRecommendSweepWorkers:
    def test_compute_free_join_needs_one_lane(self):
        assert recommend_sweep_workers(0.0, 100.0) == 1

    def test_io_free_join_takes_the_machine_limit(self, monkeypatch):
        import repro.exec.sweep_parallel as sweep

        monkeypatch.setattr(sweep.os, "cpu_count", lambda: 4)
        assert recommend_sweep_workers(10.0, 0.0) == 4

    def test_smallest_lane_count_that_hides_compute(self, monkeypatch):
        import repro.exec.sweep_parallel as sweep

        monkeypatch.setattr(sweep.os, "cpu_count", lambda: 8)
        # C_cpu/W <= C_io first at W = ceil(70/20) = 4.
        assert recommend_sweep_workers(70.0, 20.0, max_workers=8) == 4
        # Clamped by the machine / explicit ceiling.
        assert recommend_sweep_workers(900.0, 1.0, max_workers=2) == 2

    def test_bad_inputs_rejected(self):
        with pytest.raises(PlanError):
            recommend_sweep_workers(-1.0, 1.0)
        with pytest.raises(PlanError):
            recommend_sweep_workers(1.0, -1.0)


class TestDeterminePartIntervals:
    def test_empty_relation_rejected(self):
        heap, _ = make_heap([])
        with pytest.raises(PlanError):
            determine_part_intervals(
                16, heap, 100, CostModel(), random.Random(0)
            )

    def test_plan_covers_sampled_lifespan(self):
        tuples = uniform_tuples(800)
        heap, _ = make_heap(tuples)
        plan = determine_part_intervals(
            16, heap, 800, CostModel(), random.Random(0)
        )
        span = lifespan_of(tup.valid for tup in tuples)
        sampled_span = lifespan_of(i for i in plan.intervals)
        assert covers_lifespan(plan.intervals, sampled_span)
        assert span.contains(sampled_span)

    def test_chosen_candidate_minimizes_curve(self):
        heap, _ = make_heap(uniform_tuples(800))
        plan = determine_part_intervals(
            16, heap, 800, CostModel(), random.Random(1), prune=False
        )
        best = min(point.total for point in plan.curve)
        assert plan.chosen.total == best

    def test_sampling_charges_io(self):
        heap, disk = make_heap(uniform_tuples(800))
        determine_part_intervals(16, heap, 800, CostModel(), random.Random(0))
        assert disk.stats.total_ops > 0

    def test_prune_draws_no_more_than_full_sweep(self):
        heap_a, disk_a = make_heap(uniform_tuples(800))
        determine_part_intervals(16, heap_a, 800, CostModel(), random.Random(0))
        heap_b, disk_b = make_heap(uniform_tuples(800))
        determine_part_intervals(
            16, heap_b, 800, CostModel(), random.Random(0), prune=False
        )
        assert disk_a.stats.total_ops <= disk_b.stats.total_ops

    def test_kolmogorov_bound_respected(self):
        """Every candidate's sample requirement satisfies the paper formula."""
        heap, _ = make_heap(uniform_tuples(800))
        plan = determine_part_intervals(
            32, heap, 800, CostModel(), random.Random(2), prune=False
        )
        for point in plan.curve:
            assert point.n_samples >= (1.63 * heap.n_pages / point.error_size) ** 2 - 1

    def test_long_lived_data_produces_cache_estimates(self):
        heap, _ = make_heap(uniform_tuples(800, long_lived=200))
        plan = determine_part_intervals(
            16, heap, 800, CostModel(), random.Random(3)
        )
        assert any(pages > 0 for pages in plan.cache_pages) or plan.num_partitions == 1

    def test_deterministic_under_seed(self):
        heap_a, _ = make_heap(uniform_tuples(400))
        heap_b, _ = make_heap(uniform_tuples(400))
        plan_a = determine_part_intervals(16, heap_a, 400, CostModel(), random.Random(7))
        plan_b = determine_part_intervals(16, heap_b, 400, CostModel(), random.Random(7))
        assert plan_a.intervals == plan_b.intervals
        assert plan_a.part_size == plan_b.part_size
