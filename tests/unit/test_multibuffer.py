"""Unit tests for the joint multi-buffer allocation pass.

The contract: the pass sizes the zero-copy sweep's three auxiliary
consumers (prefetch window, column arena, lane slabs) with the classic
SimpleDB buffer-needs estimators, never touches the join's own page
budget, degrades along a fixed ladder under pressure, and round-trips
through the checkpointed arena descriptor so resume reallocates the
original shape.
"""

import pytest

from repro.core.planner import estimate_grant_pages
from repro.planner.multibuffer import (
    MIN_ARENA_PAGES,
    MIN_SLAB_ROWS,
    MultiBufferPlan,
    best_factor,
    best_root,
    plan_multibuffer,
)
from repro.storage.page import PageSpec

#: 8 tuples per page -- small enough for hand-checked geometry.
SPEC = PageSpec(page_bytes=256, tuple_bytes=32)


class TestEstimators:
    def test_best_root_picks_highest_fitting_root(self):
        # 1000 blocks, 40 buffers: sqrt chunking (32 blocks) fits, so the
        # square root wins over deeper roots.
        assert best_root(1000, 40) == 32
        # The whole output fits: one pass, chunk == size.
        assert best_root(30, 40) == 30
        # Cube root needed: sqrt(10**6) = 1000 > 50, cbrt = 100 > 50,
        # 4th root = 32 <= 50.
        assert best_root(10**6, 50) == 32

    def test_best_factor_picks_highest_fitting_division(self):
        # ceil(100/4) = 25 is the first division fitting 30 buffers.
        assert best_factor(100, 30) == 25
        assert best_factor(100, 100) == 100
        assert best_factor(100, 1) == 1

    @pytest.mark.parametrize("fn", [best_root, best_factor])
    def test_degenerate_inputs(self, fn):
        assert fn(0, 10) == 1
        assert fn(10, 0) == 1
        assert fn(1, 1) == 1

    @pytest.mark.parametrize("fn", [best_root, best_factor])
    def test_negative_inputs_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(-1, 10)
        with pytest.raises(ValueError):
            fn(10, -1)


class TestPlanGeometry:
    def plan(self, **overrides):
        settings = dict(
            outer_pages=100,
            inner_pages=100,
            buff_size=10,
            spec=SPEC,
            lanes=3,
            prefetch_depth=8,
        )
        settings.update(overrides)
        return plan_multibuffer(
            settings.pop("outer_pages"),
            settings.pop("inner_pages"),
            settings.pop("buff_size"),
            settings.pop("spec"),
            **settings,
        )

    def test_unconstrained_geometry_by_hand(self):
        plan = self.plan()
        assert plan.join_pages == 10  # read, never altered
        # Partition run = 10 outer + 10 inner pages; the requested depth 8
        # already tiles it.
        assert plan.prefetch_depth == plan.prefetch_pages == 8
        # Arena: 4 int64 columns of an 80-row block + 3 lanes x 8-row page
        # columns = 32 * 104 bytes = 13 pages.
        assert plan.arena_pages == 13
        assert plan.arena_bytes == 13 * SPEC.page_bytes
        # Worst-case pairs 8 * 80 = 640; best_root caps rows at one block
        # (80), so sqrt chunking gives 26 -- floored at MIN_SLAB_ROWS.
        assert plan.slab_rows == MIN_SLAB_ROWS
        assert plan.total_aux_pages == (
            plan.prefetch_pages + plan.arena_pages + plan.slab_pages
        )

    def test_lanes_floor_and_scaling(self):
        assert self.plan(lanes=0).lanes == 1
        # More lanes push more page columns into the arena.
        assert self.plan(lanes=8).arena_pages > self.plan(lanes=1).arena_pages

    def test_prefetch_capped_by_partition_run(self):
        # One partition covering everything: run = 3 + 5 pages; a requested
        # depth of 64 is clamped to the run the factor rule tiles.
        plan = self.plan(outer_pages=3, inner_pages=5, buff_size=10, prefetch_depth=64)
        assert plan.prefetch_depth <= 8

    def test_aux_budget_squeezes_arena(self):
        roomy = self.plan()
        tight = self.plan(aux_pages=20)
        assert tight.arena_pages < roomy.arena_pages
        assert tight.arena_pages >= MIN_ARENA_PAGES

    def test_validation(self):
        with pytest.raises(ValueError):
            self.plan(buff_size=0)
        with pytest.raises(ValueError):
            self.plan(outer_pages=-1)


class TestShrinkLadder:
    def plan(self):
        return plan_multibuffer(100, 100, 10, SPEC, lanes=3, prefetch_depth=8)

    def test_no_op_when_it_fits(self):
        plan = self.plan()
        assert plan.shrink_to(plan.total_aux_pages, SPEC) is plan
        assert plan.shrink_to(plan.total_aux_pages + 5, SPEC) is plan

    def test_slabs_lose_first_then_arena_then_prefetch(self):
        plan = self.plan()
        # Room for prefetch + arena only: slabs take the (zero) remainder.
        squeezed = plan.shrink_to(plan.prefetch_pages + plan.arena_pages, SPEC)
        assert squeezed.prefetch_pages == plan.prefetch_pages
        assert squeezed.arena_pages == plan.arena_pages
        assert squeezed.slab_pages == 0
        # Less than prefetch + arena: the arena shrinks next.
        tighter = plan.shrink_to(plan.prefetch_pages + 3, SPEC)
        assert tighter.prefetch_pages == plan.prefetch_pages
        assert tighter.arena_pages == 3
        # Less than the prefetch window alone: the depth itself drops.
        starved = plan.shrink_to(2, SPEC)
        assert starved.prefetch_pages == 2
        assert starved.prefetch_depth == 2
        assert starved.arena_pages == 0

    def test_shrink_never_increases_total(self):
        plan = self.plan()
        for avail in range(0, plan.total_aux_pages + 1, 7):
            shrunk = plan.shrink_to(avail, SPEC)
            # The slab-row floor can keep nominal slab pages above zero, but
            # prefetch + arena always respect the budget.
            assert shrunk.prefetch_pages + shrunk.arena_pages <= max(0, avail)
            assert shrunk.join_pages == plan.join_pages


class TestDescriptorRoundTrip:
    def test_resume_reconstructs_the_same_accounting(self):
        plan = plan_multibuffer(100, 100, 10, SPEC, lanes=3, prefetch_depth=8)
        descriptor = plan.arena_geometry()
        resumed = MultiBufferPlan.from_descriptor(
            descriptor, prefetch_depth=plan.prefetch_depth, buff_size=10, spec=SPEC
        )
        assert resumed.arena_bytes == plan.arena_bytes
        assert resumed.arena_pages == plan.arena_pages
        assert resumed.slab_rows == plan.slab_rows
        assert resumed.slab_pages == plan.slab_pages
        assert resumed.lanes == plan.lanes
        assert resumed.total_aux_pages == plan.total_aux_pages

    def test_degraded_plan_round_trips_too(self):
        plan = plan_multibuffer(100, 100, 10, SPEC, lanes=3, prefetch_depth=8)
        shrunk = plan.shrink_to(15, SPEC)
        resumed = MultiBufferPlan.from_descriptor(
            shrunk.arena_geometry(),
            prefetch_depth=shrunk.prefetch_depth,
            buff_size=10,
            spec=SPEC,
        )
        assert resumed.arena_bytes == shrunk.arena_bytes
        assert resumed.lanes == shrunk.lanes


class TestAdmissionInteraction:
    """``estimate_grant_pages`` must cover the aux pages for zero-copy only."""

    def test_zero_copy_grant_covers_aux_pages(self):
        base = estimate_grant_pages(100, 100, 200)
        zero_copy = estimate_grant_pages(
            100, 100, 200, execution="zero-copy-sweep", spec=SPEC, lanes=2
        )
        assert zero_copy > base
        # Never more than asked for.
        assert zero_copy <= 200

    def test_other_modes_unchanged(self):
        base = estimate_grant_pages(100, 100, 200)
        for execution in ("tuple", "batch", "batch-parallel", "batch-parallel-sweep"):
            assert estimate_grant_pages(100, 100, 200, execution=execution) == base
