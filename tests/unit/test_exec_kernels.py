"""Unit tests for the batch join kernels (both backends).

Every test runs against the pure-Python kernels and, when numpy is
importable, the vectorized kernels -- asserting not just the same match
*sets* but the same emission *order*, because the sweep's bit-identical
I/O guarantee rests on it.
"""

import pytest

from repro.core.intervals import PartitionMap
from repro.exec.backend import HAVE_NUMPY
from repro.exec.kernels import PythonKernels, get_kernels
from repro.exec.parallel import locate_partitions_parallel
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def kernels(request):
    return get_kernels(request.param)


def vt(key, start, end, tag="x"):
    return VTTuple((key,), (tag,), Interval(start, end))


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])


def brute_force_matches(block, page, pmap, part_index, direction):
    """The tuple-at-a-time probe loop, spelled out as the oracle."""
    index = {}
    for tup in block:
        index.setdefault(tup.key, []).append(tup)
    matches = []
    for inner in page:
        for outer in index.get(inner.key, ()):
            common = outer.valid.intersect(inner.valid)
            if common is None:
                continue
            if pmap is not None:
                owner = common.end if direction == "backward" else common.start
                if pmap.index_of_chronon(owner) != part_index:
                    continue
            matches.append((outer, inner, common))
    return matches


class TestProbe:
    def test_matches_brute_force_with_owner_filter(self, kernels, pmap):
        block = [vt("a", 0, 29), vt("a", 5, 12), vt("b", 8, 8), vt("a", 15, 25)]
        page = [vt("a", 3, 18), vt("b", 8, 20), vt("c", 0, 29), vt("a", 11, 11)]
        interner = kernels.make_interner()
        index = kernels.build_probe_index(block, interner)
        boundaries = kernels.prepare_boundaries(pmap)
        for direction in ("backward", "forward"):
            for part in range(len(pmap)):
                got = kernels.probe(
                    index, kernels.page_batch(page, interner), boundaries, part, direction
                )
                assert got == brute_force_matches(block, page, pmap, part, direction)

    def test_every_valid_pair_emitted_in_exactly_one_partition(self, kernels, pmap):
        block = [vt("a", 0, 29), vt("a", 7, 23)]
        page = [vt("a", 2, 27), vt("a", 14, 14)]
        interner = kernels.make_interner()
        index = kernels.build_probe_index(block, interner)
        boundaries = kernels.prepare_boundaries(pmap)
        batch = kernels.page_batch(page, interner)
        all_matches = []
        for part in range(len(pmap)):
            all_matches.extend(kernels.probe(index, batch, boundaries, part))
        unfiltered = kernels.probe(index, batch)
        assert len(all_matches) == len(unfiltered) == 4

    def test_probe_without_boundaries_skips_owner_filter(self, kernels):
        block = [vt("a", 0, 5)]
        page = [vt("a", 3, 9)]
        interner = kernels.make_interner()
        index = kernels.build_probe_index(block, interner)
        got = kernels.probe(index, kernels.page_batch(page, interner))
        assert got == [(block[0], page[0], Interval(3, 5))]

    def test_unknown_keys_never_match(self, kernels):
        block = [vt("a", 0, 9)]
        interner = kernels.make_interner()
        index = kernels.build_probe_index(block, interner)
        page = [vt("zz", 0, 9)]
        assert kernels.probe(index, kernels.page_batch(page, interner)) == []

    def test_emission_order_is_inner_then_insertion(self, kernels):
        block = [vt("a", 0, 9, "o0"), vt("b", 0, 9, "o1"), vt("a", 0, 9, "o2")]
        page = [vt("b", 0, 9, "i0"), vt("a", 0, 9, "i1")]
        interner = kernels.make_interner()
        index = kernels.build_probe_index(block, interner)
        got = kernels.probe(index, kernels.page_batch(page, interner))
        labels = [(outer.payload[0], inner.payload[0]) for outer, inner, _ in got]
        assert labels == [("o1", "i0"), ("o0", "i1"), ("o2", "i1")]

    def test_empty_block_and_empty_page(self, kernels, pmap):
        interner = kernels.make_interner()
        boundaries = kernels.prepare_boundaries(pmap)
        empty_index = kernels.build_probe_index([], interner)
        assert kernels.probe(empty_index, kernels.page_batch([vt("a", 0, 5)], interner), boundaries, 0) == []
        index = kernels.build_probe_index([vt("a", 0, 5)], interner)
        assert kernels.probe(index, kernels.page_batch([], interner), boundaries, 0) == []

    def test_interner_growth_across_blocks(self, kernels, pmap):
        """Keys interned by an earlier block must not confuse a later index."""
        interner = kernels.make_interner()
        boundaries = kernels.prepare_boundaries(pmap)
        kernels.build_probe_index([vt("early", 0, 9)], interner)
        index = kernels.build_probe_index([vt("late", 0, 9)], interner)
        page = [vt("early", 0, 9), vt("late", 3, 7)]
        got = kernels.probe(index, kernels.page_batch(page, interner), boundaries, 0)
        assert [(o.key, i.key) for o, i, _ in got] == [(("late",), ("late",))]


class TestMigrationAndLocate:
    def test_migration_rows_match_partition_map(self, kernels, pmap):
        page = [
            vt("a", 0, 29), vt("a", 12, 13), vt("b", 25, 29),
            vt("c", 0, 3), vt("d", 100, 200),  # beyond lifespan: clamped
        ]
        boundaries = kernels.prepare_boundaries(pmap)
        batch = kernels.page_batch(page)
        for next_index in range(len(pmap)):
            expect = [
                row for row, tup in enumerate(page)
                if pmap.overlaps_partition(tup.valid, next_index)
            ]
            assert kernels.migration_rows(batch, boundaries, next_index) == expect

    def test_locate_matches_index_of_chronon(self, kernels, pmap):
        chronons = [-50, 0, 9, 10, 19, 20, 29, 30, 1000]
        boundaries = kernels.prepare_boundaries(pmap)
        assert kernels.locate(chronons, boundaries) == [
            pmap.index_of_chronon(c) for c in chronons
        ]

    def test_locate_empty(self, kernels, pmap):
        assert kernels.locate([], kernels.prepare_boundaries(pmap)) == []


class TestParallelLocate:
    def test_matches_serial_for_both_placements(self, pmap):
        spans = [(i % 37, (i % 37) + (i % 11)) for i in range(5000)]
        ends = [interval.end for interval in pmap.intervals]
        serial = PythonKernels()
        for placement, chronon in (("last", 1), ("first", 0)):
            expect = [
                pmap.index_of_chronon(span[chronon])
                for span in spans
            ]
            got = locate_partitions_parallel(spans, ends, placement, workers=2)
            in_process = locate_partitions_parallel(
                spans, ends, placement, workers=1, kernels=serial
            )
            assert got == expect == in_process

    def test_rejects_bad_placement(self, pmap):
        with pytest.raises(ValueError):
            locate_partitions_parallel([], [9], "middle")


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestBackendParity:
    def test_numpy_and_python_agree_on_random_input(self, pmap):
        import random

        rng = random.Random(42)
        block = [vt(f"k{rng.randrange(6)}", *sorted((rng.randrange(35), rng.randrange(35)))) for _ in range(80)]
        page = [vt(f"k{rng.randrange(8)}", *sorted((rng.randrange(35), rng.randrange(35)))) for _ in range(40)]
        results = {}
        for backend in BACKENDS:
            kern = get_kernels(backend)
            interner = kern.make_interner()
            index = kern.build_probe_index(block, interner)
            boundaries = kern.prepare_boundaries(pmap)
            batch = kern.page_batch(page, interner)
            results[backend] = (
                [kern.probe(index, batch, boundaries, part) for part in range(len(pmap))],
                [kern.migration_rows(batch, boundaries, part) for part in range(len(pmap))],
            )
        assert results["numpy"] == results["python"]
