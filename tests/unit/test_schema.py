"""Unit tests for relation schemas."""

import pytest

from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema


class TestConstruction:
    def test_minimal(self):
        schema = RelationSchema("r", join_attributes=("a",))
        assert schema.attributes == ("a",)
        assert schema.payload_attributes == ()

    def test_requires_name(self):
        with pytest.raises(SchemaError):
            RelationSchema("", join_attributes=("a",))

    def test_requires_join_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", join_attributes=())

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("r", join_attributes=("a",), payload_attributes=("a",))

    def test_rejects_reserved_names(self):
        with pytest.raises(SchemaError, match="valid-time"):
            RelationSchema("r", join_attributes=("Vs",))

    def test_rejects_empty_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", join_attributes=("",))

    def test_rejects_nonpositive_tuple_size(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", join_attributes=("a",), tuple_bytes=0)


class TestJoinCompatibility:
    def test_compatible(self):
        r = RelationSchema("r", ("a",), ("b",))
        s = RelationSchema("s", ("a",), ("c",))
        r.joins_with(s)  # no exception

    def test_mismatched_join_attributes(self):
        r = RelationSchema("r", ("a",))
        s = RelationSchema("s", ("x",))
        with pytest.raises(SchemaError, match="join attributes differ"):
            r.joins_with(s)

    def test_overlapping_payload(self):
        r = RelationSchema("r", ("a",), ("b",))
        s = RelationSchema("s", ("a",), ("b",))
        with pytest.raises(SchemaError, match="appear in both"):
            r.joins_with(s)

    def test_result_schema(self):
        r = RelationSchema("r", ("a",), ("b",), tuple_bytes=100)
        s = RelationSchema("s", ("a",), ("c",), tuple_bytes=50)
        result = r.join_result_schema(s)
        assert result.join_attributes == ("a",)
        assert result.payload_attributes == ("b", "c")
        assert result.tuple_bytes == 150


class TestProject:
    def test_keeps_join_attributes(self):
        schema = RelationSchema("r", ("a",), ("b", "c"))
        projected = schema.project("p", ("b",))
        assert projected.join_attributes == ("a",)
        assert projected.payload_attributes == ("b",)

    def test_unknown_attribute(self):
        schema = RelationSchema("r", ("a",), ("b",))
        with pytest.raises(SchemaError, match="unknown"):
            schema.project("p", ("zzz",))

    def test_projecting_join_attribute_is_noop_payload(self):
        schema = RelationSchema("r", ("a",), ("b",))
        projected = schema.project("p", ("a",))
        assert projected.payload_attributes == ()
