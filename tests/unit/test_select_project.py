"""Unit tests for temporal selection and projection."""

import pytest

from repro.algebra.select_project import project, select, select_temporal
from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from repro.time.interval import Interval
from tests.conftest import make_relation


SCHEMA = RelationSchema("r", ("k",), ("a", "b"))


@pytest.fixture
def relation():
    return make_relation(
        SCHEMA,
        [
            ("x", "a1", "b1", 0, 9),
            ("y", "a2", "b2", 5, 14),
            ("z", "a3", "b3", 20, 29),
        ],
    )


class TestSelect:
    def test_predicate_filtering(self, relation):
        out = select(relation, lambda t: t.key == ("y",))
        assert len(out) == 1
        assert out.tuples[0].payload == ("a2", "b2")

    def test_timestamps_unchanged(self, relation):
        out = select(relation, lambda t: True)
        assert out.multiset_equal(relation)


class TestSelectTemporal:
    def test_clips_to_window(self, relation):
        out = select_temporal(relation, Interval(7, 22))
        stamps = {t.key[0]: (t.valid.start, t.valid.end) for t in out}
        assert stamps == {"x": (7, 9), "y": (7, 14), "z": (20, 22)}

    def test_drops_outside_window(self, relation):
        out = select_temporal(relation, Interval(15, 19))
        assert len(out) == 0

    def test_whole_window_is_identity(self, relation):
        out = select_temporal(relation, Interval(0, 29))
        assert out.multiset_equal(relation)


class TestProject:
    def test_keeps_selected_payload(self, relation):
        out = project(relation, ("b",))
        assert out.schema.payload_attributes == ("b",)
        assert out.tuples[0].payload == ("b1",)

    def test_join_attributes_always_kept(self, relation):
        out = project(relation, ())
        assert out.schema.join_attributes == ("k",)
        assert out.schema.payload_attributes == ()

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(SchemaError):
            project(relation, ("missing",))

    def test_timestamps_preserved(self, relation):
        out = project(relation, ("a",))
        assert [t.valid for t in out] == [t.valid for t in relation]

    def test_custom_name(self, relation):
        out = project(relation, ("a",), name="narrow")
        assert out.schema.name == "narrow"
