"""Unit tests for disk-resident incremental view maintenance."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.intervals import PartitionMap
from repro.incremental.paged_view import PagedMaterializedJoin
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


def vt(key, payload, start, end):
    return VTTuple((key,), (payload,), Interval(start, end))


@pytest.fixture
def pmap():
    return PartitionMap(
        [Interval(0, 24), Interval(25, 49), Interval(50, 74), Interval(75, 99)]
    )


@pytest.fixture
def base():
    r = ValidTimeRelation(
        SCHEMA_R,
        [vt("x", f"a{i}", (i * 7) % 95, min(99, (i * 7) % 95 + i % 12)) for i in range(40)],
    )
    s = ValidTimeRelation(
        SCHEMA_S,
        [vt("x", f"b{i}", (i * 11) % 95, min(99, (i * 11) % 95 + i % 9)) for i in range(40)],
    )
    return r, s


@pytest.fixture
def view(base, pmap):
    r, s = base
    return PagedMaterializedJoin(
        r, s, pmap, DiskLayout(spec=PageSpec(page_bytes=512, tuple_bytes=128))
    )


class TestBuild:
    def test_initial_view_matches_reference(self, view, base):
        r, s = base
        assert view.snapshot().multiset_equal(reference_join(r, s))

    def test_build_io_is_charged(self, view):
        assert view.layout.tracker.phases["build"].total_ops > 0


class TestUpdates:
    def test_insert_r_updates_view(self, view, base):
        r, s = base
        new = vt("x", "fresh", 30, 44)
        cost = view.insert_r(new)
        r.add(new)
        assert view.snapshot().multiset_equal(reference_join(r, s))
        assert cost.partitions_recomputed == 1  # interval within one partition
        assert cost.io_ops > 0

    def test_long_lived_insert_touches_more_partitions(self, view, base):
        r, s = base
        narrow = view.insert_s(vt("x", "narrow", 10, 12))
        wide = view.insert_s(vt("x", "wide", 5, 90))
        assert narrow.partitions_recomputed == 1
        assert wide.partitions_recomputed == 4

    def test_delete_updates_view(self, view, base):
        r, s = base
        victim = r.tuples[7]
        view.delete_r(victim)
        remaining = ValidTimeRelation(
            SCHEMA_R, [t for i, t in enumerate(r.tuples) if i != 7]
        )
        assert view.snapshot().multiset_equal(reference_join(remaining, s))

    def test_delete_missing_raises(self, view):
        with pytest.raises(KeyError):
            view.delete_r(vt("x", "ghost", 0, 1))

    def test_insert_and_delete_s_side(self, view, base):
        r, s = base
        fresh = vt("x", "s_new", 40, 80)
        view.insert_s(fresh)
        extended = ValidTimeRelation(SCHEMA_S, list(s.tuples) + [fresh])
        assert view.snapshot().multiset_equal(reference_join(r, extended))
        view.delete_s(fresh)
        assert view.snapshot().multiset_equal(reference_join(r, s))

    def test_mixed_sequence_stays_consistent(self, view, base):
        r, s = base
        live_r = list(r.tuples)
        for i in range(12):
            if i % 3 == 2 and live_r:
                victim = live_r.pop(i % len(live_r))
                view.delete_r(victim)
            else:
                fresh = vt("x", f"n{i}", (i * 13) % 90, min(99, (i * 13) % 90 + 8))
                view.insert_r(fresh)
                live_r.append(fresh)
        expected = reference_join(ValidTimeRelation(SCHEMA_R, live_r), s)
        assert view.snapshot().multiset_equal(expected)


class TestCostLocality:
    def test_incremental_cheaper_than_full_recompute(self, view):
        yardstick = view.full_recompute_cost()
        cost = view.insert_r(vt("x", "probe", 60, 63))
        assert cost.io_ops < yardstick

    def test_full_recompute_probe_does_not_pollute_costs(self, view):
        before = view.layout.tracker.stats.copy()
        view.full_recompute_cost()
        after = view.layout.tracker.stats
        assert after.total_ops == before.total_ops
