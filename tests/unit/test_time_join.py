"""Unit tests for the T-join and TE-join variants."""

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.variants.time_join import te_join, time_join
from tests.conftest import make_relation, random_relation


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


class TestTimeJoin:
    def test_pairs_on_overlap_regardless_of_key(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 5)])
        s = make_relation(SCHEMA_S, [("y", "b1", 3, 9)])
        result = time_join(r, s)
        assert len(result) == 1
        tup = result.tuples[0]
        assert tup.valid.start == 3 and tup.valid.end == 5
        assert tup.payload == ("x", "a1", "y", "b1")

    def test_disjoint_intervals_do_not_pair(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 2)])
        s = make_relation(SCHEMA_S, [("y", "b1", 3, 9)])
        assert len(time_join(r, s)) == 0

    def test_matches_quadratic_specification(self):
        r = random_relation(SCHEMA_R, 40, seed=81, n_keys=4, lifespan=60)
        s = random_relation(SCHEMA_S, 40, seed=82, n_keys=4, lifespan=60)
        expected = sum(
            1 for x in r for y in s if x.valid.overlaps(y.valid)
        )
        assert len(time_join(r, s)) == expected

    def test_empty_operand(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 2)])
        s = ValidTimeRelation(SCHEMA_S)
        assert len(time_join(r, s)) == 0


class TestTEJoin:
    def test_alias_of_valid_time_natural_join(self):
        from repro.baselines.reference import reference_join

        r = random_relation(SCHEMA_R, 30, seed=83, n_keys=4)
        s = random_relation(SCHEMA_S, 30, seed=84, n_keys=4)
        assert te_join(r, s).multiset_equal(reference_join(r, s))
