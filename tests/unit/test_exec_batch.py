"""Unit tests for columnar batches, column helpers, and columnar serialization."""

import pytest

from repro.exec.backend import HAVE_NUMPY
from repro.exec.batch import (
    KeyInterner,
    PageBatch,
    iter_page_batches,
    tuples_from_columns,
    tuples_to_columns,
)
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.serialize import load_columnar, save_columnar
from repro.time.interval import Interval

SCHEMA = RelationSchema("r", ("k",), ("val",))


def vt(key, start, end, tag="x"):
    return VTTuple((key,), (tag,), Interval(start, end))


class TestKeyInterner:
    def test_intern_assigns_dense_ids(self):
        interner = KeyInterner()
        assert interner.intern(("a",)) == 0
        assert interner.intern(("b",)) == 1
        assert interner.intern(("a",)) == 0
        assert len(interner) == 2

    def test_lookup_does_not_assign(self):
        interner = KeyInterner()
        assert interner.lookup(("missing",)) == -1
        assert len(interner) == 0


class TestPageBatch:
    def test_columns_match_tuples(self):
        page = [vt("a", 1, 5), vt("b", 2, 9), vt("a", 7, 7)]
        interner = KeyInterner()
        batch = PageBatch.from_tuples(page, interner, intern=True, use_numpy=False)
        assert len(batch) == 3
        assert list(batch.starts) == [1, 2, 7]
        assert list(batch.ends) == [5, 9, 7]
        assert list(batch.key_ids) == [0, 1, 0]
        assert batch.tuples == page

    def test_lookup_mode_maps_unknown_to_minus_one(self):
        interner = KeyInterner()
        interner.intern(("a",))
        batch = PageBatch.from_tuples(
            [vt("a", 0, 1), vt("z", 0, 1)], interner, use_numpy=False
        )
        assert list(batch.key_ids) == [0, -1]

    def test_without_interner_key_column_absent(self):
        batch = PageBatch.from_tuples([vt("a", 0, 1)], use_numpy=False)
        assert batch.key_ids is None

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_columns(self):
        import numpy as np

        interner = KeyInterner()
        batch = PageBatch.from_tuples(
            [vt("a", 3, 4)], interner, intern=True, use_numpy=True
        )
        assert isinstance(batch.starts, np.ndarray)
        assert batch.starts.dtype == np.int64
        assert batch.key_ids.tolist() == [0]

    def test_iter_page_batches_preserves_pages(self):
        pages = [[vt("a", 0, 1)], [vt("b", 2, 3), vt("c", 4, 5)]]
        batches = list(iter_page_batches(pages, use_numpy=False))
        assert [len(b) for b in batches] == [1, 2]
        assert batches[1].tuples == pages[1]


class TestColumns:
    def test_tuple_columns_round_trip(self):
        tuples = [vt("a", 1, 2, "p"), vt("b", 3, 9, "q")]
        assert tuples_from_columns(*tuples_to_columns(tuples)) == tuples

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            tuples_from_columns([("a",)], [], [1], [2])

    def test_relation_columns_round_trip(self):
        relation = ValidTimeRelation(SCHEMA, [vt("a", 0, 4), vt("a", 2, 2)])
        rebuilt = ValidTimeRelation.from_columns(SCHEMA, *relation.to_columns())
        assert rebuilt.multiset_equal(relation)
        assert rebuilt.tuples == relation.tuples


class TestColumnarSerialization:
    def test_round_trip(self, tmp_path):
        relation = ValidTimeRelation(
            SCHEMA, [vt("a", 0, 4, "p0"), vt("b", 2, 2, "p1"), vt("a", 9, 12, "p2")]
        )
        path = tmp_path / "rel.columnar.json"
        assert save_columnar(relation, path) == 3
        loaded = load_columnar(path)
        assert loaded.schema == relation.schema
        assert loaded.tuples == relation.tuples

    def test_empty_relation(self, tmp_path):
        path = tmp_path / "empty.columnar.json"
        save_columnar(ValidTimeRelation(SCHEMA), path)
        assert len(load_columnar(path)) == 0
