"""Central validation of :class:`PartitionJoinConfig` and the plan invariants.

Every knob fails at construction with a clear message, so a bad
configuration never surfaces as a confusing error deep inside a phase.
"""

import dataclasses

import pytest

from repro.core.partition_join import PartitionJoinConfig
from repro.core.planner import PartitionPlan
from repro.model.errors import BufferOverflowError, PlanError
from repro.resilience.degrade import BufferReduction
from repro.time.interval import Interval


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = PartitionJoinConfig(memory_pages=16)
        assert config.buff_size == 13
        assert config.checkpoint_interval == 0
        assert config.retry_limit is None
        assert config.degraded_fallback

    def test_memory_floor(self):
        with pytest.raises(BufferOverflowError, match=">= 4 buffer pages"):
            PartitionJoinConfig(memory_pages=3)

    def test_cache_reservation_must_leave_outer_space(self):
        with pytest.raises(PlanError, match="leaves no"):
            PartitionJoinConfig(memory_pages=8, cache_buffer_pages=5)
        with pytest.raises(ValueError, match="non-negative"):
            PartitionJoinConfig(memory_pages=8, cache_buffer_pages=-1)

    def test_buff_size_accounts_for_cache_reservation(self):
        config = PartitionJoinConfig(memory_pages=10, cache_buffer_pages=2)
        assert config.buff_size == 5

    def test_execution_mode_validated(self):
        with pytest.raises(ValueError, match="execution must be"):
            PartitionJoinConfig(memory_pages=8, execution="vectorized")

    def test_parallel_workers_validated(self):
        with pytest.raises(ValueError, match="parallel_workers"):
            PartitionJoinConfig(memory_pages=8, parallel_workers=0)

    def test_checkpoint_interval_validated(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            PartitionJoinConfig(memory_pages=8, checkpoint_interval=-1)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            PartitionJoinConfig(memory_pages=8, checkpoint_interval=1.5)
        PartitionJoinConfig(memory_pages=8, checkpoint_interval=0)
        PartitionJoinConfig(memory_pages=8, checkpoint_interval=1)

    def test_retry_limit_validated(self):
        with pytest.raises(ValueError, match="retry_limit"):
            PartitionJoinConfig(memory_pages=8, retry_limit=-2)
        PartitionJoinConfig(memory_pages=8, retry_limit=0)
        PartitionJoinConfig(memory_pages=8, retry_limit=None)

    def test_buffer_reductions_validated(self):
        with pytest.raises(ValueError, match="BufferReduction"):
            PartitionJoinConfig(memory_pages=8, buffer_reductions=((2, 1),))
        PartitionJoinConfig(
            memory_pages=8,
            buffer_reductions=(BufferReduction(at_position=2, buff_size=1),),
        )


class TestBufferReductionValidation:
    def test_fields_validated(self):
        with pytest.raises(ValueError):
            BufferReduction(at_position=-1, buff_size=1)
        with pytest.raises(ValueError):
            BufferReduction(at_position=0, buff_size=0)


class TestPlanValidation:
    def make_plan(self, **overrides):
        settings = dict(
            intervals=[Interval(0, 10), Interval(10, 20)],
            part_size=2,
            buff_size=4,
            chosen=None,
        )
        settings.update(overrides)
        return PartitionPlan(**settings)

    def test_valid_plan(self):
        plan = self.make_plan()
        assert plan.num_partitions == 2

    def test_part_size_floor(self):
        with pytest.raises(PlanError, match="part_size"):
            self.make_plan(part_size=0)

    def test_buffer_must_hold_a_partition(self):
        with pytest.raises(PlanError, match="buff_size"):
            self.make_plan(part_size=5, buff_size=4)
        # Equality is legal: a partition exactly filling the buffer.
        self.make_plan(part_size=4, buff_size=4)

    def test_intervals_required(self):
        with pytest.raises(PlanError, match="interval"):
            self.make_plan(intervals=[])


class TestConfigFrozen:
    """The config is frozen and hashable: it keys the service-layer caches."""

    def test_mutation_raises(self):
        config = PartitionJoinConfig(memory_pages=16)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.memory_pages = 32

    def test_new_field_assignment_raises(self):
        config = PartitionJoinConfig(memory_pages=16)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.surprise = True

    def test_hashable_and_equal_by_value(self):
        a = PartitionJoinConfig(memory_pages=16, execution="batch")
        b = PartitionJoinConfig(memory_pages=16, execution="batch")
        c = PartitionJoinConfig(memory_pages=32, execution="batch")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_usable_as_dict_key(self):
        cache = {PartitionJoinConfig(memory_pages=16): "plan"}
        assert cache[PartitionJoinConfig(memory_pages=16)] == "plan"

    def test_replace_produces_new_frozen_config(self):
        config = PartitionJoinConfig(memory_pages=16)
        smaller = dataclasses.replace(config, memory_pages=8)
        assert smaller.memory_pages == 8 and config.memory_pages == 16
        with pytest.raises(dataclasses.FrozenInstanceError):
            smaller.memory_pages = 4
