"""Unit tests for partition-based evaluation of predicate join variants."""

import pytest

from repro.core.partition_join import PartitionJoinConfig
from repro.storage.page import PageSpec
from repro.time.allen import AllenRelation
from repro.variants.allen_joins import (
    CONTAIN_RELATIONS,
    INTERSECTING_RELATIONS,
    OVERLAP_RELATIONS,
    contain_join,
    intersect_join,
    overlap_join,
)
from repro.variants.partitioned import partitioned_predicate_join
from tests.conftest import random_relation


@pytest.fixture
def config():
    return PartitionJoinConfig(
        memory_pages=10, page_spec=PageSpec(page_bytes=1024, tuple_bytes=128)
    )


@pytest.fixture
def inputs(schema_r, schema_s):
    r = random_relation(schema_r, 400, seed=101, payload_tag="p")
    s = random_relation(schema_s, 400, seed=102, payload_tag="q")
    return r, s


class TestPartitionedPredicateJoins:
    def test_intersect_join_matches_in_memory_variant(self, inputs, config):
        r, s = inputs
        run = partitioned_predicate_join(r, s, config, INTERSECTING_RELATIONS)
        assert run.result.multiset_equal(intersect_join(r, s))

    def test_overlap_join_matches_in_memory_variant(self, inputs, config):
        r, s = inputs
        run = partitioned_predicate_join(r, s, config, OVERLAP_RELATIONS)
        assert run.result.multiset_equal(overlap_join(r, s))

    def test_contain_join_matches_in_memory_variant(self, inputs, config):
        r, s = inputs
        run = partitioned_predicate_join(
            r, s, config, CONTAIN_RELATIONS, timestamp="right"
        )
        assert run.result.multiset_equal(contain_join(r, s))

    def test_non_intersecting_predicate_rejected(self, inputs, config):
        r, s = inputs
        with pytest.raises(ValueError, match="intersection-implying"):
            partitioned_predicate_join(r, s, config, {AllenRelation.BEFORE})

    def test_unknown_timestamp_rejected(self, inputs, config):
        r, s = inputs
        with pytest.raises(ValueError, match="policy"):
            partitioned_predicate_join(
                r, s, config, OVERLAP_RELATIONS, timestamp="nope"
            )

    def test_costs_are_tracked(self, inputs, config):
        r, s = inputs
        run = partitioned_predicate_join(r, s, config, INTERSECTING_RELATIONS)
        assert run.layout.tracker.stats.total_ops > 0
