"""Unit tests for the sort-merge valid-time join with backing-up."""

import pytest

from repro.baselines.reference import reference_join
from repro.baselines.sort_merge import sort_merge_join
from repro.model.errors import PlanError
from repro.storage.page import PageSpec
from tests.conftest import random_relation


SPEC = PageSpec(page_bytes=1024, tuple_bytes=128)


class TestCorrectness:
    @pytest.mark.parametrize("memory", [4, 8, 32, 256])
    def test_equals_reference_across_memory_sizes(
        self, schema_r, schema_s, memory
    ):
        r = random_relation(schema_r, 300, seed=51, payload_tag="p")
        s = random_relation(schema_s, 300, seed=52, payload_tag="q")
        run = sort_merge_join(r, s, memory, page_spec=SPEC)
        assert run.result.multiset_equal(reference_join(r, s))

    def test_long_lived_heavy_workload(self, schema_r, schema_s):
        r = random_relation(schema_r, 240, seed=53, long_lived_fraction=0.7)
        s = random_relation(schema_s, 240, seed=54, long_lived_fraction=0.7)
        run = sort_merge_join(r, s, 6, page_spec=SPEC)
        assert run.result.multiset_equal(reference_join(r, s))

    def test_instantaneous_only(self, schema_r, schema_s):
        r = random_relation(schema_r, 200, seed=55, long_lived_fraction=0.0)
        s = random_relation(schema_s, 200, seed=56, long_lived_fraction=0.0)
        run = sort_merge_join(r, s, 8, page_spec=SPEC)
        assert run.result.multiset_equal(reference_join(r, s))

    def test_memory_minimum(self, schema_r, schema_s):
        r = random_relation(schema_r, 10, seed=57)
        s = random_relation(schema_s, 10, seed=58)
        with pytest.raises(PlanError):
            sort_merge_join(r, s, 3)


class TestMemoryCases:
    def test_in_memory_case(self, schema_r, schema_s):
        r = random_relation(schema_r, 40, seed=61)
        s = random_relation(schema_s, 40, seed=62)
        run = sort_merge_join(r, s, 64, page_spec=SPEC)
        assert run.memory_case == "in_memory"
        assert run.backup_page_reads == 0

    def test_one_resident_case(self, schema_r, schema_s):
        r = random_relation(schema_r, 40, seed=63)  # 5 pages
        s = random_relation(schema_s, 800, seed=64)  # 100 pages
        run = sort_merge_join(r, s, 16, page_spec=SPEC)
        assert run.memory_case == "one_resident"
        assert run.backup_page_reads == 0

    def test_streamed_case(self, schema_r, schema_s):
        r = random_relation(schema_r, 800, seed=65)
        s = random_relation(schema_s, 800, seed=66)
        run = sort_merge_join(r, s, 8, page_spec=SPEC)
        assert run.memory_case == "streamed"


class TestBackingUp:
    def test_no_backup_without_long_lived(self, schema_r, schema_s):
        r = random_relation(schema_r, 600, seed=67, long_lived_fraction=0.0)
        s = random_relation(schema_s, 600, seed=68, long_lived_fraction=0.0)
        run = sort_merge_join(r, s, 8, page_spec=SPEC)
        assert run.memory_case == "streamed"
        assert run.backup_page_reads == 0

    def test_backup_grows_with_density(self, schema_r, schema_s):
        reads = []
        for fraction in (0.0, 0.4, 0.8):
            r = random_relation(
                schema_r, 600, seed=69, long_lived_fraction=fraction
            )
            s = random_relation(
                schema_s, 600, seed=70, long_lived_fraction=fraction
            )
            run = sort_merge_join(r, s, 6, page_spec=SPEC)
            reads.append(run.backup_page_reads)
        assert reads[0] <= reads[1] <= reads[2]
        assert reads[2] > reads[0]

    def test_phases_recorded(self, schema_r, schema_s):
        r = random_relation(schema_r, 600, seed=71)
        s = random_relation(schema_s, 600, seed=72)
        run = sort_merge_join(r, s, 8, page_spec=SPEC)
        assert set(run.layout.tracker.phases) == {"sort", "match"}
