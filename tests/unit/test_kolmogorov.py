"""Unit tests for the Kolmogorov sample-size machinery."""

import math

import pytest

from repro.sampling.kolmogorov import (
    kolmogorov_d,
    max_percentile_error,
    required_samples,
)


class TestKolmogorovD:
    def test_paper_value(self):
        assert kolmogorov_d(0.99) == 1.63

    def test_other_tabulated_levels(self):
        assert kolmogorov_d(0.95) == 1.36
        assert kolmogorov_d(0.90) == 1.22

    def test_unsupported_level(self):
        with pytest.raises(ValueError, match="tabulated"):
            kolmogorov_d(0.97)


class TestMaxPercentileError:
    def test_paper_formula(self):
        assert max_percentile_error(100) == pytest.approx(1.63 / 10)

    def test_decreases_with_samples(self):
        assert max_percentile_error(400) < max_percentile_error(100)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            max_percentile_error(0)


class TestRequiredSamples:
    def test_paper_formula(self):
        # m >= ((1.63 * |r|) / errorSize)^2
        assert required_samples(1000, 100) == math.ceil((1.63 * 10) ** 2)

    def test_more_error_space_fewer_samples(self):
        assert required_samples(1000, 200) < required_samples(1000, 100)

    def test_empty_relation(self):
        assert required_samples(0, 10) == 0

    def test_zero_error_space_rejected(self):
        with pytest.raises(ValueError, match="errorSize"):
            required_samples(1000, 0)

    def test_negative_relation_rejected(self):
        with pytest.raises(ValueError):
            required_samples(-1, 10)

    def test_scale_invariance(self):
        """The paper's footnote: m depends only on |r| / errorSize."""
        assert required_samples(1000, 100) == required_samples(10_000, 1000)
