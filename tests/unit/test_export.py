"""Unit tests for CSV export of experiment results."""

import csv

from repro.experiments import ExperimentConfig, run_fig4, run_fig6
from repro.experiments.export import export_fig4, export_fig6, export_fig7, export_fig8
from repro.experiments.fig7 import Fig7Point
from repro.experiments.fig8 import Fig8Point


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExport:
    def test_fig4_round_trip(self, tmp_path):
        result = run_fig4(ExperimentConfig(scale=64))
        path = tmp_path / "fig4.csv"
        rows = export_fig4(result, path)
        data = read_csv(path)
        assert data[0][0] == "part_size"
        assert len(data) == rows + 1
        assert rows == len(result.curve)

    def test_fig6_round_trip(self, tmp_path):
        points = run_fig6(
            ExperimentConfig(scale=64), memory_mb=(4, 32), ratios=(5,)
        )
        path = tmp_path / "fig6.csv"
        rows = export_fig6(points, path)
        data = read_csv(path)
        assert rows == len(points)
        costs = {float(row[3]) for row in data[1:]}
        assert costs == {p.cost for p in points}

    def test_fig7_headers_and_details(self, tmp_path):
        points = [
            Fig7Point(8000, "sort_merge", 123.0, {"backup_page_reads": 7}),
            Fig7Point(8000, "partition", 99.0, {"cache_tuples_peak": 3}),
        ]
        path = tmp_path / "fig7.csv"
        export_fig7(points, path)
        data = read_csv(path)
        assert data[1][3] == "7"  # backup reads for sort-merge
        assert data[2][4] == "3"  # cache peak for partition

    def test_fig8_grid(self, tmp_path):
        points = [
            Fig8Point(1, 16000, 10.0, {}),
            Fig8Point(2, 16000, 5.0, {}),
        ]
        path = tmp_path / "fig8.csv"
        assert export_fig8(points, path) == 2
        data = read_csv(path)
        assert data[0] == ["memory_mb", "long_lived_total", "cost"]

    def test_overwrite_is_deterministic(self, tmp_path):
        result = run_fig4(ExperimentConfig(scale=64))
        path = tmp_path / "fig4.csv"
        export_fig4(result, path)
        first = path.read_text()
        export_fig4(result, path)
        assert path.read_text() == first
