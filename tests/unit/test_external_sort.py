"""Unit tests for external merge sort over the simulated disk."""

import random

import pytest

from repro.baselines.external_sort import by_valid_start, external_sort
from repro.model.errors import PlanError
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval


def make_source(layout, n, seed=1):
    rng = random.Random(seed)
    tuples = [
        VTTuple((i % 9,), (i,), Interval(rng.randrange(1000), 1000 + rng.randrange(100)))
        for i in range(n)
    ]
    from repro.storage.heapfile import HeapFile

    return (
        HeapFile.bulk_load(layout.disk, "src", layout.spec, tuples),
        tuples,
    )


@pytest.fixture
def layout():
    return DiskLayout(spec=PageSpec(page_bytes=1024, tuple_bytes=256))


class TestExternalSort:
    def test_output_sorted_and_complete(self, layout):
        source, tuples = make_source(layout, 100)
        result = external_sort(source, layout, memory_pages=4)
        out = result.all_tuples()
        assert sorted(out, key=by_valid_start) == out
        assert sorted(map(repr, out)) == sorted(map(repr, tuples))

    def test_single_run_when_input_fits(self, layout):
        source, _ = make_source(layout, 12)  # 3 pages
        before = layout.tracker.stats.copy()
        external_sort(source, layout, memory_pages=8)
        delta = layout.tracker.stats.diff(before)
        # One read pass + one write pass, no merge.
        assert delta.reads == source.n_pages
        assert delta.writes == source.n_pages

    def test_merge_pass_when_input_exceeds_memory(self, layout):
        source, _ = make_source(layout, 100)  # 25 pages
        before = layout.tracker.stats.copy()
        external_sort(source, layout, memory_pages=4)
        delta = layout.tracker.stats.diff(before)
        # Run formation (read+write) plus at least one merge (read+write).
        assert delta.reads >= 2 * source.n_pages
        assert delta.writes >= 2 * source.n_pages

    def test_custom_key(self, layout):
        source, _ = make_source(layout, 40)
        result = external_sort(
            source, layout, memory_pages=4, key=lambda t: (t.ve, t.vs)
        )
        out = result.all_tuples()
        assert [t.ve for t in out] == sorted(t.ve for t in out)

    def test_empty_input(self, layout):
        source, _ = make_source(layout, 0)
        result = external_sort(source, layout, memory_pages=4)
        assert result.all_tuples() == []

    def test_memory_minimum(self, layout):
        source, _ = make_source(layout, 10)
        with pytest.raises(PlanError):
            external_sort(source, layout, memory_pages=2)

    def test_smaller_memory_costs_more(self, layout):
        source, tuples = make_source(layout, 200)
        before = layout.tracker.stats.copy()
        external_sort(source, layout, memory_pages=3, name="tight")
        tight = layout.tracker.stats.diff(before).total_ops

        layout2 = DiskLayout(spec=layout.spec)
        source2, _ = make_source(layout2, 200)
        external_sort(source2, layout2, memory_pages=32, name="roomy")
        roomy = layout2.tracker.stats.total_ops
        assert tight > roomy
