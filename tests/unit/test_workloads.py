"""Unit tests for database specs and tuple generators."""

import pytest

from repro.workloads.generator import generate_pair, generate_relation, skewed_relation
from repro.workloads.specs import (
    DatabaseSpec,
    fig6_spec,
    fig7_spec,
    fig8_spec,
    memory_pages,
)


class TestDatabaseSpec:
    def test_defaults_match_paper_reconstruction(self):
        spec = DatabaseSpec("d")
        assert spec.relation_tuples == 131_072
        assert spec.database_tuples == 262_144

    def test_scaling_preserves_ratios(self):
        spec = DatabaseSpec("d", long_lived_per_relation=32_000)
        scaled = spec.scaled(16)
        assert scaled.relation_tuples == 131_072 // 16
        assert scaled.long_lived_per_relation == 2_000
        ratio = spec.long_lived_per_relation / spec.relation_tuples
        scaled_ratio = scaled.long_lived_per_relation / scaled.relation_tuples
        assert scaled_ratio == pytest.approx(ratio, rel=0.01)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            DatabaseSpec("d").scaled(0)

    def test_long_lived_bounds(self):
        with pytest.raises(ValueError):
            DatabaseSpec("d", relation_tuples=10, long_lived_per_relation=11)

    def test_fig_specs(self):
        assert fig6_spec().long_lived_per_relation == 0
        assert fig7_spec(64_000).long_lived_per_relation == 32_000
        assert fig8_spec(32_000).long_lived_total == 32_000
        with pytest.raises(ValueError):
            fig7_spec(8_001)

    def test_memory_pages(self):
        assert memory_pages(1) == 1024
        assert memory_pages(8) == 8192
        with pytest.raises(ValueError):
            memory_pages(0.001)


class TestGenerator:
    SPEC = DatabaseSpec(
        "t", relation_tuples=500, long_lived_per_relation=100, n_objects=40,
        lifespan_chronons=10_000,
    )

    def test_counts(self):
        relation = generate_relation(self.SPEC, "r")
        assert len(relation) == 500

    def test_long_lived_recipe(self):
        relation = generate_relation(self.SPEC, "r")
        half = self.SPEC.lifespan_chronons // 2
        long_lived = [t for t in relation if t.valid.duration > 1]
        assert len(long_lived) == 100
        for tup in long_lived:
            assert tup.vs < half
            assert tup.ve - tup.vs in (half, half - 1) or tup.ve == self.SPEC.lifespan_chronons - 1

    def test_instantaneous_rest(self):
        relation = generate_relation(self.SPEC, "r")
        instants = [t for t in relation if t.valid.duration == 1]
        assert len(instants) == 400
        assert all(0 <= t.vs < self.SPEC.lifespan_chronons for t in instants)

    def test_deterministic(self):
        a = generate_relation(self.SPEC, "r")
        b = generate_relation(self.SPEC, "r")
        assert a.multiset_equal(b)

    def test_r_and_s_are_different_streams(self):
        r, s = generate_pair(self.SPEC)
        assert [t.valid for t in r] != [t.valid for t in s]

    def test_invalid_role(self):
        with pytest.raises(ValueError):
            generate_relation(self.SPEC, "x")

    def test_keys_within_domain(self):
        relation = generate_relation(self.SPEC, "r")
        assert all(0 <= t.key[0] < self.SPEC.n_objects for t in relation)


class TestSkewedGenerator:
    SPEC = DatabaseSpec("skew", relation_tuples=1000, n_objects=40, lifespan_chronons=10_000)

    def test_hot_window_concentration(self):
        relation = skewed_relation(self.SPEC, "r", hot_fraction=0.8, hot_window=0.1)
        window_start = self.SPEC.lifespan_chronons // 4
        window_end = window_start + self.SPEC.lifespan_chronons // 10
        hot = sum(1 for t in relation if window_start <= t.vs <= window_end)
        assert hot >= 700  # ~80% plus uniform spillover

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            skewed_relation(self.SPEC, "r", hot_fraction=1.5)
        with pytest.raises(ValueError):
            skewed_relation(self.SPEC, "r", hot_window=0.0)
