"""Unit tests for the replication-based partition join (the ablation arm)."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.partition_join import PartitionJoinConfig
from repro.core.replicating import replicating_partition_join
from repro.storage.page import PageSpec
from tests.conftest import random_relation


@pytest.fixture
def config():
    return PartitionJoinConfig(
        memory_pages=12, page_spec=PageSpec(page_bytes=1024, tuple_bytes=128)
    )


class TestReplicatingJoin:
    def test_equals_reference(self, schema_r, schema_s, config):
        r = random_relation(schema_r, 500, seed=31, payload_tag="p")
        s = random_relation(schema_s, 500, seed=32, payload_tag="q")
        run = replicating_partition_join(r, s, config)
        assert run.outcome.result.multiset_equal(reference_join(r, s))

    def test_long_lived_tuples_are_replicated(self, schema_r, schema_s, config):
        r = random_relation(schema_r, 400, seed=33, long_lived_fraction=0.6)
        s = random_relation(schema_s, 400, seed=34, long_lived_fraction=0.6)
        run = replicating_partition_join(r, s, config)
        if run.plan.num_partitions > 1:
            assert run.replicated_tuples > 0

    def test_no_replication_without_long_lived(self, schema_r, schema_s, config):
        r = random_relation(schema_r, 400, seed=35, long_lived_fraction=0.0)
        s = random_relation(schema_s, 400, seed=36, long_lived_fraction=0.0)
        run = replicating_partition_join(r, s, config)
        assert run.replicated_tuples == 0

    def test_replication_writes_more_partition_pages(self, schema_r, schema_s, config):
        """The paper's storage argument: replication inflates secondary
        storage, migration does not."""
        from repro.core.partition_join import partition_join

        r = random_relation(schema_r, 500, seed=37, long_lived_fraction=0.5)
        s = random_relation(schema_s, 500, seed=38, long_lived_fraction=0.5)
        replicated = replicating_partition_join(r, s, config)
        migrated = partition_join(r, s, config)
        rep_writes = replicated.layout.tracker.phases["partition"].writes
        mig_writes = migrated.layout.tracker.phases["partition"].writes
        assert rep_writes > mig_writes
