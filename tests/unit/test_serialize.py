"""Unit tests for relation serialization (CSV and JSON lines)."""

import pytest

from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from repro.storage.serialize import load_csv, load_jsonl, save_csv, save_jsonl
from tests.conftest import make_relation, random_relation


SCHEMA = RelationSchema("emp", ("name",), ("dept", "salary"))


@pytest.fixture
def relation():
    return make_relation(
        SCHEMA,
        [
            ("alice", "db", 100, 0, 9),
            ("bob", "os", 90, 5, 14),
        ],
    )


class TestCsv:
    def test_round_trip_with_converters(self, relation, tmp_path):
        path = tmp_path / "emp.csv"
        assert save_csv(relation, path) == 2
        loaded = load_csv(SCHEMA, path, converters=(str, str, int))
        assert loaded.multiset_equal(relation)

    def test_without_converters_values_are_strings(self, relation, tmp_path):
        path = tmp_path / "emp.csv"
        save_csv(relation, path)
        loaded = load_csv(SCHEMA, path)
        salaries = {tup.payload[1] for tup in loaded}
        assert salaries == {"100", "90"}

    def test_header_mismatch_rejected(self, relation, tmp_path):
        path = tmp_path / "emp.csv"
        save_csv(relation, path)
        other = RelationSchema("x", ("different",))
        with pytest.raises(SchemaError, match="header"):
            load_csv(other, path)

    def test_wrong_converter_count(self, relation, tmp_path):
        path = tmp_path / "emp.csv"
        save_csv(relation, path)
        with pytest.raises(SchemaError, match="converters"):
            load_csv(SCHEMA, path, converters=(str,))

    def test_empty_relation(self, tmp_path):
        from repro.model.relation import ValidTimeRelation

        path = tmp_path / "empty.csv"
        save_csv(ValidTimeRelation(SCHEMA), path)
        assert len(load_csv(SCHEMA, path)) == 0


class TestJsonl:
    def test_round_trip_preserves_types(self, relation, tmp_path):
        path = tmp_path / "emp.jsonl"
        assert save_jsonl(relation, path) == 2
        loaded = load_jsonl(path)
        assert loaded.multiset_equal(relation)
        assert loaded.schema.name == SCHEMA.name
        assert loaded.schema.attributes == SCHEMA.attributes

    def test_large_random_relation(self, schema_r, tmp_path):
        relation = random_relation(schema_r, 300, seed=311)
        path = tmp_path / "big.jsonl"
        save_jsonl(relation, path)
        assert load_jsonl(path).multiset_equal(relation)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError, match="header"):
            load_jsonl(path)
