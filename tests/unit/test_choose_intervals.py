"""Unit tests for chooseIntervals (Appendix A.3) and its sweep quantiles."""

import random

import pytest

from repro.core.intervals import choose_intervals, _coverage_quantiles
from repro.model.errors import PlanError
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval
from repro.time.lifespan import covers_lifespan, lifespan_of


def sample(start, end):
    return VTTuple(("k",), (), Interval(start, end))


class TestChooseIntervals:
    def test_single_partition(self):
        intervals = choose_intervals([sample(0, 9)], 1)
        assert intervals == [Interval(0, 9)]

    def test_empty_sample_rejected(self):
        with pytest.raises(PlanError):
            choose_intervals([], 2)

    def test_nonpositive_partitions_rejected(self):
        with pytest.raises(PlanError):
            choose_intervals([sample(0, 1)], 0)

    def test_tiling_covers_sampled_lifespan(self):
        samples = [sample(i * 3, i * 3 + 5) for i in range(20)]
        intervals = choose_intervals(samples, 4)
        span = lifespan_of(tup.valid for tup in samples)
        assert covers_lifespan(intervals, span)

    def test_equal_depth_on_uniform_instants(self):
        samples = [sample(i, i) for i in range(100)]
        intervals = choose_intervals(samples, 4)
        assert len(intervals) == 4
        sizes = [
            sum(1 for tup in samples if tup.valid.overlaps(interval))
            for interval in intervals
        ]
        assert max(sizes) - min(sizes) <= 2

    def test_adapts_to_skew(self):
        # 90 instants clustered at the start, 10 spread widely.
        samples = [sample(i % 10, i % 10) for i in range(90)]
        samples += [sample(1000 + i * 100, 1000 + i * 100) for i in range(10)]
        intervals = choose_intervals(samples, 5)
        counts = [
            sum(1 for tup in samples if tup.valid.overlaps(interval))
            for interval in intervals
        ]
        # No partition should hold the 90-tuple cluster alone.
        assert max(counts) < 90

    def test_degenerate_identical_chronons(self):
        samples = [sample(5, 5)] * 30
        intervals = choose_intervals(samples, 4)
        assert intervals == [Interval(5, 5)]

    def test_never_more_than_requested(self):
        rng = random.Random(3)
        samples = [sample(rng.randrange(100), rng.randrange(100, 200)) for _ in range(50)]
        for n in (1, 2, 3, 7, 20):
            assert len(choose_intervals(samples, n)) <= n


class TestCoverageQuantiles:
    def _naive(self, samples, positions):
        multiset = []
        for tup in samples:
            multiset.extend(range(tup.vs, tup.ve + 1))
        multiset.sort()
        return [multiset[min(p, len(multiset)) - 1] for p in positions]

    def test_matches_naive_enumeration(self):
        rng = random.Random(9)
        for trial in range(30):
            samples = []
            for _ in range(rng.randrange(1, 12)):
                start = rng.randrange(0, 40)
                samples.append(sample(start, start + rng.randrange(0, 15)))
            total = sum(tup.valid.duration for tup in samples)
            positions = sorted(rng.randrange(1, total + 1) for _ in range(4))
            expected = self._naive(samples, positions)
            got = _coverage_quantiles(samples, positions)
            assert got == expected, f"trial {trial}: {samples} {positions}"

    def test_empty_positions(self):
        assert _coverage_quantiles([sample(0, 5)], []) == []

    def test_position_past_end_clamped(self):
        assert _coverage_quantiles([sample(0, 4)], [100]) == [4]
