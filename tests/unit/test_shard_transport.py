"""The shard wire protocol: framing, CRC, codecs, leak registry."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.shard import transport
from repro.shard.transport import (
    Channel,
    TransportError,
    active_channel_count,
    pack_columns,
    pack_result,
    transport_counters,
    unpack_columns,
    unpack_result,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    left, right = Channel(a, name="left"), Channel(b, name="right")
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip(self, pair):
        left, right = pair
        left.send_obj(transport.PING, {"hello": 1})
        ftype, body = right.recv_obj(timeout=5)
        assert ftype == transport.PING
        assert body == {"hello": 1}

    def test_empty_payload(self, pair):
        left, right = pair
        left.send(transport.SHUTDOWN, b"")
        ftype, flags, payload = right.recv(timeout=5)
        assert (ftype, payload) == (transport.SHUTDOWN, b"")

    def test_eof_raises_kind_eof(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(TransportError) as info:
            right.recv(timeout=5)
        assert info.value.kind == "eof"

    def test_timeout_raises_kind_timeout(self, pair):
        _left, right = pair
        with pytest.raises(TransportError) as info:
            right.recv(timeout=0.05)
        assert info.value.kind == "timeout"

    def test_bad_magic_raises_protocol(self):
        a, b = socket.socketpair()
        try:
            with Channel(b, name="victim") as channel:
                a.sendall(b"XXXX" + bytes(transport._HEADER.size - 4))
                with pytest.raises(TransportError) as info:
                    channel.recv(timeout=5)
                assert info.value.kind == "protocol"
        finally:
            a.close()

    def test_crc_mismatch_detected_and_counted(self):
        a, b = socket.socketpair()
        before = transport_counters()["crc_failures"]
        try:
            with Channel(b, name="victim") as channel:
                payload = b"corrupted"
                header = transport._HEADER.pack(
                    transport.MAGIC, transport.OK, 0, 0, len(payload), 0xDEADBEEF
                )
                a.sendall(header + payload)
                with pytest.raises(TransportError) as info:
                    channel.recv(timeout=5)
                assert info.value.kind == "crc"
        finally:
            a.close()
        assert transport_counters()["crc_failures"] == before + 1

    def test_oversized_length_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            with Channel(b, name="victim") as channel:
                header = transport._HEADER.pack(
                    transport.MAGIC, transport.OK, 0, 0,
                    transport.MAX_PAYLOAD_BYTES + 1, 0,
                )
                a.sendall(header)
                with pytest.raises(TransportError) as info:
                    channel.recv(timeout=5)
                assert info.value.kind == "protocol"
        finally:
            a.close()

    def test_counters_track_traffic(self, pair):
        left, right = pair
        before = transport_counters()
        left.send_obj(transport.PING, {"n": 1})
        right.recv(timeout=5)
        after = transport_counters()
        assert after["frames_sent"] == before["frames_sent"] + 1
        assert after["frames_received"] == before["frames_received"] + 1
        assert after["bytes_sent"] > before["bytes_sent"]


class TestPickleFallback:
    def test_json_unfriendly_payload_rides_pickle_rung(self, pair):
        left, right = pair
        before = transport_counters()["pickle_fallbacks"]
        left.send_obj(transport.CHAOS, {"bytes": b"\x00\x01"})
        ftype, body = right.recv_obj(timeout=5)
        assert body == {"bytes": b"\x00\x01"}
        assert transport_counters()["pickle_fallbacks"] == before + 1


class TestColumnCodec:
    COLUMNS = (
        [("a", 1), ("b", 2)],
        [(10,), (20,)],
        [100, 200],
        [150, 250],
    )

    def test_roundtrip(self):
        spans, blob = pack_columns(self.COLUMNS)
        assert [s["column"] for s in spans] == ["keys", "payloads", "starts", "ends"]
        assert unpack_columns(spans, blob) == self.COLUMNS

    def test_endpoints_pack_as_i64(self):
        spans, blob = pack_columns(self.COLUMNS)
        starts = next(s for s in spans if s["column"] == "starts")
        assert starts["codec"] == "i64"
        raw = blob[starts["offset"] : starts["offset"] + starts["length"]]
        assert struct.unpack("!2q", raw) == (100, 200)

    def test_unjsonable_column_falls_back_to_pickle(self):
        columns = ([(b"raw",)], [(1,)], [0], [1])
        spans, blob = pack_columns(columns)
        keys = next(s for s in spans if s["column"] == "keys")
        assert keys["codec"] == "pickle"
        assert unpack_columns(spans, blob) == columns

    def test_result_roundtrip_with_and_without_columns(self):
        meta = {"rank": 3, "cost": 1.5}
        payload = pack_result(meta, self.COLUMNS)
        got_meta, got_columns = unpack_result(payload)
        assert got_meta == meta
        assert got_columns == self.COLUMNS
        got_meta, got_columns = unpack_result(pack_result(meta, None))
        assert (got_meta, got_columns) == (meta, None)

    def test_truncated_result_rejected(self):
        with pytest.raises(TransportError):
            unpack_result(b"\x00\x00")
        whole = pack_result({"rank": 0}, self.COLUMNS)
        with pytest.raises(TransportError):
            unpack_result(whole[:12])


class TestLeakRegistry:
    def test_close_deregisters_and_is_idempotent(self):
        baseline = active_channel_count()
        a, b = socket.socketpair()
        left, right = Channel(a), Channel(b)
        assert active_channel_count() == baseline + 2
        left.close()
        left.close()
        right.close()
        assert active_channel_count() == baseline

    def test_send_after_close_raises_eof(self):
        a, b = socket.socketpair()
        left, right = Channel(a), Channel(b)
        left.close()
        right.close()
        with pytest.raises(TransportError) as info:
            left.send(transport.PING, b"")
        assert info.value.kind == "eof"
