"""Shard-map routing: stable hashing, fragment disjointness, ownership."""

from __future__ import annotations

import random
import subprocess
import sys

import pytest

from repro.model.errors import ServiceError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.shard.partitioning import (
    SHARD_STRATEGIES,
    ShardMap,
    stable_key_hash,
    time_range_map,
)
from repro.time.interval import Interval


def relation(name: str = "r", n: int = 80, seed: int = 0) -> ValidTimeRelation:
    schema = RelationSchema(
        name, join_attributes=("k",), payload_attributes=(f"p_{name}",)
    )
    rng = random.Random(seed)
    tuples = []
    for i in range(n):
        vs = rng.randrange(300)
        tuples.append(
            VTTuple(
                (rng.randrange(16),),
                (f"{name}{i}",),
                Interval(vs, vs + 1 + rng.randrange(60)),
            )
        )
    return ValidTimeRelation(schema, tuples)


class TestStableKeyHash:
    def test_deterministic(self):
        assert stable_key_hash(("a", 1)) == stable_key_hash(("a", 1))

    def test_type_sensitive(self):
        # 1 and "1" must route independently: repr alone would collide
        # ("1" vs '1' differ, but (1,) vs ("1",) must too).
        assert stable_key_hash((1,)) != stable_key_hash(("1",))

    def test_stable_across_processes(self):
        # The whole point vs builtin hash(): no per-process string salt.
        code = (
            "from repro.shard.partitioning import stable_key_hash;"
            "print(stable_key_hash(('emp', 42)))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        )
        assert int(out.stdout.strip()) == stable_key_hash(("emp", 42))


class TestShardMapValidation:
    def test_strategies_exported(self):
        assert set(SHARD_STRATEGIES) == {"key-hash", "time-range"}

    def test_rejects_zero_shards(self):
        with pytest.raises(ServiceError):
            ShardMap(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ServiceError):
            ShardMap(2, strategy="round-robin")

    def test_key_hash_rejects_boundaries(self):
        with pytest.raises(ServiceError):
            ShardMap(2, strategy="key-hash", boundaries=(10,))

    def test_time_range_needs_n_minus_one_boundaries(self):
        with pytest.raises(ServiceError):
            ShardMap(3, strategy="time-range", boundaries=(10,))

    def test_boundaries_must_ascend(self):
        with pytest.raises(ServiceError):
            ShardMap(3, strategy="time-range", boundaries=(20, 10))

    def test_roundtrips_through_dict(self):
        for shard_map in (
            ShardMap(4),
            ShardMap(3, strategy="time-range", boundaries=(100, 200)),
        ):
            assert ShardMap.from_dict(shard_map.as_dict()) == shard_map


class TestKeyHashFragments:
    def test_fragments_partition_the_relation(self):
        rel = relation()
        shard_map = ShardMap(4)
        fragments = [shard_map.fragment(rel, rank) for rank in range(4)]
        assert sum(len(f) for f in fragments) == len(rel)
        seen = sorted(
            (t.key, t.payload, t.vs, t.ve) for f in fragments for t in f.tuples
        )
        assert seen == sorted((t.key, t.payload, t.vs, t.ve) for t in rel.tuples)

    def test_fragment_preserves_order(self):
        rel = relation()
        shard_map = ShardMap(3)
        for rank in range(3):
            fragment = shard_map.fragment(rel, rank)
            routed = [
                t for t in rel.tuples if shard_map.shards_of_tuple(t) == (rank,)
            ]
            assert list(fragment.tuples) == routed

    def test_single_shard_fragment_is_identity(self):
        rel = relation()
        fragment = ShardMap(1).fragment(rel, 0)
        assert list(fragment.tuples) == list(rel.tuples)

    def test_matching_keys_share_a_shard(self):
        shard_map = ShardMap(8)
        for key in [(k,) for k in range(100)]:
            ranks = {shard_map.shard_of_key(key) for _ in range(3)}
            assert len(ranks) == 1

    def test_every_shard_owns_its_results(self):
        shard_map = ShardMap(4)
        assert all(shard_map.owns_result(rank, 123) for rank in range(4))


class TestTimeRangeFragments:
    def test_replicates_overlapping_tuples(self):
        shard_map = ShardMap(2, strategy="time-range", boundaries=(100,))
        straddler = VTTuple((1,), ("x",), Interval(50, 150))
        assert shard_map.shards_of_tuple(straddler) == (0, 1)

    def test_ownership_is_exclusive_and_total(self):
        shard_map = ShardMap(3, strategy="time-range", boundaries=(100, 200))
        for vs in (0, 99, 100, 199, 200, 10_000):
            owners = [r for r in range(3) if shard_map.owns_result(r, vs)]
            assert len(owners) == 1

    def test_fragment_counts_include_replicas(self):
        rel = relation(n=60, seed=3)
        shard_map = time_range_map(4, rel)
        counts = shard_map.fragment_counts(rel)
        assert sum(counts) >= len(rel)
        assert [len(shard_map.fragment(rel, r)) for r in range(4)] == counts

    def test_union_of_fragments_covers_relation(self):
        rel = relation(n=60, seed=5)
        shard_map = time_range_map(3, rel)
        union = set()
        for rank in range(3):
            union.update(
                (t.key, t.payload, t.vs, t.ve)
                for t in shard_map.fragment(rel, rank).tuples
            )
        assert union == {(t.key, t.payload, t.vs, t.ve) for t in rel.tuples}

    def test_time_range_map_needs_tuples(self):
        empty = ValidTimeRelation(
            RelationSchema("e", join_attributes=("k",))
        )
        with pytest.raises(ServiceError):
            time_range_map(2, empty)

    def test_degenerate_lifespan_still_ascends(self):
        schema = RelationSchema("d", join_attributes=("k",))
        rel = ValidTimeRelation(
            schema, [VTTuple((1,), (), Interval(5, 6)) for _ in range(4)]
        )
        shard_map = time_range_map(4, rel)
        assert list(shard_map.boundaries) == sorted(set(shard_map.boundaries))
