"""Unit tests for external (disk-costed) coalescing."""

import pytest

from repro.algebra.coalesce import coalesce, is_coalesced
from repro.algebra.external_coalesce import external_coalesce
from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec
from tests.conftest import make_relation, random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)
SCHEMA = RelationSchema("r", ("k",), ("a",))


class TestExternalCoalesce:
    def test_matches_in_memory_coalesce(self):
        relation = make_relation(
            SCHEMA,
            [
                ("x", "a", 0, 4),
                ("x", "a", 5, 9),
                ("x", "a", 20, 25),
                ("x", "b", 3, 8),
                ("y", "a", 0, 9),
                ("y", "a", 4, 15),
            ],
        )
        result, _ = external_coalesce(relation, 8, page_spec=SPEC)
        assert result.multiset_equal(coalesce(relation))
        assert is_coalesced(result)

    def test_random_relation(self, schema_r):
        relation = random_relation(
            schema_r, 400, seed=371, n_keys=5, long_lived_fraction=0.5
        )
        result, _ = external_coalesce(relation, 6, page_spec=SPEC)
        assert result.multiset_equal(coalesce(relation))

    @pytest.mark.parametrize("memory", [4, 8, 64])
    def test_memory_sizes(self, schema_r, memory):
        relation = random_relation(schema_r, 300, seed=372, n_keys=4)
        result, _ = external_coalesce(relation, memory, page_spec=SPEC)
        assert result.multiset_equal(coalesce(relation))

    def test_cost_accounting(self, schema_r):
        relation = random_relation(schema_r, 400, seed=373)
        _, layout = external_coalesce(relation, 6, page_spec=SPEC)
        phases = layout.tracker.phases
        assert set(phases) == {"sort", "merge"}
        pages = SPEC.pages_for_tuples(len(relation))
        # The merge pass reads the sorted file once.
        assert phases["merge"].reads == pages
        # Sorting reads the input at least once and writes runs.
        assert phases["sort"].reads >= pages
        assert phases["sort"].writes >= pages

    def test_empty_relation(self):
        from repro.model.relation import ValidTimeRelation

        result, _ = external_coalesce(ValidTimeRelation(SCHEMA), 4, page_spec=SPEC)
        assert len(result) == 0
