"""Unit tests for lifespans and partitioning coverage."""

import pytest

from repro.time.interval import Interval
from repro.time.lifespan import Lifespan, covers_lifespan, lifespan_of


class TestLifespanOf:
    def test_empty(self):
        assert lifespan_of([]) is None

    def test_hull_of_intervals(self):
        span = lifespan_of([Interval(5, 9), Interval(0, 2), Interval(7, 8)])
        assert span == Lifespan(0, 9)
        assert isinstance(span, Lifespan)

    def test_generator_input(self):
        span = lifespan_of(Interval(i, i + 1) for i in range(3))
        assert span == Lifespan(0, 3)


class TestFractionPoint:
    def test_endpoints(self):
        span = Lifespan(100, 199)
        assert span.fraction_point(0.0) == 100
        assert span.fraction_point(1.0) == 199

    def test_midpoint(self):
        assert Lifespan(0, 100).fraction_point(0.5) == 50

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Lifespan(0, 10).fraction_point(1.5)

    def test_prefix(self):
        assert Lifespan(0, 99).prefix(0.5) == Interval(0, 49)

    def test_scaled_duration_minimum_one(self):
        assert Lifespan(0, 3).scaled_duration(0.0) == 1
        assert Lifespan(0, 99).scaled_duration(0.5) == 50


class TestCoversLifespan:
    def test_exact_tiling(self):
        tiling = [Interval(0, 4), Interval(5, 9)]
        assert covers_lifespan(tiling, Interval(0, 9))

    def test_tiling_wider_than_lifespan(self):
        tiling = [Interval(0, 20)]
        assert covers_lifespan(tiling, Interval(3, 9))

    def test_gap_fails(self):
        assert not covers_lifespan([Interval(0, 3), Interval(5, 9)], Interval(0, 9))

    def test_overlap_fails(self):
        assert not covers_lifespan([Interval(0, 5), Interval(5, 9)], Interval(0, 9))

    def test_late_start_fails(self):
        assert not covers_lifespan([Interval(2, 9)], Interval(0, 9))

    def test_early_end_fails(self):
        assert not covers_lifespan([Interval(0, 7)], Interval(0, 9))

    def test_empty_fails(self):
        assert not covers_lifespan([], Interval(0, 9))
