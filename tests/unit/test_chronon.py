"""Unit tests for the chronon scale (repro.time.chronon)."""

import pytest

from repro.time.chronon import (
    BEGINNING,
    FOREVER,
    Granularity,
    is_chronon,
    validate_chronon,
)


class TestIsChronon:
    def test_plain_ints_are_chronons(self):
        assert is_chronon(0)
        assert is_chronon(-5)
        assert is_chronon(2**40)

    def test_bools_are_rejected(self):
        assert not is_chronon(True)
        assert not is_chronon(False)

    def test_non_ints_are_rejected(self):
        assert not is_chronon(1.5)
        assert not is_chronon("3")
        assert not is_chronon(None)

    def test_sentinels_are_chronons(self):
        assert is_chronon(BEGINNING)
        assert is_chronon(FOREVER)

    def test_out_of_range_rejected(self):
        assert not is_chronon(FOREVER + 1)
        assert not is_chronon(BEGINNING - 1)


class TestValidateChronon:
    def test_returns_value(self):
        assert validate_chronon(42) == 42

    def test_type_error_for_float(self):
        with pytest.raises(TypeError, match="chronon"):
            validate_chronon(1.0)

    def test_type_error_for_bool(self):
        with pytest.raises(TypeError):
            validate_chronon(True)

    def test_value_error_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            validate_chronon(FOREVER + 1)

    def test_custom_label_in_message(self):
        with pytest.raises(TypeError, match="my_field"):
            validate_chronon("x", "my_field")


class TestGranularity:
    def test_default_is_identity(self):
        gran = Granularity()
        assert gran.to_chronon(7) == 7
        assert gran.from_chronon(7) == 7

    def test_round_trip_with_scale(self):
        gran = Granularity(unit="second", chronons_per_unit=10, origin=100)
        assert gran.to_chronon(101.5) == 15
        assert gran.from_chronon(15) == 101.5

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            Granularity(chronons_per_unit=0)

    def test_from_chronon_validates(self):
        gran = Granularity()
        with pytest.raises(TypeError):
            gran.from_chronon("soon")
