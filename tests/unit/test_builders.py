"""Unit tests for the public workload builders."""

import pytest

from repro.baselines.reference import reference_join
from repro.model.schema import RelationSchema
from repro.workloads.builders import random_join_pair, random_valid_time_relation


class TestRandomRelation:
    SCHEMA = RelationSchema("r", ("k",), ("a",))

    def test_cardinality_and_schema(self):
        relation = random_valid_time_relation(self.SCHEMA, 200, seed=1)
        assert len(relation) == 200
        assert relation.schema is self.SCHEMA

    def test_deterministic(self):
        a = random_valid_time_relation(self.SCHEMA, 100, seed=9)
        b = random_valid_time_relation(self.SCHEMA, 100, seed=9)
        assert a.multiset_equal(b)
        c = random_valid_time_relation(self.SCHEMA, 100, seed=10)
        assert not a.multiset_equal(c)

    def test_long_lived_fraction_zero(self):
        relation = random_valid_time_relation(
            self.SCHEMA, 150, seed=2, long_lived_fraction=0.0
        )
        assert all(tup.valid.duration == 1 for tup in relation)

    def test_long_lived_fraction_one(self):
        relation = random_valid_time_relation(
            self.SCHEMA, 150, seed=3, long_lived_fraction=1.0, lifespan=500
        )
        long = sum(1 for tup in relation if tup.valid.duration > 1)
        assert long > 100  # edge tuples may clip to duration 1

    def test_lifespan_respected(self):
        relation = random_valid_time_relation(
            self.SCHEMA, 200, seed=4, lifespan=64
        )
        assert all(0 <= tup.vs and tup.ve < 64 for tup in relation)

    def test_composite_keys(self):
        schema = RelationSchema("r", ("k1", "k2"), ())
        relation = random_valid_time_relation(schema, 50, seed=5, n_keys=3)
        assert all(len(tup.key) == 2 for tup in relation)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_valid_time_relation(self.SCHEMA, 10, long_lived_fraction=1.5)
        with pytest.raises(ValueError):
            random_valid_time_relation(self.SCHEMA, 10, n_keys=0)


class TestRandomJoinPair:
    def test_pair_is_joinable_and_joins(self):
        r, s = random_join_pair(300, seed=6, n_keys=8)
        result = reference_join(r, s)
        assert len(result) > 0

    def test_pair_relations_differ(self):
        r, s = random_join_pair(100, seed=7)
        assert [t.valid for t in r] != [t.valid for t in s]

    def test_usable_with_partition_join(self):
        from repro.core.partition_join import PartitionJoinConfig, partition_join
        from repro.storage.page import PageSpec

        r, s = random_join_pair(400, seed=8)
        run = partition_join(
            r, s, PartitionJoinConfig(memory_pages=10, page_spec=PageSpec(512, 128))
        )
        assert run.result.multiset_equal(reference_join(r, s))
