"""Unit tests for interval-set operations (normalize / subtract / covers)."""

from repro.time.interval import Interval
from repro.time.intervalset import covers, normalize, subtract, total_duration


class TestNormalize:
    def test_empty(self):
        assert normalize([]) == []

    def test_merges_overlapping(self):
        assert normalize([Interval(0, 5), Interval(3, 9)]) == [Interval(0, 9)]

    def test_merges_adjacent(self):
        assert normalize([Interval(0, 4), Interval(5, 9)]) == [Interval(0, 9)]

    def test_keeps_disjoint(self):
        result = normalize([Interval(6, 9), Interval(0, 2)])
        assert result == [Interval(0, 2), Interval(6, 9)]

    def test_duplicates_collapse(self):
        assert normalize([Interval(1, 2), Interval(1, 2)]) == [Interval(1, 2)]

    def test_nested_intervals(self):
        assert normalize([Interval(0, 9), Interval(2, 3)]) == [Interval(0, 9)]


class TestSubtract:
    def test_nothing_covered(self):
        assert subtract(Interval(0, 9), []) == [Interval(0, 9)]

    def test_fully_covered(self):
        assert subtract(Interval(2, 5), [Interval(0, 9)]) == []

    def test_hole_in_middle(self):
        gaps = subtract(Interval(0, 9), [Interval(3, 5)])
        assert gaps == [Interval(0, 2), Interval(6, 9)]

    def test_covered_prefix(self):
        assert subtract(Interval(0, 9), [Interval(0, 4)]) == [Interval(5, 9)]

    def test_covered_suffix(self):
        assert subtract(Interval(0, 9), [Interval(7, 9)]) == [Interval(0, 6)]

    def test_multiple_blocks(self):
        gaps = subtract(Interval(0, 10), [Interval(1, 2), Interval(5, 6), Interval(9, 9)])
        assert gaps == [Interval(0, 0), Interval(3, 4), Interval(7, 8), Interval(10, 10)]

    def test_blocks_outside_are_ignored(self):
        assert subtract(Interval(5, 6), [Interval(0, 1), Interval(8, 9)]) == [Interval(5, 6)]

    def test_overlapping_blocks_handled(self):
        assert subtract(Interval(0, 9), [Interval(0, 5), Interval(4, 7)]) == [Interval(8, 9)]


class TestTotalDurationAndCovers:
    def test_total_duration_deduplicates(self):
        assert total_duration([Interval(0, 4), Interval(3, 6)]) == 7

    def test_covers_true(self):
        assert covers([Interval(0, 4), Interval(5, 9)], Interval(2, 8))

    def test_covers_false_with_gap(self):
        assert not covers([Interval(0, 3), Interval(6, 9)], Interval(2, 8))
