"""Unit tests for the Section 5 tuple-cache buffer reservation."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.model.errors import PlanError
from repro.storage.page import PageSpec
from tests.conftest import random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)


class TestCacheReservation:
    def test_results_unchanged_by_reservation(self, schema_r, schema_s):
        r = random_relation(schema_r, 500, seed=211, long_lived_fraction=0.5)
        s = random_relation(schema_s, 500, seed=212, long_lived_fraction=0.5)
        expected = reference_join(r, s)
        for reserve in (0, 2, 8):
            run = partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=20, page_spec=SPEC, cache_buffer_pages=reserve
                ),
            )
            assert run.result.multiset_equal(expected), reserve

    def test_resident_cache_eliminates_spill(self, schema_r, schema_s):
        r = random_relation(schema_r, 600, seed=213, long_lived_fraction=0.6)
        s = random_relation(schema_s, 600, seed=214, long_lived_fraction=0.6)

        def run_with(reserve):
            return partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=60, page_spec=SPEC, cache_buffer_pages=reserve
                ),
            )

        paged = run_with(0)
        assert paged.outcome.cache_tuples_spilled > 0
        # Size the reservation from the observed peak so the whole cache of
        # any one partition fits in the resident area with slack.
        reserve = SPEC.pages_for_tuples(paged.outcome.cache_tuples_peak) + 4
        resident = run_with(reserve)
        assert resident.outcome.cache_tuples_spilled < paged.outcome.cache_tuples_spilled
        assert resident.outcome.cache_tuples_peak > 0  # caching still happened

    def test_reservation_cannot_consume_whole_buffer(self, schema_r, schema_s):
        r = random_relation(schema_r, 300, seed=215)
        s = random_relation(schema_s, 300, seed=216)
        with pytest.raises(PlanError, match="leaves no"):
            partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=8, page_spec=SPEC, cache_buffer_pages=5
                ),
            )

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            PartitionJoinConfig(memory_pages=8, cache_buffer_pages=-1)
