"""Unit tests for I/O statistics and the cost model."""

import pytest

from repro.storage.iostats import CostModel, IOStatistics, PhaseTracker


class TestCostModel:
    def test_defaults(self):
        model = CostModel()
        assert model.io_ran == 5.0
        assert model.io_seq == 1.0
        assert model.ratio == 5.0

    def test_with_ratio(self):
        model = CostModel.with_ratio(10)
        assert model.io_ran == 10.0
        assert model.io_seq == 1.0

    def test_rejects_random_cheaper_than_sequential(self):
        with pytest.raises(ValueError):
            CostModel(io_ran=1, io_seq=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CostModel(io_ran=0, io_seq=0)

    def test_cost_of_run(self):
        model = CostModel.with_ratio(5)
        assert model.cost_of_run(0) == 0.0
        assert model.cost_of_run(1) == 5.0
        assert model.cost_of_run(10) == 5.0 + 9.0


class TestIOStatistics:
    def test_record_and_totals(self):
        stats = IOStatistics()
        stats.record(write=False, sequential=False)
        stats.record(write=False, sequential=True, count=3)
        stats.record(write=True, sequential=False, count=2)
        stats.record(write=True, sequential=True)
        assert stats.random_reads == 1
        assert stats.sequential_reads == 3
        assert stats.random_writes == 2
        assert stats.sequential_writes == 1
        assert stats.total_ops == 7
        assert stats.reads == 4
        assert stats.writes == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IOStatistics().record(write=False, sequential=False, count=-1)

    def test_cost_weighting(self):
        stats = IOStatistics(random_reads=2, sequential_reads=10)
        assert stats.cost(CostModel.with_ratio(5)) == 2 * 5 + 10

    def test_add_and_diff(self):
        a = IOStatistics(1, 2, 3, 4)
        b = IOStatistics(10, 20, 30, 40)
        b.add(a)
        assert b == IOStatistics(11, 22, 33, 44)
        assert b.diff(a) == IOStatistics(10, 20, 30, 40)

    def test_copy_is_independent(self):
        a = IOStatistics(1, 1, 1, 1)
        b = a.copy()
        b.random_reads = 99
        assert a.random_reads == 1


class TestMergeAndPipelineTags:
    def test_merge_accumulates_and_returns_self(self):
        a = IOStatistics(1, 2, 3, 4, retry_reads=1, prefetch_reads=2)
        b = IOStatistics(10, 20, 30, 40, retry_writes=5, writeback_writes=6)
        out = a.merge(b)
        assert out is a
        assert (a.random_reads, a.sequential_reads) == (11, 22)
        assert (a.random_writes, a.sequential_writes) == (33, 44)
        assert (a.retry_reads, a.retry_writes) == (1, 5)
        assert (a.prefetch_reads, a.writeback_writes) == (2, 6)

    def test_iadd_is_merge(self):
        a = IOStatistics(1, 0, 0, 0)
        a += IOStatistics(0, 0, 1, 0)
        assert a.total_ops == 2

    def test_self_merge_rejected(self):
        """The classic double-count bug: folding a ledger into itself."""
        a = IOStatistics(1, 2, 3, 4)
        with pytest.raises(ValueError):
            a.merge(a)
        with pytest.raises(ValueError):
            a += a
        assert a.total_ops == 10  # untouched by the rejected merges

    def test_merge_of_empty_ledger_is_identity(self):
        a = IOStatistics(1, 2, 3, 4, retry_reads=5, prefetch_reads=6)
        before = a.as_dict()
        a.merge(IOStatistics())
        assert a.as_dict() == before

    def test_record_tag_routes_to_named_field(self):
        stats = IOStatistics()
        for tag in IOStatistics.TAG_FIELDS:
            stats.record_tag(tag, 2)
        assert stats.retry_reads == 2
        assert stats.retry_writes == 2
        assert stats.prefetch_reads == 2
        assert stats.writeback_writes == 2
        # Tags annotate already-recorded ops; they never mint main-bucket ops.
        assert stats.total_ops == 0

    def test_record_tag_rejects_unknown_tag(self):
        with pytest.raises(ValueError, match="unknown I/O tag"):
            IOStatistics().record_tag("speculative_reads")

    def test_record_tag_rejects_negative_count(self):
        stats = IOStatistics()
        with pytest.raises(ValueError):
            stats.record_tag("retry_reads", -1)
        assert stats.retry_reads == 0

    def test_as_dict_covers_every_tag_field(self):
        snapshot = IOStatistics().as_dict()
        for tag in IOStatistics.TAG_FIELDS:
            assert tag in snapshot

    def test_worker_ledgers_reconcile_exactly(self):
        """Per-worker ledgers merged once must equal the combined stream:
        no operation lost, none double-counted."""
        workers = [
            IOStatistics(2, 5, 1, 0, prefetch_reads=3),
            IOStatistics(0, 7, 0, 4, writeback_writes=2),
            IOStatistics(1, 1, 1, 1, retry_reads=1),
        ]
        total = IOStatistics()
        for ledger in workers:
            total += ledger
        assert total.total_ops == sum(w.total_ops for w in workers)
        assert total.reads == sum(w.reads for w in workers)
        assert total.writes == sum(w.writes for w in workers)
        assert total.pipeline_ops == sum(w.pipeline_ops for w in workers)
        assert total.retry_ops == sum(w.retry_ops for w in workers)

    def test_pipeline_tags_never_touch_main_buckets(self):
        stats = IOStatistics()
        stats.record_pipeline(write=False, count=3)
        stats.record_pipeline(write=True, count=2)
        assert stats.total_ops == 0
        assert stats.cost(CostModel()) == 0.0
        assert stats.prefetch_reads == 3
        assert stats.writeback_writes == 2
        assert stats.pipeline_ops == 5

    def test_record_pipeline_rejects_negative(self):
        with pytest.raises(ValueError):
            IOStatistics().record_pipeline(write=False, count=-1)

    def test_copy_and_diff_carry_pipeline_tags(self):
        stats = IOStatistics(5, 5, 5, 5, prefetch_reads=2, writeback_writes=1)
        snap = stats.copy()
        stats.record(write=False, sequential=True)
        stats.record_pipeline(write=False)
        delta = stats.diff(snap)
        assert delta.sequential_reads == 1
        assert delta.prefetch_reads == 1
        assert delta.writeback_writes == 0
        assert snap.prefetch_reads == 2  # copy is independent

    def test_repr_mentions_pipeline_only_when_present(self):
        assert "prefetch" not in repr(IOStatistics(1, 1, 1, 1))
        assert "prefetch_r=2" in repr(IOStatistics(prefetch_reads=2))


class TestPhaseTracker:
    def test_phases_attribute_io(self):
        tracker = PhaseTracker()
        with tracker.phase("sample"):
            tracker.stats.record(write=False, sequential=False, count=4)
        with tracker.phase("join"):
            tracker.stats.record(write=False, sequential=True, count=10)
        model = CostModel.with_ratio(5)
        assert tracker.phase_cost("sample", model) == 20
        assert tracker.phase_cost("join", model) == 10
        assert tracker.phase_cost("absent", model) == 0
        assert tracker.breakdown(model) == {"sample": 20.0, "join": 10.0}

    def test_repeated_phase_accumulates(self):
        tracker = PhaseTracker()
        for _ in range(2):
            with tracker.phase("p"):
                tracker.stats.record(write=True, sequential=True)
        assert tracker.phases["p"].sequential_writes == 2

    def test_nested_phase_rejected(self):
        tracker = PhaseTracker()
        with pytest.raises(RuntimeError):
            with tracker.phase("outer"):
                with tracker.phase("inner"):
                    pass

    def test_io_outside_phase_not_attributed(self):
        tracker = PhaseTracker()
        tracker.stats.record(write=False, sequential=True)
        with tracker.phase("p"):
            pass
        assert tracker.phases["p"].total_ops == 0
        assert tracker.stats.total_ops == 1
