"""Unit tests for the experiment config, runner, and report helpers."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import crossover, format_table, parameter_table, verdict_lines
from repro.experiments.runner import run_algorithm
from repro.storage.iostats import CostModel
from repro.workloads.specs import DatabaseSpec


class TestExperimentConfig:
    def test_memory_scaling(self):
        config = ExperimentConfig(scale=16)
        assert config.memory_pages(1) == 64
        assert config.memory_pages(32) == 2048

    def test_memory_too_small_after_scaling(self):
        config = ExperimentConfig(scale=1024)
        with pytest.raises(ValueError, match="smaller scale"):
            config.memory_pages(0.001)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)

    def test_database_caching(self):
        config = ExperimentConfig(scale=256)
        spec = DatabaseSpec("cache_test", relation_tuples=5120)
        first = config.database(spec)
        second = config.database(spec)
        assert first[0] is second[0]


class TestRunner:
    @pytest.fixture
    def tiny(self):
        config = ExperimentConfig(scale=512)
        spec = DatabaseSpec("runner_test", long_lived_per_relation=8192)
        r, s = config.database(spec)
        return config, r, s

    def test_all_algorithms_run(self, tiny):
        config, r, s = tiny
        model = CostModel.with_ratio(5)
        for name in ("partition", "sort_merge", "nested_loop", "nested_loop_sim"):
            run = run_algorithm(name, r, s, 32, model, config)
            assert run.cost > 0

    def test_unknown_algorithm(self, tiny):
        config, r, s = tiny
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithm("magic", r, s, 32, CostModel(), config)

    def test_nested_loop_sim_matches_analytic(self, tiny):
        config, r, s = tiny
        model = CostModel.with_ratio(5)
        analytic = run_algorithm("nested_loop", r, s, 16, model, config)
        simulated = run_algorithm("nested_loop_sim", r, s, 16, model, config)
        assert simulated.cost == pytest.approx(analytic.cost)


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(("name", "cost"), [("a", 1234.0), ("bbbb", 5.0)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "1,234" in table

    def test_parameter_table_contains_page_size(self):
        assert "page_bytes" in parameter_table()

    def test_verdict_lines(self):
        assert "all paper claims hold" in verdict_lines("fig6", [])
        text = verdict_lines("fig6", ["problem one"])
        assert "1 deviation" in text
        assert "problem one" in text

    def test_crossover_interpolation(self):
        xs = [1, 2, 4]
        a = [10, 6, 2]  # falls below b between x=2 and x=4
        b = [5, 5, 5]
        point = crossover(xs, a, b)
        assert point == pytest.approx(2.5)

    def test_crossover_none(self):
        assert crossover([1, 2], [10, 9], [1, 1]) is None

    def test_crossover_validates_lengths(self):
        with pytest.raises(ValueError):
            crossover([1], [1, 2], [1, 2])
