"""Unit tests for the incrementally maintained materialized join."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.intervals import PartitionMap
from repro.incremental.maintenance import (
    apply_batch,
    verify_against_recompute,
)
from repro.incremental.view import MaterializedVTJoin
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


def vt(key, payload, start, end):
    return VTTuple((key,), (payload,), Interval(start, end))


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])


@pytest.fixture
def view(pmap):
    return MaterializedVTJoin(SCHEMA_R, SCHEMA_S, pmap)


class TestInserts:
    def test_insert_produces_join_tuples(self, view):
        view.insert_r(vt("x", "a", 0, 9))
        stats = view.insert_s(vt("x", "b", 5, 14))
        assert stats.delta_tuples == 1
        assert len(view) == 1
        snapshot = view.snapshot()
        assert snapshot.tuples[0].valid == Interval(5, 9)

    def test_cross_partition_pair_counted_once(self, view):
        view.insert_r(vt("x", "a", 0, 29))
        stats = view.insert_s(vt("x", "b", 0, 29))
        assert stats.delta_tuples == 1
        assert len(view) == 1

    def test_locality_of_instantaneous_update(self, view):
        view.insert_r(vt("x", "a", 0, 29))
        stats = view.insert_s(vt("x", "b", 5, 5))
        assert stats.partitions_touched == 1

    def test_key_mismatch_no_delta(self, view):
        view.insert_r(vt("x", "a", 0, 9))
        stats = view.insert_s(vt("y", "b", 0, 9))
        assert stats.delta_tuples == 0
        assert len(view) == 0


class TestDeletes:
    def test_delete_retracts_contribution(self, view):
        x = vt("x", "a", 0, 9)
        y = vt("x", "b", 5, 14)
        view.insert_r(x)
        view.insert_s(y)
        view.delete_r(x)
        assert len(view) == 0

    def test_delete_unknown_tuple_raises(self, view):
        with pytest.raises(KeyError):
            view.delete_r(vt("x", "a", 0, 9))

    def test_duplicate_insert_counts_multiplicity(self, view):
        x = vt("x", "a", 0, 9)
        view.insert_r(x)
        view.insert_r(x)
        view.insert_s(vt("x", "b", 0, 9))
        assert len(view) == 2
        view.delete_r(x)
        assert len(view) == 1


class TestBatchAndVerify:
    def test_apply_batch_and_recompute_agree(self, pmap):
        view = MaterializedVTJoin(SCHEMA_R, SCHEMA_S, pmap)
        r_rel = ValidTimeRelation(SCHEMA_R)
        s_rel = ValidTimeRelation(SCHEMA_S)
        updates = []
        for i in range(25):
            tup = vt(f"k{i % 4}", f"a{i}", (i * 3) % 28, min(29, (i * 3) % 28 + i % 9))
            updates.append(("insert", "r", tup))
            r_rel.add(tup)
        for i in range(25):
            tup = vt(f"k{i % 4}", f"b{i}", (i * 5) % 28, min(29, (i * 5) % 28 + i % 7))
            updates.append(("insert", "s", tup))
            s_rel.add(tup)
        stats = apply_batch(view, updates)
        assert stats.updates == 50
        assert verify_against_recompute(view, r_rel, s_rel)

    def test_unknown_operation_rejected(self, view):
        with pytest.raises(ValueError):
            apply_batch(view, [("upsert", "r", vt("x", "a", 0, 1))])

    def test_initial_contents_constructor(self, pmap):
        r_tuples = [vt("x", "a", 0, 9), vt("y", "c", 10, 19)]
        s_tuples = [vt("x", "b", 5, 14)]
        view = MaterializedVTJoin(
            SCHEMA_R, SCHEMA_S, pmap, r_tuples, s_tuples
        )
        expected = reference_join(
            ValidTimeRelation(SCHEMA_R, r_tuples),
            ValidTimeRelation(SCHEMA_S, s_tuples),
        )
        assert view.snapshot().multiset_equal(expected)

    def test_incompatible_schemas_rejected(self, pmap):
        with pytest.raises(Exception):
            MaterializedVTJoin(
                SCHEMA_R, RelationSchema("bad", ("other",)), pmap
            )
