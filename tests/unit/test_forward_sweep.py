"""Unit tests for the forward-scan sweep operator and its planning stack.

Covers the pieces the property suite (tests/property/test_prop_allen.py)
exercises only end to end: the gapless hash map's open-addressing and
swap-with-last mechanics on both backends, the Allen predicate registry,
the endpoint-sortedness metadata, the planner's grant clamp and crossover
model, EXPLAIN's operator surfacing, and the ledger/metrics
reconciliation of a sweep run.
"""

from __future__ import annotations

import pytest

from repro.algebra.predicates import (
    DISJOINT_RELATIONS,
    NATURAL_PREDICATE,
    PREDICATES,
    SIGN_GRID,
    TemporalPredicate,
    predicate_names,
    resolve_predicate,
)
from repro.core.partition_join import (
    ALL_EXECUTION_MODES,
    EXECUTION_MODES,
    BufferReduction,
    PartitionJoinConfig,
    partition_join,
)
from repro.core.planner import (
    FORWARD_SWEEP_GRANT_PAGES,
    MIN_GRANT_PAGES,
    choose_physical_operator,
    estimate_forward_sweep_cost,
    estimate_grant_pages,
)
from repro.engine.catalog import analyze
from repro.engine.database import TemporalDatabase
from repro.engine.optimizer import choose_algorithm, estimate_costs
from repro.exec.backend import HAVE_NUMPY
from repro.exec.forward_sweep import (
    GaplessHashMap,
    forward_sweep_join,
    resolve_sweep_backend,
)
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.obs import Observability, ObservabilityConfig
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.allen import AllenRelation
from repro.time.interval import Interval

BACKENDS = ("numpy", "python") if HAVE_NUMPY else ("python",)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)
SCHEMA_R = RelationSchema("r", ("k",), ("a",), tuple_bytes=128)
SCHEMA_S = RelationSchema("s", ("k",), ("b",), tuple_bytes=128)


def make_relation(schema, tag, rows):
    return ValidTimeRelation(
        schema,
        [
            VTTuple((key,), (f"{tag}{i}",), Interval(start, end))
            for i, (key, start, end) in enumerate(rows)
        ],
    )


# -- predicate registry -------------------------------------------------------


class TestPredicateRegistry:
    def test_sign_grid_covers_all_intersecting_relations(self):
        assert len(SIGN_GRID) == 9
        assert set(SIGN_GRID) == {
            (ds, de) for ds in (-1, 0, 1) for de in (-1, 0, 1)
        }
        assert set(SIGN_GRID.values()) | set(DISJOINT_RELATIONS) == set(
            AllenRelation
        )

    def test_registry_has_thirteen_singles_plus_disjunctions(self):
        singles = [p for p in PREDICATES.values() if len(p.relations) == 1]
        assert len(singles) == 13
        assert PREDICATES["intersects"].is_natural
        assert len(PREDICATES["covers"].relations) == 4

    def test_aliases_resolve(self):
        assert resolve_predicate("natural").name == NATURAL_PREDICATE
        assert resolve_predicate("equal").name == "equals"

    def test_unknown_predicate_lists_names(self):
        with pytest.raises(ValueError, match="before"):
            resolve_predicate("sideways")
        assert list(predicate_names()) == sorted(PREDICATES)

    def test_intersection_stamp_rejected_for_disjoint_relations(self):
        with pytest.raises(ValueError, match="intersection timestamps undefined"):
            TemporalPredicate("bad", frozenset({AllenRelation.BEFORE}))
        ok = TemporalPredicate(
            "ok", frozenset({AllenRelation.BEFORE}), timestamp="left"
        )
        assert ok.disjoint_relations == frozenset({AllenRelation.BEFORE})


# -- the gapless hash map ------------------------------------------------------


class TestGaplessHashMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_probe_expire(self, backend):
        gmap = GaplessHashMap(backend)
        gmap.insert(7, 0, 5, 0)
        gmap.insert(7, 2, 3, 1)
        gmap.insert(9, 0, 9, 2)
        assert gmap.size == 3 and gmap.peak == 3
        starts, ends, rows, n = gmap.probe(7, boundary=0)
        assert n == 2 and sorted(int(x) for x in rows[:n]) == [0, 1]
        # Boundary 4 expires the interval ending at 3; the run stays gapless.
        starts, ends, rows, n = gmap.probe(7, boundary=4)
        assert n == 1 and int(rows[0]) == 0
        assert gmap.size == 2 and gmap.expired == 1
        assert gmap.probe(12345, boundary=0) is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_table_resizes_past_initial_capacity(self, backend):
        gmap = GaplessHashMap(backend)
        for code in range(100):
            gmap.insert(code, code, code + 1, code)
        assert gmap.size == 100 and gmap.peak == 100
        for code in range(100):
            live = gmap.probe(code, boundary=0)
            assert live is not None and live[3] == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_peak_survives_expiration(self, backend):
        gmap = GaplessHashMap(backend)
        for i in range(10):
            gmap.insert(1, 0, i, i)
        gmap.probe(1, boundary=100)
        assert gmap.size == 0 and gmap.peak == 10 and gmap.expired == 10

    def test_backend_resolution(self):
        assert resolve_sweep_backend("python") == "python"
        auto = resolve_sweep_backend(None)
        assert auto == ("numpy" if HAVE_NUMPY else "python")
        if not HAVE_NUMPY:
            with pytest.raises(ValueError, match="numpy"):
                resolve_sweep_backend("numpy")


# -- configuration validation --------------------------------------------------


class TestConfigValidation:
    def test_forward_sweep_not_in_partition_mode_tuple(self):
        assert "forward-sweep" not in EXECUTION_MODES
        assert ALL_EXECUTION_MODES == EXECUTION_MODES + ("forward-sweep",)

    def test_non_natural_predicate_requires_forward_sweep(self):
        with pytest.raises(ValueError, match="forward-sweep"):
            PartitionJoinConfig(memory_pages=16, execution="tuple", predicate="during")
        config = PartitionJoinConfig(
            memory_pages=16, execution="forward-sweep", predicate="during"
        )
        assert config.predicate == "during"

    def test_forward_sweep_rejects_checkpointing(self):
        with pytest.raises(ValueError, match="checkpoint"):
            PartitionJoinConfig(
                memory_pages=16, execution="forward-sweep", checkpoint_interval=2
            )

    def test_forward_sweep_rejects_buffer_reductions(self):
        with pytest.raises(ValueError, match="buffer_reductions"):
            PartitionJoinConfig(
                memory_pages=16,
                execution="forward-sweep",
                buffer_reductions=(BufferReduction(at_position=1, buff_size=4),),
            )

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError, match="unknown temporal predicate"):
            PartitionJoinConfig(memory_pages=16, predicate="sideways")


# -- endpoint-sortedness metadata ---------------------------------------------


class TestEndpointSortedMetadata:
    def test_bulk_load_detects_order(self):
        layout = DiskLayout(spec=SPEC)
        sorted_rel = make_relation(
            SCHEMA_R, "a", [(1, 0, 4), (1, 2, 3), (2, 2, 5), (1, 7, 9)]
        )
        heap = layout.place_relation(sorted_rel)
        assert heap.endpoint_sorted
        unsorted_rel = make_relation(SCHEMA_R, "a", [(1, 5, 9), (1, 0, 4)])
        assert not layout.place_relation(unsorted_rel).endpoint_sorted

    def test_append_maintains_and_invalidates(self):
        layout = DiskLayout(spec=SPEC)
        heap = layout.temp_file("h")
        assert heap.endpoint_sorted  # empty: trivially sorted
        heap.append(VTTuple((1,), ("a",), Interval(0, 5)))
        heap.append(VTTuple((1,), ("b",), Interval(0, 6)))
        assert heap.endpoint_sorted
        heap.append(VTTuple((1,), ("c",), Interval(0, 2)))
        assert not heap.endpoint_sorted

    def test_relation_and_catalog_agree(self):
        rel = make_relation(SCHEMA_R, "a", [(1, 0, 4), (1, 2, 3)])
        assert rel.endpoint_sorted()
        assert analyze(rel, SPEC).endpoint_sorted
        rel2 = make_relation(SCHEMA_R, "a", [(1, 5, 9), (1, 0, 4)])
        assert not rel2.endpoint_sorted()
        assert not analyze(rel2, SPEC).endpoint_sorted
        assert analyze(ValidTimeRelation(SCHEMA_R), SPEC).endpoint_sorted


# -- planner: grants and the crossover model ----------------------------------


class TestSweepPlanning:
    MODEL = CostModel()

    def test_forward_sweep_grant_is_clamped(self):
        assert estimate_grant_pages(
            500, 500, 256, execution="forward-sweep"
        ) == FORWARD_SWEEP_GRANT_PAGES
        assert (
            estimate_grant_pages(500, 500, 4, execution="forward-sweep")
            == MIN_GRANT_PAGES
        )

    def test_cost_estimate_decomposition(self):
        est = estimate_forward_sweep_cost(
            20, 30, self.MODEL, outer_sorted=True, inner_sorted=True
        )
        assert est.c_sort == 0.0
        assert est.c_scan == self.MODEL.cost_of_run(20) + self.MODEL.cost_of_run(30)
        one_side = estimate_forward_sweep_cost(
            20, 30, self.MODEL, outer_sorted=False, inner_sorted=True
        )
        assert one_side.c_sort == 2 * self.MODEL.cost_of_run(20)
        assert one_side.total == one_side.c_scan + one_side.c_sort

    def test_crossover_both_sides(self):
        # Sorted inputs large enough to defeat the single-partition
        # shortcut: the sweep's two scans beat Grace partitioning.
        sorted_choice = choose_physical_operator(
            200, 200, 16, self.MODEL, outer_sorted=True, inner_sorted=True
        )
        assert sorted_choice.operator == "forward-sweep"
        assert sorted_choice.sweep_cost < sorted_choice.partition_cost
        # Fully unsorted inputs never compete, whatever the costs say.
        unsorted_choice = choose_physical_operator(
            200, 200, 16, self.MODEL, outer_sorted=False, inner_sorted=False
        )
        assert unsorted_choice.operator == "partition"
        assert "endpoint-sorted" in unsorted_choice.rationale

    def test_non_natural_predicate_forces_sweep(self):
        choice = choose_physical_operator(
            10, 10, 64, self.MODEL, predicate="during"
        )
        assert choice.operator == "forward-sweep"
        assert "during" in choice.rationale

    def test_optimizer_gating(self):
        base = estimate_costs(200, 200, 16, self.MODEL)
        assert "sweep" not in base
        unsorted = estimate_costs(
            200, 200, 16, self.MODEL, endpoint_sorted=(False, False)
        )
        assert "sweep" not in unsorted
        sorted_est = estimate_costs(
            200, 200, 16, self.MODEL, endpoint_sorted=(True, True)
        )
        assert "sweep" in sorted_est
        assert (
            choose_algorithm(
                200, 200, 16, self.MODEL, endpoint_sorted=(True, True)
            )
            == "sweep"
        )
        # The tie-break keeps partition: in-memory inputs cost two scans
        # under both operators.
        assert (
            choose_algorithm(
                4, 4, 64, self.MODEL, endpoint_sorted=(True, True)
            )
            == "partition"
        )


# -- EXPLAIN surfacing ---------------------------------------------------------


def seeded_db(sort_r=True, sort_s=True, n=400):
    import random

    rng = random.Random(7)
    db = TemporalDatabase(memory_pages=16, page_spec=SPEC)
    db.create_relation(RelationSchema("works_on", ("k",), ("a",), tuple_bytes=128))
    db.create_relation(RelationSchema("earns", ("k",), ("b",), tuple_bytes=128))
    rows_r = [
        (f"k{rng.randrange(6)}", f"a{i}", *sorted((rng.randrange(80), rng.randrange(80))))
        for i in range(n)
    ]
    rows_s = [
        (f"k{rng.randrange(6)}", f"b{i}", *sorted((rng.randrange(80), rng.randrange(80))))
        for i in range(n)
    ]
    if sort_r:
        rows_r.sort(key=lambda t: (t[2], t[3]))
    if sort_s:
        rows_s.sort(key=lambda t: (t[2], t[3]))
    db.insert("works_on", rows_r)
    db.insert("earns", rows_s)
    return db


class TestExplainOperator:
    def test_sorted_inputs_choose_the_sweep(self):
        db = seeded_db(sort_r=True, sort_s=True)
        report = db.explain("works_on", "earns")
        assert report.algorithm == "sweep"
        assert report.operator == "forward-sweep"
        assert "physical operator: forward-sweep" in report.render()
        assert report.as_dict()["operator"] == "forward-sweep"
        assert "sweep" in report.estimates

    def test_unsorted_inputs_keep_partitioning(self):
        db = seeded_db(sort_r=False, sort_s=False)
        report = db.explain("works_on", "earns", method="partition")
        assert report.operator == "partition"
        assert "sweep" not in report.estimates

    def test_analyze_reconciles_sweep_phases_exactly(self):
        db = seeded_db(sort_r=True, sort_s=False)
        report = db.explain_analyze("works_on", "earns", method="sweep")
        rows = {p.phase: p for p in report.phases}
        assert rows["sort"].predicted == rows["sort"].actual
        assert rows["join"].predicted == rows["join"].actual
        assert report.predicted_total == report.actual_total

    def test_forced_sweep_on_unsorted_notes_the_cost_model(self):
        db = seeded_db(sort_r=False, sort_s=False)
        report = db.explain("works_on", "earns", method="sweep")
        assert report.operator == "forward-sweep"
        assert "forced" in report.operator_rationale

    def test_predicate_routes_through_the_sweep(self):
        db = seeded_db()
        result = db.join("works_on", "earns", predicate="overlaps")
        assert result.algorithm == "sweep"
        with pytest.raises(ValueError, match="requires method 'sweep'"):
            db.join("works_on", "earns", method="nested_loop", predicate="during")


# -- ledger and metrics reconciliation ----------------------------------------


class TestLedgerReconciliation:
    @pytest.mark.parametrize("sort_inputs", (True, False))
    def test_estimate_matches_charged_cost_exactly(self, sort_inputs):
        db_rows = [(i % 3, 2 * i, 2 * i + 5) for i in range(64)]
        rows = db_rows if sort_inputs else list(reversed(db_rows))
        r = make_relation(SCHEMA_R, "a", rows)
        s = make_relation(SCHEMA_S, "b", rows)
        layout = DiskLayout(spec=SPEC, columnar=True)
        r_file = layout.place_relation(r)
        s_file = layout.place_relation(s)
        assert r_file.endpoint_sorted == sort_inputs
        forward_sweep_join(
            r_file, s_file, r.schema.join_result_schema(s.schema), layout
        )
        model = CostModel()
        est = estimate_forward_sweep_cost(
            r_file.n_pages,
            s_file.n_pages,
            model,
            outer_sorted=sort_inputs,
            inner_sorted=sort_inputs,
        )
        assert layout.tracker.stats.cost(model) == est.total

    def test_metrics_reconcile_with_outcome(self):
        r = make_relation(SCHEMA_R, "a", [(1, 0, 5), (1, 3, 9), (2, 0, 2)])
        s = make_relation(SCHEMA_S, "b", [(1, 4, 8), (2, 1, 6)])
        layout = DiskLayout(spec=SPEC, columnar=True)
        r_file = layout.place_relation(r)
        s_file = layout.place_relation(s)
        obs = Observability(ObservabilityConfig(tracing=False))
        outcome = forward_sweep_join(
            r_file, s_file, r.schema.join_result_schema(s.schema), layout, obs=obs
        )
        snap = obs.metrics_snapshot()
        results = sum(snap["repro_sweep_results_total"]["series"].values())
        pairs = sum(snap["repro_sweep_pairs_total"]["series"].values())
        assert results == outcome.n_result_tuples == 3
        assert pairs == 3
        assert sum(snap["repro_sweep_pages_total"]["series"].values()) > 0

    def test_service_grant_rides_the_sweep_clamp(self):
        db = seeded_db()
        with db.serve(pool_pages=64) as service:
            with service.open_session() as session:
                result = session.join("works_on", "earns", method="sweep")
                assert result.algorithm == "forward-sweep"
                assert result.requested_pages <= FORWARD_SWEEP_GRANT_PAGES
                partitioned = session.join("works_on", "earns", method="partition")
                assert sorted(result.relation.tuples, key=repr) == sorted(
                    partitioned.relation.tuples, key=repr
                )
