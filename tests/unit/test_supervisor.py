"""Unit tests for the lane supervisor itself, against real worker pools.

Chaos tests drive the supervisor through whole joins; here each failure
mode is exercised in isolation against tiny pools: SIGKILLed workers,
wedged dispatches, raising tasks, the quarantine ladder, retirement, spawn
failure, and the teardown contract.  The supervisor is numpy-independent,
so none of this is gated.
"""

import multiprocessing
import time

import pytest

from repro.resilience.report import ResilienceReport
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    LaneSupervisor,
    SupervisionPolicy,
    clear_lane_injector,
    install_lane_injector,
)


def square(x):
    return x * x


def slow_square(x):
    # Slow enough that a scripted SIGKILL always lands mid-dispatch --
    # with instant tasks the kill can arrive after every result is in,
    # and the dispatch (legitimately) succeeds.
    time.sleep(0.3)
    return x * x


def boom(x):
    raise ValueError(f"task {x} always fails")


_INIT_CALLS = []


def _record_init(tag):
    _INIT_CALLS.append(tag)


class ScriptedInjector:
    """Pops one fault per scripted dispatch number (the FaultInjector shape)."""

    def __init__(self, faults):
        self.faults = dict(faults)

    def on_lane_dispatch(self, dispatch_no):
        return self.faults.pop(dispatch_no, None)


def fast_policy(**overrides):
    overrides.setdefault("lane_timeout_seconds", 20.0)
    overrides.setdefault("heartbeat_seconds", 0.05)
    return SupervisionPolicy(**overrides)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lane_timeout_seconds": 0.0},
            {"lane_timeout_seconds": -1.0},
            {"heartbeat_seconds": 0.0},
            {"max_redispatches": -1},
            {"quarantine_after": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.lane_timeout_seconds > 0
        assert policy.quarantine_after >= 0


class TestInProcessFallback:
    def test_single_lane_never_pools(self):
        sup = LaneSupervisor(1)
        try:
            assert sup.ensure_pool() is None
            assert sup.map(square, [1, 2, 3]) == [1, 4, 9]
            assert sup.stats.dispatches == 0  # no pool, no dispatch counted
        finally:
            sup.close()

    def test_initializer_runs_once_in_process(self):
        del _INIT_CALLS[:]
        sup = LaneSupervisor(1, initializer=_record_init, initargs=("a",))
        try:
            sup.map(square, [2])
            sup.map(square, [3])
            assert _INIT_CALLS == ["a"]
        finally:
            sup.close()

    def test_spawn_failure_degrades_and_runs_in_process(self, monkeypatch):
        def refuse():
            raise OSError("no processes here")

        monkeypatch.setattr(multiprocessing, "get_context", refuse)
        report = ResilienceReport()
        sup = LaneSupervisor(2, report=report)
        try:
            assert sup.map(square, [1, 2, 3]) == [1, 4, 9]
            assert sup.retired
            assert [e.kind for e in report.degradations] == ["pool-fallback"]
        finally:
            sup.close()

    def test_empty_task_list_is_trivial(self):
        sup = LaneSupervisor(2)
        try:
            assert sup.map(square, []) == []
            assert sup.stats.dispatches == 0
        finally:
            sup.close()


class TestPooledDispatch:
    def test_clean_pool_round_trip(self):
        sup = LaneSupervisor(2, policy=fast_policy())
        try:
            assert sup.map(square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            assert sup.stats.dispatches == 1
            assert sup.stats.failures == 0
        finally:
            sup.close()

    def test_killed_worker_is_redispatched(self):
        report = ResilienceReport()
        sup = LaneSupervisor(
            2,
            policy=fast_policy(),
            injector=ScriptedInjector({1: "kill"}),
            report=report,
        )
        try:
            assert sup.map(slow_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            assert sup.stats.deaths == 1
            assert sup.stats.redispatches == 1
            assert sup.stats.dispatches == 2
            assert sup.stats.backoff_ops == RetryPolicy().penalty(1)
            assert not sup.retired
            assert [e.kind for e in report.degradations] == ["lane-death"]
        finally:
            sup.close()

    def test_hung_dispatch_is_redispatched(self):
        report = ResilienceReport()
        sup = LaneSupervisor(
            2,
            policy=fast_policy(lane_timeout_seconds=0.4),
            injector=ScriptedInjector({1: "hang"}),
            report=report,
        )
        try:
            assert sup.map(square, [5, 6]) == [25, 36]
            assert sup.stats.hangs == 1
            assert sup.stats.redispatches == 1
            assert [e.kind for e in report.degradations] == ["lane-hang"]
        finally:
            sup.close()

    def test_raising_task_retires_then_raises_in_process(self):
        report = ResilienceReport()
        sup = LaneSupervisor(
            2,
            policy=fast_policy(max_redispatches=1, quarantine_after=0),
            report=report,
        )
        try:
            with pytest.raises(ValueError):
                sup.map(boom, [1, 2])
            # Failures counted until retirement, then the in-process run
            # surfaced the genuine bug unwrapped.
            assert sup.stats.errors == 2
            assert sup.retired
            kinds = [e.kind for e in report.degradations]
            assert kinds == ["lane-error", "lane-error", "lane-retired"]
        finally:
            sup.close()

    def test_quarantine_ladder_shrinks_to_retirement(self):
        report = ResilienceReport()
        sup = LaneSupervisor(
            3,
            policy=fast_policy(quarantine_after=1, max_redispatches=5),
            injector=ScriptedInjector({1: "kill", 2: "kill"}),
            report=report,
        )
        try:
            assert sup.map(slow_square, [1, 2, 3]) == [1, 4, 9]
            assert sup.stats.deaths == 2
            assert sup.stats.quarantines == 2
            assert sup.lanes == 1
            assert sup.retired
            kinds = [e.kind for e in report.degradations]
            assert kinds.count("lane-quarantine") == 2
            assert "lane-retired" in kinds
        finally:
            sup.close()

    def test_recovered_success_resets_the_consecutive_count(self):
        sup = LaneSupervisor(
            2,
            policy=fast_policy(quarantine_after=2),
            injector=ScriptedInjector({1: "kill", 3: "kill"}),
        )
        try:
            assert sup.map(slow_square, [1, 2]) == [1, 4]  # dispatch 1 dies, 2 clean
            assert sup.map(slow_square, [3, 4]) == [9, 16]  # dispatch 3 dies, 4 clean
            # Two isolated failures never reach quarantine_after=2.
            assert sup.stats.deaths == 2
            assert sup.stats.quarantines == 0
            assert not sup.retired
        finally:
            sup.close()


class TestLifecycle:
    def test_close_is_idempotent_and_runs_teardowns_once(self):
        calls = []
        sup = LaneSupervisor(2)
        sup.add_teardown(lambda: calls.append("closed"))
        sup.close()
        sup.close()
        assert calls == ["closed"]
        assert sup.retired
        assert sup.ensure_pool() is None

    def test_teardown_exceptions_are_contained(self):
        def angry():
            raise RuntimeError("teardown tantrum")

        sup = LaneSupervisor(2)
        sup.add_teardown(angry)
        sup.close()  # must not raise

    def test_global_injector_hook(self):
        install_lane_injector(ScriptedInjector({1: "kill"}))
        try:
            sup = LaneSupervisor(2, policy=fast_policy())
            try:
                assert sup.map(slow_square, [7, 8]) == [49, 64]
                assert sup.stats.deaths == 1
            finally:
                sup.close()
        finally:
            clear_lane_injector()

    def test_clear_global_injector_disarms_it(self):
        install_lane_injector(ScriptedInjector({1: "kill"}))
        clear_lane_injector()
        sup = LaneSupervisor(2, policy=fast_policy())
        try:
            assert sup.map(square, [9]) == [81]
            assert sup.stats.failures == 0
        finally:
            sup.close()
