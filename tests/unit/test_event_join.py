"""Unit tests for the event-join and TE-outerjoin [SG89]."""

from repro.model.schema import RelationSchema
from repro.variants.event_join import event_join, te_outerjoin
from repro.time.interval import Interval
from tests.conftest import make_relation


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


class TestTEOuterjoin:
    def test_fully_matched_tuple_has_no_padding(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 2, 5)])
        s = make_relation(SCHEMA_S, [("x", "b1", 0, 9)])
        result = te_outerjoin(r, s)
        assert len(result) == 1
        assert result.tuples[0].payload == ("a1", "b1")

    def test_unmatched_validity_is_null_padded(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 9)])
        s = make_relation(SCHEMA_S, [("x", "b1", 3, 5)])
        result = te_outerjoin(r, s)
        stamps = {(t.valid.start, t.valid.end): t.payload for t in result}
        assert stamps[(3, 5)] == ("a1", "b1")
        assert stamps[(0, 2)] == ("a1", None)
        assert stamps[(6, 9)] == ("a1", None)

    def test_no_match_at_all(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 4)])
        s = make_relation(SCHEMA_S, [("y", "b1", 0, 4)])
        result = te_outerjoin(r, s)
        assert len(result) == 1
        assert result.tuples[0].payload == ("a1", None)
        assert result.tuples[0].valid == Interval(0, 4)

    def test_right_side_not_preserved(self):
        r = make_relation(SCHEMA_R, [])
        s = make_relation(SCHEMA_S, [("x", "b1", 0, 4)])
        assert len(te_outerjoin(r, s)) == 0


class TestEventJoin:
    def test_merges_both_histories(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 5)])
        s = make_relation(SCHEMA_S, [("x", "b1", 3, 9)])
        result = event_join(r, s)
        stamps = {(t.valid.start, t.valid.end): t.payload for t in result}
        assert stamps[(3, 5)] == ("a1", "b1")
        assert stamps[(0, 2)] == ("a1", None)
        assert stamps[(6, 9)] == (None, "b1")

    def test_snapshot_coverage(self):
        """Every chronon either side asserts is covered exactly once per fact."""
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 9), ("x", "a2", 15, 20)])
        s = make_relation(SCHEMA_S, [("x", "b1", 5, 17)])
        result = event_join(r, s)
        for chronon in range(0, 21):
            r_rows = r.timeslice(chronon)
            s_rows = s.timeslice(chronon)
            out_rows = result.timeslice(chronon)
            if r_rows and s_rows:
                assert len(out_rows) == len(r_rows) * len(s_rows)
            elif r_rows or s_rows:
                assert len(out_rows) == len(r_rows) + len(s_rows)
            else:
                assert out_rows == []

    def test_disjoint_keys_fully_padded(self):
        r = make_relation(SCHEMA_R, [("x", "a1", 0, 4)])
        s = make_relation(SCHEMA_S, [("y", "b1", 2, 6)])
        result = event_join(r, s)
        payloads = sorted(str(t.payload) for t in result)
        assert payloads == sorted(
            [str(("a1", None)), str((None, "b1"))]
        )
