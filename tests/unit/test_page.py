"""Unit tests for page geometry."""

import pytest

from repro.model.errors import StorageError
from repro.storage.page import PageSpec


class TestPageSpec:
    def test_default_capacity(self):
        assert PageSpec().capacity == 8  # 1024 / 128

    def test_custom_capacity(self):
        assert PageSpec(page_bytes=4096, tuple_bytes=100).capacity == 40

    def test_tuple_larger_than_page(self):
        with pytest.raises(StorageError):
            PageSpec(page_bytes=100, tuple_bytes=200)

    def test_nonpositive_sizes(self):
        with pytest.raises(StorageError):
            PageSpec(page_bytes=0)
        with pytest.raises(StorageError):
            PageSpec(tuple_bytes=-1)


class TestArithmetic:
    def test_pages_for_tuples(self):
        spec = PageSpec()
        assert spec.pages_for_tuples(0) == 0
        assert spec.pages_for_tuples(1) == 1
        assert spec.pages_for_tuples(8) == 1
        assert spec.pages_for_tuples(9) == 2

    def test_pages_for_tuples_negative(self):
        with pytest.raises(StorageError):
            PageSpec().pages_for_tuples(-1)

    def test_pages_for_bytes(self):
        spec = PageSpec()
        assert spec.pages_for_bytes(1024 * 1024) == 1024
        assert spec.pages_for_bytes(1023) == 0

    def test_tuples_for_pages(self):
        assert PageSpec().tuples_for_pages(3) == 24

    def test_round_trip(self):
        spec = PageSpec()
        for n in (1, 7, 8, 9, 100):
            pages = spec.pages_for_tuples(n)
            assert spec.tuples_for_pages(pages) >= n
