"""Unit tests for estimateCacheSizes (Appendix A.4)."""

import pytest

from repro.core.cache_estimate import estimate_cache_sizes
from repro.core.intervals import PartitionMap
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.interval import Interval


def sample(start, end):
    return VTTuple(("k",), (), Interval(start, end))


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])


@pytest.fixture
def spec():
    return PageSpec(page_bytes=1024, tuple_bytes=128)  # 8 per page


class TestEstimateCacheSizes:
    def test_no_samples(self, pmap, spec):
        assert estimate_cache_sizes([], 1000, pmap, spec) == [0, 0, 0]

    def test_instantaneous_tuples_need_no_cache(self, pmap, spec):
        samples = [sample(i, i) for i in range(0, 30, 3)]
        assert estimate_cache_sizes(samples, 1000, pmap, spec) == [0, 0, 0]

    def test_long_lived_counts_all_but_last_partition(self, pmap, spec):
        # Spans all three partitions: cached for partitions 0 and 1.
        samples = [sample(0, 29)]
        pages = estimate_cache_sizes(samples, 8, pmap, spec)
        assert pages == [1, 1, 0]

    def test_population_scaling(self, pmap, spec):
        # One of two samples is long-lived; population 160 -> ~80 cached
        # tuples -> 10 pages in each non-final overlapped partition.
        samples = [sample(0, 29), sample(5, 5)]
        pages = estimate_cache_sizes(samples, 160, pmap, spec)
        assert pages == [10, 10, 0]

    def test_two_partition_spans(self, pmap, spec):
        samples = [sample(12, 25)]
        pages = estimate_cache_sizes(samples, 8, pmap, spec)
        assert pages == [0, 1, 0]

    def test_negative_population_rejected(self, pmap, spec):
        with pytest.raises(ValueError):
            estimate_cache_sizes([sample(0, 1)], -1, pmap, spec)

    def test_zero_population(self, pmap, spec):
        assert estimate_cache_sizes([sample(0, 29)], 0, pmap, spec) == [0, 0, 0]
