"""Unit tests for the resilience primitives.

Covers the fault injector, retry policy, page frames, the disk's retry
loop and its cost accounting, serialization checksums, and the structured
error context.
"""

import pytest

from repro.model.errors import (
    ChecksumError,
    PermanentIOFaultError,
    ReproError,
    SchemaError,
    SimulatedCrashError,
)
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.resilience.faults import FaultDecision, FaultInjector
from repro.resilience.report import ResilienceReport
from repro.resilience.retry import ResiliencePolicy, RetryPolicy
from repro.storage.disk import SimulatedDisk
from repro.storage.iostats import IOStatistics
from repro.storage.page import PageFrame, frame_page, page_checksum, torn_copy
from repro.storage.serialize import (
    load_columnar,
    load_jsonl,
    save_columnar,
    save_jsonl,
)


class TestFaultInjector:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="read_fault_rate"):
            FaultInjector(read_fault_rate=1.0)
        with pytest.raises(ValueError, match="write_fault_rate"):
            FaultInjector(write_fault_rate=-0.1)
        with pytest.raises(ValueError, match="corruption_rate"):
            FaultInjector(corruption_rate=2.0)

    def test_scripted_faults_burn_down(self):
        injector = FaultInjector()
        injector.fail_read("x", 3, times=2)
        decisions = [
            injector.on_access("x", 0, 3, write=False) for _ in range(3)
        ]
        assert decisions[0] == FaultDecision("io")
        assert decisions[1] == FaultDecision("io")
        assert decisions[2] is None

    def test_scripted_faults_distinguish_direction(self):
        injector = FaultInjector()
        injector.fail_write("x", 0)
        assert injector.on_access("x", 0, 0, write=False) is None
        assert injector.on_access("x", 0, 0, write=True) == FaultDecision("io")

    def test_scripted_times_validated(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match=">= 1"):
            injector.fail_read("x", 0, times=0)
        with pytest.raises(ValueError, match=">= 1"):
            injector.corrupt_read("x", 0, times=-1)

    def test_random_stream_is_a_function_of_the_seed(self):
        def decisions(seed):
            injector = FaultInjector(seed=seed, read_fault_rate=0.3, corruption_rate=0.2)
            return [injector.on_access("x", 0, i, write=False) for i in range(50)]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_device_filter_spares_other_devices_but_not_scripts(self):
        injector = FaultInjector(seed=1, read_fault_rate=0.99, devices=[2])
        assert all(
            injector.on_access("x", 0, i, write=False) is None for i in range(20)
        )
        assert injector.on_access("x", 2, 0, write=False) == FaultDecision("io")
        injector.fail_read("y", 0)
        assert injector.on_access("y", 0, 0, write=False) == FaultDecision("io")

    def test_crash_schedule_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultInjector().schedule_crash(at_op=0)

    def test_crash_is_one_shot(self):
        injector = FaultInjector()
        injector.schedule_crash(at_op=2)
        injector.tick()
        with pytest.raises(SimulatedCrashError) as excinfo:
            injector.tick()
        assert excinfo.value.context["operation"] == 2
        injector.tick()  # disarmed: the resumed run proceeds
        assert injector.ops_seen == 3

    def test_crash_can_be_disarmed(self):
        injector = FaultInjector()
        injector.schedule_crash(at_op=1)
        injector.disarm_crash()
        injector.tick()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_ops"):
            RetryPolicy(backoff_ops=-1)

    def test_penalty_is_linear_and_one_based(self):
        policy = RetryPolicy(max_retries=3, backoff_ops=2)
        assert [policy.penalty(i) for i in (1, 2, 3)] == [2, 4, 6]
        with pytest.raises(ValueError, match="1-based"):
            policy.penalty(0)

    def test_resilience_policy_maps_to_retry_policy(self):
        policy = ResiliencePolicy(retry_limit=5, backoff_ops=3)
        assert policy.retry_policy() == RetryPolicy(max_retries=5, backoff_ops=3)
        with pytest.raises(ValueError, match="retry_limit"):
            ResiliencePolicy(retry_limit=-1)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ResiliencePolicy(checkpoint_interval=-1)


class TestResilienceReport:
    def test_fresh_report_is_clean(self):
        report = ResilienceReport()
        assert report.clean
        assert not report.degraded
        assert report.summary() == "clean"

    def test_events_dirty_the_report(self):
        report = ResilienceReport()
        report.retries = 2
        report.backoff_ops = 3
        event = report.record_degradation("replan", "pool shrank", position=None)
        assert not report.clean
        assert report.degraded
        assert report.degradations == [event]
        summary = report.summary()
        assert "2 retries" in summary
        assert "degraded[replan]" in summary


class TestPageFrames:
    def test_frame_roundtrip_verifies(self):
        frame = frame_page(["a", "b"])
        assert frame.verify()
        assert frame.payload == ["a", "b"]

    def test_tampered_frame_fails_verification(self):
        frame = frame_page(["a", "b"])
        assert not PageFrame(["a"], frame.checksum).verify()

    def test_checksum_is_deterministic(self):
        assert page_checksum(["a", 1]) == page_checksum(["a", 1])
        assert page_checksum(["a", 1]) != page_checksum(["a", 2])

    def test_torn_copy_drops_the_tail(self):
        assert torn_copy(["a", "b", "c"]) == ["a", "b"]
        assert torn_copy((1,)) == ()
        assert torn_copy(17) == ["<torn page>"]


class TestDiskRetries:
    def make_disk(self, **kwargs):
        disk = SimulatedDisk(IOStatistics(), **kwargs)
        extent = disk.allocate("data", device=0, capacity=4)
        disk.load(extent, [["p0"], ["p1"], ["p2"], ["p3"]])
        return disk, extent

    def test_transient_read_fault_is_retried_and_charged(self):
        injector = FaultInjector()
        disk, extent = self.make_disk(
            fault_injector=injector, retry_policy=RetryPolicy(max_retries=2, backoff_ops=1)
        )
        injector.fail_read("data", 1, times=1)
        assert disk.read(extent, 1) == ["p1"]
        # Two attempts plus one backoff penalty op, all charged as reads;
        # the penalty and the re-attempt are additionally tagged as retries.
        assert disk.stats.reads == 3
        assert disk.stats.retry_reads == 2
        assert disk.report.transient_read_faults == 1
        assert disk.report.retries == 1
        assert disk.report.backoff_ops == 1

    def test_transient_write_fault_is_retried_and_charged(self):
        injector = FaultInjector()
        disk, extent = self.make_disk(
            fault_injector=injector, retry_policy=RetryPolicy(max_retries=2, backoff_ops=0)
        )
        injector.fail_write("data", 0, times=1)
        disk.write(extent, 0, ["new"])
        assert disk.peek(extent, 0) == ["new"]
        assert disk.stats.writes == 2
        assert disk.stats.retry_writes == 1
        assert disk.report.transient_write_faults == 1
        assert disk.report.backoff_ops == 0

    def test_exhausted_retries_fail_permanently_with_context(self):
        injector = FaultInjector()
        disk, extent = self.make_disk(
            fault_injector=injector, retry_policy=RetryPolicy(max_retries=2)
        )
        injector.fail_read("data", 2, times=10)
        with pytest.raises(PermanentIOFaultError) as excinfo:
            disk.read(extent, 2)
        error = excinfo.value
        assert error.extent == "data"
        assert error.device == 0
        assert error.page_index == 2
        assert error.context["attempts"] == 3
        assert disk.report.permanent_failures

    def test_no_injector_means_no_retry_accounting(self):
        disk, extent = self.make_disk()
        disk.read(extent, 0)
        assert disk.stats.retry_ops == 0
        assert disk.report.clean

    def test_corrupt_delivery_detected_with_checksums(self):
        injector = FaultInjector()
        disk, extent = self.make_disk(fault_injector=injector, checksums=True)
        injector.corrupt_read("data", 0, times=1)
        assert disk.read(extent, 0) == ["p0"]
        assert disk.report.corruptions_detected == 1
        assert disk.report.retries == 1

    def test_corrupt_delivery_silent_without_checksums(self):
        injector = FaultInjector()
        disk, extent = self.make_disk(fault_injector=injector)
        injector.corrupt_read("data", 0, times=1)
        assert disk.read(extent, 0) == []  # torn: the tail is gone
        assert disk.report.corruptions_undetected == 1
        assert disk.report.retries == 0

    def test_stored_corruption_exhausts_retries_with_checksums(self):
        disk, extent = self.make_disk(
            fault_injector=FaultInjector(),
            retry_policy=RetryPolicy(max_retries=2),
            checksums=True,
        )
        disk.corrupt_stored(extent, 1)
        with pytest.raises(PermanentIOFaultError):
            disk.read(extent, 1)
        assert disk.report.corruptions_detected == 3

    def test_stored_corruption_is_invisible_without_checksums(self):
        disk, extent = self.make_disk()
        disk.corrupt_stored(extent, 1)
        assert disk.read(extent, 1) == []
        assert disk.report.clean

    def test_find_extent(self):
        disk, extent = self.make_disk()
        assert disk.find_extent("data") is extent
        assert disk.find_extent("missing") is None


def relation_fixture():
    schema = RelationSchema("works", join_attributes=("emp",), payload_attributes=("proj",))
    return ValidTimeRelation.from_rows(
        schema, [(1, "a", 0, 5), (2, "b", 3, 9), (1, "c", 4, 8)]
    )


class TestSerializeChecksums:
    def test_jsonl_roundtrip_with_trailer(self, tmp_path):
        relation = relation_fixture()
        path = tmp_path / "rel.jsonl"
        save_jsonl(relation, path)
        assert '"checksum"' in path.read_text().splitlines()[-1]
        loaded = load_jsonl(path)
        assert list(loaded.tuples) == list(relation.tuples)

    def test_jsonl_tamper_detected(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        save_jsonl(relation_fixture(), path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"a"', '"z"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ChecksumError):
            load_jsonl(path)

    def test_jsonl_truncation_detected(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        save_jsonl(relation_fixture(), path)
        lines = path.read_text().splitlines()
        del lines[2]  # drop a tuple record, keep the trailer
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ChecksumError):
            load_jsonl(path)

    def test_jsonl_without_trailer_still_loads(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        save_jsonl(relation_fixture(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        assert len(load_jsonl(path)) == 3

    def test_jsonl_records_after_trailer_rejected(self, tmp_path):
        path = tmp_path / "rel.jsonl"
        save_jsonl(relation_fixture(), path)
        lines = path.read_text().splitlines()
        lines.append(lines[1])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError):
            load_jsonl(path)

    def test_columnar_roundtrip_and_tamper(self, tmp_path):
        relation = relation_fixture()
        path = tmp_path / "rel.json"
        save_columnar(relation, path)
        assert list(load_columnar(path).tuples) == list(relation.tuples)
        path.write_text(path.read_text().replace('"a"', '"z"'))
        with pytest.raises(ChecksumError):
            load_columnar(path)


class TestErrorContext:
    def test_context_renders_after_message(self):
        error = ReproError("it broke", extent="r_part3", device=1, page_index=7)
        assert str(error) == "it broke [extent='r_part3', device=1, page_index=7]"
        assert error.extent == "r_part3"

    def test_no_context_is_just_the_message(self):
        assert str(ReproError("plain")) == "plain"

    def test_extra_keys_are_preserved(self):
        error = ReproError("x", attempts=3)
        assert error.context == {"attempts": 3}
        assert error.extent is None
