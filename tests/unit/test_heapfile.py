"""Unit tests for heap files over the simulated disk."""

import pytest

from repro.model.vtuple import VTTuple
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.page import PageSpec
from repro.time.interval import Interval


def tuples(n):
    return [VTTuple((f"k{i}",), (i,), Interval(i, i + 1)) for i in range(n)]


@pytest.fixture
def disk():
    return SimulatedDisk(IOStatistics())


@pytest.fixture
def spec():
    return PageSpec(page_bytes=1024, tuple_bytes=256)  # 4 tuples per page


class TestBulkLoad:
    def test_load_does_not_charge(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, tuples(10))
        assert disk.stats.total_ops == 0
        assert heap.n_tuples == 10
        assert heap.n_pages == 3  # 4+4+2

    def test_contents_preserved_in_order(self, disk, spec):
        data = tuples(9)
        heap = HeapFile.bulk_load(disk, "r", spec, data)
        assert heap.all_tuples() == data

    def test_empty_load(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, [])
        assert heap.n_pages == 0
        assert heap.all_tuples() == []


class TestAppend:
    def test_append_flushes_full_pages(self, disk, spec):
        heap = HeapFile.create(disk, "w", spec, capacity_tuples=20)
        for tup in tuples(4):
            heap.append(tup)
        assert heap.n_pages == 1  # exactly one full page auto-flushed
        assert disk.stats.writes == 1

    def test_partial_page_needs_flush(self, disk, spec):
        heap = HeapFile.create(disk, "w", spec, capacity_tuples=20)
        for tup in tuples(3):
            heap.append(tup)
        assert heap.n_pages == 0
        heap.flush()
        assert heap.n_pages == 1
        assert heap.n_tuples == 3

    def test_flush_empty_is_noop(self, disk, spec):
        heap = HeapFile.create(disk, "w", spec)
        heap.flush()
        assert disk.stats.total_ops == 0

    def test_append_many(self, disk, spec):
        heap = HeapFile.create(disk, "w", spec, capacity_tuples=20)
        heap.append_many(tuples(10))
        heap.flush()
        assert heap.n_tuples == 10
        assert heap.all_tuples() == tuples(10)


class TestScan:
    def test_scan_charges_linear_run(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, tuples(12))
        assert list(heap.scan()) == tuples(12)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == heap.n_pages - 1

    def test_scan_pages_yields_copies(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, tuples(4))
        page = next(heap.scan_pages())
        page.clear()
        assert heap.all_tuples() == tuples(4)


class TestPositionalAccess:
    def test_page_of_tuple(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, tuples(10))
        assert heap.page_of_tuple(0) == 0
        assert heap.page_of_tuple(3) == 0
        assert heap.page_of_tuple(4) == 1

    def test_read_tuple_charges_one_page(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, tuples(10))
        assert heap.read_tuple(5) == tuples(10)[5]
        assert disk.stats.total_ops == 1

    def test_read_tuple_past_page_contents(self, disk, spec):
        heap = HeapFile.bulk_load(disk, "r", spec, tuples(9))
        # Position 10 maps to page 2 offset 2, but page 2 has one tuple.
        assert heap.read_tuple(10) is None
