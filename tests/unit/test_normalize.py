"""Unit tests for vertical decomposition and join-based reconstruction."""

import pytest

from repro.algebra.coalesce import coalesce
from repro.algebra.normalize import decompose, reconstruct
from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from tests.conftest import make_relation


SCHEMA = RelationSchema("emp", ("name",), ("dept", "salary"))


@pytest.fixture
def history():
    # One employee's history: dept changes at 10, salary at 5 and 15.
    return make_relation(
        SCHEMA,
        [
            ("alice", "db", 100, 0, 4),
            ("alice", "db", 120, 5, 9),
            ("alice", "ai", 120, 10, 14),
            ("alice", "ai", 150, 15, 19),
            ("bob", "os", 90, 0, 19),
        ],
    )


class TestDecompose:
    def test_fragments_have_expected_schemas(self, history):
        dept, salary = decompose(history, [("dept",), ("salary",)])
        assert dept.schema.payload_attributes == ("dept",)
        assert salary.schema.payload_attributes == ("salary",)

    def test_fragments_are_coalesced(self, history):
        dept, _ = decompose(history, [("dept",), ("salary",)])
        # alice's dept "db" spans 0-9 as a single tuple after coalescing.
        alice_db = [t for t in dept if t.payload == ("db",)]
        assert len(alice_db) == 1
        assert alice_db[0].valid.start == 0
        assert alice_db[0].valid.end == 9

    def test_groups_must_partition_payload(self, history):
        with pytest.raises(SchemaError):
            decompose(history, [("dept",)])
        with pytest.raises(SchemaError):
            decompose(history, [("dept", "salary"), ("dept",)])


class TestReconstruct:
    def test_round_trip(self, history):
        fragments = decompose(history, [("dept",), ("salary",)])
        rebuilt = reconstruct(fragments)
        # Reconstruction re-fragments timestamps; compare after coalescing
        # and reordering payload columns (the fragments joined in order).
        assert coalesce(rebuilt).multiset_equal(coalesce(history))

    def test_empty_fragments_rejected(self):
        with pytest.raises(SchemaError):
            reconstruct([])

    def test_three_way_round_trip(self):
        schema = RelationSchema("r", ("k",), ("a", "b", "c"))
        relation = make_relation(
            schema,
            [
                ("x", "a1", "b1", "c1", 0, 9),
                ("x", "a2", "b1", "c2", 10, 19),
            ],
        )
        fragments = decompose(relation, [("a",), ("b",), ("c",)])
        rebuilt = reconstruct(fragments)
        assert coalesce(rebuilt).multiset_equal(coalesce(relation))
