"""Unit tests for inner-relation sampling (the Section 5 caveat fix)."""

import random

import pytest

from repro.baselines.reference import reference_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.core.planner import determine_part_intervals
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.iostats import CostModel
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from tests.conftest import random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)


def mismatched_pair(schema_r, schema_s):
    """Outer all-instantaneous; inner heavily long-lived.

    Exactly the case the paper warns about: the outer's sample carries no
    information about the inner's caching behaviour.
    """
    r = random_relation(schema_r, 700, seed=221, long_lived_fraction=0.0)
    rng = random.Random(222)
    s = ValidTimeRelation(schema_s)
    for number in range(700):
        start = rng.randrange(256)
        s.add(
            VTTuple(
                (f"k{rng.randrange(12)}",),
                (f"q{number}",),
                Interval(start, min(511, start + 256)),
            )
        )
    return r, s


class TestInnerSampling:
    def test_results_identical_either_way(self, schema_r, schema_s):
        r, s = mismatched_pair(schema_r, schema_s)
        expected = reference_join(r, s)
        for sample_inner in (False, True):
            run = partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=12,
                    page_spec=SPEC,
                    sample_inner_relation=sample_inner,
                ),
            )
            assert run.result.multiset_equal(expected), sample_inner

    def test_outer_sample_misestimates_cache(self, schema_r, schema_s):
        """With mismatched distributions, the outer-based estimate sees no
        long-lived tuples at all; the inner-based one does."""
        r, s = mismatched_pair(schema_r, schema_s)
        layout = DiskLayout(spec=SPEC)
        r_file = layout.place_relation(r)
        s_file = layout.place_relation(s)
        outer_based = determine_part_intervals(
            24, r_file, len(s), CostModel(), random.Random(1), prune=False
        )
        inner_based = determine_part_intervals(
            24, r_file, len(s), CostModel(), random.Random(1), prune=False,
            inner=s_file,
        )
        assert sum(outer_based.cache_pages) == 0  # blind to the inner's shape
        assert sum(inner_based.cache_pages) > 0  # sees it

    def test_inner_sampling_charges_io(self, schema_r, schema_s):
        r, s = mismatched_pair(schema_r, schema_s)
        base = PartitionJoinConfig(memory_pages=12, page_spec=SPEC)
        informed = PartitionJoinConfig(
            memory_pages=12, page_spec=SPEC, sample_inner_relation=True
        )
        model = base.cost_model
        cost_blind = partition_join(r, s, base).layout.tracker.phase_cost(
            "sample", model
        )
        cost_informed = partition_join(r, s, informed).layout.tracker.phase_cost(
            "sample", model
        )
        assert cost_informed > cost_blind  # the extra sample is paid for

    def test_empty_inner_ignored(self, schema_r, schema_s):
        r = random_relation(schema_r, 300, seed=223)
        s = ValidTimeRelation(schema_s)
        run = partition_join(
            r,
            s,
            PartitionJoinConfig(
                memory_pages=2048, page_spec=SPEC, sample_inner_relation=True
            ),
        )
        assert len(run.result) == 0
