"""Unit tests for the prefetch/write-behind I/O pipeline.

The two properties everything else leans on:

* **Accounting closes.**  Every pipelined operation is charged into the
  normal buckets exactly once and tagged; stage ledgers, tag counters, and
  the disk's main stream reconcile with no double-counting.
* **Prefix charging.**  Read-ahead issued in serial scan order produces the
  same per-device charge classification as the demand reads it replaces.
"""

import pytest

from repro.storage.iostats import IOStatistics
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.storage.prefetch import PrefetchPipeline, page_key


SPEC = PageSpec(page_bytes=1024, tuple_bytes=256)  # 4 tuples per page


@pytest.fixture
def layout():
    return DiskLayout(spec=SPEC)


def temp_heap(layout, name, n_tuples):
    heap = layout.temp_file(name, capacity_tuples=max(1, n_tuples))
    heap.append_many((name, i) for i in range(n_tuples))
    heap.flush()
    return heap


class TestPrefetch:
    def test_depth_validated(self, layout):
        with pytest.raises(ValueError):
            PrefetchPipeline(layout, -1)

    def test_zero_depth_reads_nothing(self, layout):
        heap = temp_heap(layout, "a", 8)
        pipeline = PrefetchPipeline(layout, 0)
        assert pipeline.prefetch([heap]) == 0
        assert pipeline.cache is None
        # The demand path still works and charges normally.
        mark = layout.tracker.stats.copy()
        pages = list(pipeline.scan_pages(heap))
        assert len(pages) == heap.n_pages
        assert layout.tracker.stats.diff(mark).reads == heap.n_pages
        assert layout.tracker.stats.prefetch_reads == 0

    def test_prefetch_charges_and_tags_reads(self, layout):
        heap = temp_heap(layout, "a", 12)  # 3 pages
        pipeline = PrefetchPipeline(layout, 2)
        fetched = pipeline.prefetch([heap])
        assert fetched == 2
        stats = layout.tracker.stats
        assert stats.reads == 2  # charged into the main buckets...
        assert stats.prefetch_reads == 2  # ...and tagged, not added again
        assert pipeline.prefetch_stats.reads == 2
        assert page_key(heap, 0) in pipeline.cache
        assert page_key(heap, 1) in pipeline.cache
        assert page_key(heap, 2) not in pipeline.cache

    def test_budget_spans_files_in_order(self, layout):
        a = temp_heap(layout, "a", 8)  # 2 pages
        b = temp_heap(layout, "b", 8)  # 2 pages
        pipeline = PrefetchPipeline(layout, 3)
        assert pipeline.prefetch([a, b]) == 3
        assert page_key(b, 0) in pipeline.cache
        assert page_key(b, 1) not in pipeline.cache

    def test_prefetch_skips_already_cached_pages(self, layout):
        heap = temp_heap(layout, "a", 8)
        pipeline = PrefetchPipeline(layout, 4)
        assert pipeline.prefetch([heap]) == 2
        assert pipeline.prefetch([heap]) == 0  # nothing new to read
        assert layout.tracker.stats.reads == 2

    def test_scan_consumes_cache_then_demands_rest(self, layout):
        heap = temp_heap(layout, "a", 16)  # 4 pages
        pipeline = PrefetchPipeline(layout, 2)
        pipeline.prefetch([heap])
        mark = layout.tracker.stats.copy()
        pages = list(pipeline.scan_pages(heap))
        assert len(pages) == 4
        delta = layout.tracker.stats.diff(mark)
        assert delta.reads == 2  # only the two uncached pages hit the disk
        assert pipeline.demand_stats.reads == 2
        assert len(pipeline.cache) == 0  # consumed, not retained

    def test_scanned_pages_match_direct_reads(self, layout):
        heap = temp_heap(layout, "a", 16)
        direct = [heap.read_page(i) for i in range(heap.n_pages)]
        pipeline = PrefetchPipeline(layout, 3)
        pipeline.prefetch([heap])
        assert list(pipeline.scan_pages(heap)) == direct

    def test_prefix_charging_matches_serial_classification(self):
        """Prefetch k pages + demand the rest == plain serial scan, charge
        for charge (the invariant the sweep's statistics contract rests on)."""
        serial = DiskLayout(spec=SPEC)
        serial_heap = temp_heap(serial, "a", 20)
        mark = serial.tracker.stats.copy()
        for _ in serial_heap.scan_pages():
            pass
        want = serial.tracker.stats.diff(mark)

        for depth in (1, 2, 5):
            piped = DiskLayout(spec=SPEC)
            heap = temp_heap(piped, "a", 20)
            pipeline = PrefetchPipeline(piped, depth)
            mark = piped.tracker.stats.copy()
            pipeline.prefetch([heap])
            for _ in pipeline.scan_pages(heap):
                pass
            got = piped.tracker.stats.diff(mark)
            assert (got.random_reads, got.sequential_reads) == (
                want.random_reads,
                want.sequential_reads,
            ), f"depth {depth} changed the charge classification"


class TestWritebackAndReconciliation:
    def test_writeback_tags_enclosed_writes(self, layout):
        pipeline = PrefetchPipeline(layout, 2)
        heap = layout.cache_file("c", capacity_tuples=8)
        with pipeline.writeback():
            heap.append_many(("c", i) for i in range(8))
            heap.flush()
        stats = layout.tracker.stats
        assert stats.writes == 2
        assert stats.writeback_writes == 2
        assert pipeline.writeback_stats.writes == 2
        # Writes outside the context are not tagged.
        heap.append(("c", 99))
        heap.flush()
        assert layout.tracker.stats.writes == 3
        assert layout.tracker.stats.writeback_writes == 2

    def test_stage_ledgers_reconcile_with_tags(self, layout):
        a = temp_heap(layout, "a", 12)
        mark = layout.tracker.stats.copy()  # heap setup is not pipeline traffic
        pipeline = PrefetchPipeline(layout, 2)
        pipeline.prefetch([a])
        for _ in pipeline.scan_pages(a):
            pass
        spill = layout.cache_file("c", capacity_tuples=4)
        with pipeline.writeback():
            spill.append_many(("c", i) for i in range(4))
            spill.flush()
        stage = pipeline.stage_stats()
        stats = layout.tracker.stats
        delta = stats.diff(mark)
        # Stage ledgers cover exactly the pipeline's traffic; tags agree.
        assert stage.reads == delta.reads
        assert stage.writes == delta.writes
        assert stage.prefetch_reads == stats.prefetch_reads == 2
        assert stage.writeback_writes == stats.writeback_writes == 1
        # Tags are side-ledgers: they never inflate the op totals.
        assert stats.total_ops == stats.reads + stats.writes

    def test_stage_stats_returns_fresh_object(self, layout):
        pipeline = PrefetchPipeline(layout, 1)
        first = pipeline.stage_stats()
        assert isinstance(first, IOStatistics)
        first.record(write=False, sequential=True)
        assert pipeline.stage_stats().total_ops == 0

    def test_discard_drops_pages_but_not_charges(self, layout):
        heap = temp_heap(layout, "a", 8)
        pipeline = PrefetchPipeline(layout, 2)
        pipeline.prefetch([heap])
        charged = layout.tracker.stats.reads
        assert pipeline.discard() == 2
        assert len(pipeline.cache) == 0
        assert layout.tracker.stats.reads == charged  # the bill stands
        assert pipeline.discard() == 0
