"""Unit tests for valid-time tuples and pairwise joining."""

import pytest

from repro.model.vtuple import VTTuple, join_tuples
from repro.time.interval import Interval


def tup(key, payload, start, end):
    return VTTuple((key,), (payload,), Interval(start, end))


class TestVTTuple:
    def test_accessors(self):
        t = tup("a", 1, 3, 9)
        assert t.vs == 3
        assert t.ve == 9
        assert t.key == ("a",)
        assert t.payload == (1,)

    def test_immutability(self):
        t = tup("a", 1, 0, 1)
        with pytest.raises(AttributeError):
            t.key = ("b",)

    def test_equality_and_hash(self):
        assert tup("a", 1, 0, 5) == tup("a", 1, 0, 5)
        assert tup("a", 1, 0, 5) != tup("a", 1, 0, 6)
        assert len({tup("a", 1, 0, 5), tup("a", 1, 0, 5)}) == 1

    def test_key_and_payload_coerced_to_tuples(self):
        t = VTTuple(["a"], ["x"], Interval(0, 1))
        assert t.key == ("a",)
        assert t.payload == ("x",)

    def test_overlaps(self):
        t = tup("a", 1, 5, 9)
        assert t.overlaps(Interval(9, 12))
        assert not t.overlaps(Interval(10, 12))

    def test_value_equivalence(self):
        assert tup("a", 1, 0, 5).value_equivalent(tup("a", 1, 7, 9))
        assert not tup("a", 1, 0, 5).value_equivalent(tup("a", 2, 0, 5))

    def test_with_valid(self):
        t = tup("a", 1, 0, 5).with_valid(Interval(2, 3))
        assert t.valid == Interval(2, 3)
        assert t.key == ("a",)


class TestJoinTuples:
    def test_matching_keys_overlapping_intervals(self):
        x = tup("a", "left", 0, 10)
        y = tup("a", "right", 5, 20)
        z = join_tuples(x, y)
        assert z is not None
        assert z.key == ("a",)
        assert z.payload == ("left", "right")
        assert z.valid == Interval(5, 10)

    def test_different_keys(self):
        assert join_tuples(tup("a", 1, 0, 10), tup("b", 2, 0, 10)) is None

    def test_disjoint_intervals(self):
        assert join_tuples(tup("a", 1, 0, 4), tup("a", 2, 5, 9)) is None

    def test_single_chronon_overlap(self):
        z = join_tuples(tup("a", 1, 0, 5), tup("a", 2, 5, 9))
        assert z is not None
        assert z.valid == Interval(5, 5)

    def test_commutes_on_interval(self):
        x, y = tup("a", 1, 0, 7), tup("a", 2, 3, 9)
        assert join_tuples(x, y).valid == join_tuples(y, x).valid
