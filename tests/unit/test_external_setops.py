"""Unit tests for external temporal set operations."""

import pytest

from repro.algebra.coalesce import coalesce
from repro.algebra.external_setops import external_setop
from repro.algebra.setops import (
    temporal_difference,
    temporal_intersection,
    temporal_union,
)
from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec
from tests.conftest import make_relation, random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)
SCHEMA_A = RelationSchema("a", ("k",), ("val",))
SCHEMA_B = RelationSchema("b", ("k",), ("val",))

IN_MEMORY = {
    "union": temporal_union,
    "difference": temporal_difference,
    "intersection": temporal_intersection,
}


def compatible_random(schema, seed):
    relation = random_relation(
        schema, 250, seed=seed, n_keys=4, long_lived_fraction=0.4, payload_tag="v"
    )
    # Restrict payloads to a small domain so values actually collide.
    from repro.model.relation import ValidTimeRelation
    from repro.model.vtuple import VTTuple

    squeezed = ValidTimeRelation(schema)
    for i, tup in enumerate(relation):
        squeezed.add(VTTuple(tup.key, (f"v{i % 6}",), tup.valid))
    return squeezed


class TestExternalSetops:
    @pytest.mark.parametrize("op", ["union", "difference", "intersection"])
    @pytest.mark.parametrize("memory", [4, 16])
    def test_matches_in_memory_operator(self, op, memory):
        r = compatible_random(SCHEMA_A, seed=381)
        s = compatible_random(SCHEMA_B, seed=382)
        external, _ = external_setop(op, r, s, memory, page_spec=SPEC)
        expected = IN_MEMORY[op](r, s)
        # In-memory operators coalesce per class already; compare coalesced.
        assert coalesce(external).multiset_equal(coalesce(expected))

    def test_simple_union(self):
        r = make_relation(SCHEMA_A, [("x", "a", 0, 4)])
        s = make_relation(SCHEMA_B, [("x", "a", 5, 9), ("y", "b", 0, 2)])
        result, _ = external_setop("union", r, s, 8, page_spec=SPEC)
        stamps = {
            (t.key[0], t.payload[0]): (t.vs, t.ve) for t in result
        }
        assert stamps == {("x", "a"): (0, 9), ("y", "b"): (0, 2)}

    def test_simple_difference(self):
        r = make_relation(SCHEMA_A, [("x", "a", 0, 9)])
        s = make_relation(SCHEMA_B, [("x", "a", 3, 5)])
        result, _ = external_setop("difference", r, s, 8, page_spec=SPEC)
        stamps = sorted((t.vs, t.ve) for t in result)
        assert stamps == [(0, 2), (6, 9)]

    def test_unknown_op(self):
        r = make_relation(SCHEMA_A, [])
        s = make_relation(SCHEMA_B, [])
        with pytest.raises(ValueError, match="unknown set operation"):
            external_setop("xor", r, s, 8, page_spec=SPEC)

    def test_schema_compatibility_enforced(self):
        r = make_relation(SCHEMA_A, [])
        bad = make_relation(RelationSchema("c", ("k",), ("other",)), [])
        with pytest.raises(SchemaError):
            external_setop("union", r, bad, 8, page_spec=SPEC)

    def test_costs_tracked_per_phase(self):
        r = compatible_random(SCHEMA_A, seed=383)
        s = compatible_random(SCHEMA_B, seed=384)
        _, layout = external_setop("union", r, s, 6, page_spec=SPEC)
        assert set(layout.tracker.phases) == {"sort", "merge"}
        assert layout.tracker.phases["sort"].total_ops > 0
        assert layout.tracker.phases["merge"].total_ops > 0
