"""Unit tests for doPartitioning (Grace partitioning, Section 3.2)."""

import pytest

from repro.core.intervals import PartitionMap
from repro.core.partitioner import do_partitioning
from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval


@pytest.fixture
def layout():
    return DiskLayout(spec=PageSpec(page_bytes=1024, tuple_bytes=256))


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])


def place(layout, intervals):
    schema = RelationSchema("r", ("k",), (), tuple_bytes=256)
    relation = ValidTimeRelation(
        schema, [VTTuple((i,), (), valid) for i, valid in enumerate(intervals)]
    )
    return layout.place_relation(relation)


class TestPlacement:
    def test_tuples_go_to_last_overlapping_partition(self, layout, pmap):
        source = place(
            layout,
            [
                Interval(2, 3),  # partition 0
                Interval(5, 15),  # overlaps 0 and 1 -> stored in 1
                Interval(0, 29),  # overlaps all -> stored in 2
                Interval(25, 25),  # partition 2
            ],
        )
        parts = do_partitioning(source, pmap, layout, "r", memory_pages=8)
        sizes = [part.n_tuples for part in parts]
        assert sizes == [1, 1, 2]

    def test_every_tuple_stored_exactly_once(self, layout, pmap):
        intervals = [Interval(i % 28, min(29, i % 28 + i % 7)) for i in range(50)]
        source = place(layout, intervals)
        parts = do_partitioning(source, pmap, layout, "r", memory_pages=8)
        total = sum(part.n_tuples for part in parts)
        assert total == 50

    def test_out_of_range_tuples_clamped(self, layout, pmap):
        source = place(layout, [Interval(100, 200), Interval(-50, -40)])
        parts = do_partitioning(source, pmap, layout, "r", memory_pages=8)
        assert parts[2].n_tuples == 1  # clamped high
        assert parts[0].n_tuples == 1  # clamped low


class TestCosts:
    def test_partitioning_reads_input_once_writes_partitions_once(self, layout, pmap):
        source = place(layout, [Interval(i % 30, i % 30) for i in range(40)])
        before = layout.tracker.stats.copy()
        parts = do_partitioning(source, pmap, layout, "r", memory_pages=8)
        delta = layout.tracker.stats.diff(before)
        assert delta.reads == source.n_pages
        assert delta.writes == sum(part.n_pages for part in parts)

    def test_larger_memory_fewer_random_writes(self, layout, pmap):
        intervals = [Interval(i % 30, i % 30) for i in range(200)]
        source_small = place(layout, intervals)
        before = layout.tracker.stats.copy()
        do_partitioning(source_small, pmap, layout, "small", memory_pages=4)
        small_delta = layout.tracker.stats.diff(before)

        layout2 = DiskLayout(spec=layout.spec)
        source_big = place(layout2, intervals)
        do_partitioning(source_big, pmap, layout2, "big", memory_pages=64)
        big_delta = layout2.tracker.stats
        assert big_delta.random_writes <= small_delta.random_writes

    def test_memory_minimum(self, layout, pmap):
        source = place(layout, [Interval(0, 1)])
        with pytest.raises(PlanError):
            do_partitioning(source, pmap, layout, "r", memory_pages=1)
