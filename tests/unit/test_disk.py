"""Unit tests for the simulated disk and head-position accounting."""

import pytest

from repro.model.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.iostats import IOStatistics


@pytest.fixture
def disk():
    return SimulatedDisk(IOStatistics())


class TestAllocation:
    def test_extents_are_contiguous_internally_with_guard_gap(self, disk):
        a = disk.allocate("a", device=0, capacity=10)
        b = disk.allocate("b", device=0, capacity=5)
        assert a.physical_address(0) == 0
        assert a.physical_address(9) == 9
        # A guard page separates extents: files are never physically adjacent.
        assert b.physical_address(0) == 11

    def test_devices_have_independent_address_spaces(self, disk):
        a = disk.allocate("a", device=0, capacity=10)
        b = disk.allocate("b", device=1, capacity=10)
        assert a.physical_address(0) == b.physical_address(0) == 0

    def test_capacity_validation(self, disk):
        with pytest.raises(StorageError):
            disk.allocate("bad", capacity=0)

    def test_growth_chains_segments(self, disk):
        a = disk.allocate("a", capacity=2)
        disk.allocate("other", capacity=3)  # occupies following addresses
        for i in range(5):
            disk.write(a, i, f"p{i}")
        assert a.n_pages == 5
        assert a.capacity >= 5
        # Growth segment starts after the other extent.
        assert a.physical_address(2) >= 5


class TestSequentialAccounting:
    def test_fresh_scan_is_one_random_then_sequential(self, disk):
        extent = disk.allocate("r", capacity=10)
        disk.load(extent, [f"p{i}" for i in range(10)])
        for i in range(10):
            disk.read(extent, i)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == 9

    def test_rereading_same_page_is_sequential(self, disk):
        extent = disk.allocate("r", capacity=2)
        disk.load(extent, ["a", "b"])
        disk.read(extent, 0)
        disk.read(extent, 0)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == 1

    def test_backward_jump_is_random(self, disk):
        extent = disk.allocate("r", capacity=5)
        disk.load(extent, list("abcde"))
        disk.read(extent, 3)
        disk.read(extent, 1)
        assert disk.stats.random_reads == 2

    def test_interleaved_extents_same_device_cost_randoms(self, disk):
        a = disk.allocate("a", device=0, capacity=4)
        b = disk.allocate("b", device=0, capacity=4)
        disk.load(a, list("aaaa"))
        disk.load(b, list("bbbb"))
        for i in range(4):
            disk.read(a, i)
            disk.read(b, i)
        assert disk.stats.random_reads == 8

    def test_interleaved_extents_different_devices_stay_sequential(self, disk):
        a = disk.allocate("a", device=0, capacity=4)
        b = disk.allocate("b", device=1, capacity=4)
        disk.load(a, list("aaaa"))
        disk.load(b, list("bbbb"))
        for i in range(4):
            disk.read(a, i)
            disk.read(b, i)
        assert disk.stats.random_reads == 2
        assert disk.stats.sequential_reads == 6

    def test_append_run_is_one_random_then_sequential(self, disk):
        extent = disk.allocate("w", capacity=8)
        for i in range(8):
            disk.append(extent, f"p{i}")
        assert disk.stats.random_writes == 1
        assert disk.stats.sequential_writes == 7

    def test_park_heads_forces_random(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("abcd"))
        disk.read(extent, 0)
        disk.read(extent, 1)
        disk.park_heads()
        disk.read(extent, 2)
        assert disk.stats.random_reads == 2


class TestReadWriteSemantics:
    def test_read_past_end(self, disk):
        extent = disk.allocate("r", capacity=4)
        with pytest.raises(StorageError, match="past end"):
            disk.read(extent, 0)

    def test_write_creates_hole_rejected(self, disk):
        extent = disk.allocate("w", capacity=4)
        with pytest.raises(StorageError, match="hole"):
            disk.write(extent, 2, "x")

    def test_overwrite_in_place(self, disk):
        extent = disk.allocate("w", capacity=4)
        disk.append(extent, "old")
        disk.write(extent, 0, "new")
        assert disk.peek(extent, 0) == "new"

    def test_load_and_peek_do_not_charge(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("abcd"))
        disk.peek(extent, 2)
        assert disk.stats.total_ops == 0

    def test_truncate_clears_contents(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("ab"))
        disk.truncate(extent)
        assert extent.n_pages == 0

    def test_head_position_tracking(self, disk):
        extent = disk.allocate("r", device=3, capacity=4)
        disk.load(extent, list("abcd"))
        assert disk.head_position(3) is None
        disk.read(extent, 2)
        assert disk.head_position(3) == extent.physical_address(2)
