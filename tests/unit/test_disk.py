"""Unit tests for the simulated disk and head-position accounting."""

import pytest

from repro.model.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.iostats import IOStatistics


@pytest.fixture
def disk():
    return SimulatedDisk(IOStatistics())


class TestAllocation:
    def test_extents_are_contiguous_internally_with_guard_gap(self, disk):
        a = disk.allocate("a", device=0, capacity=10)
        b = disk.allocate("b", device=0, capacity=5)
        assert a.physical_address(0) == 0
        assert a.physical_address(9) == 9
        # A guard page separates extents: files are never physically adjacent.
        assert b.physical_address(0) == 11

    def test_devices_have_independent_address_spaces(self, disk):
        a = disk.allocate("a", device=0, capacity=10)
        b = disk.allocate("b", device=1, capacity=10)
        assert a.physical_address(0) == b.physical_address(0) == 0

    def test_capacity_validation(self, disk):
        with pytest.raises(StorageError):
            disk.allocate("bad", capacity=0)

    def test_growth_chains_segments(self, disk):
        a = disk.allocate("a", capacity=2)
        disk.allocate("other", capacity=3)  # occupies following addresses
        for i in range(5):
            disk.write(a, i, f"p{i}")
        assert a.n_pages == 5
        assert a.capacity >= 5
        # Growth segment starts after the other extent.
        assert a.physical_address(2) >= 5


class TestSequentialAccounting:
    def test_fresh_scan_is_one_random_then_sequential(self, disk):
        extent = disk.allocate("r", capacity=10)
        disk.load(extent, [f"p{i}" for i in range(10)])
        for i in range(10):
            disk.read(extent, i)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == 9

    def test_rereading_same_page_is_sequential(self, disk):
        extent = disk.allocate("r", capacity=2)
        disk.load(extent, ["a", "b"])
        disk.read(extent, 0)
        disk.read(extent, 0)
        assert disk.stats.random_reads == 1
        assert disk.stats.sequential_reads == 1

    def test_backward_jump_is_random(self, disk):
        extent = disk.allocate("r", capacity=5)
        disk.load(extent, list("abcde"))
        disk.read(extent, 3)
        disk.read(extent, 1)
        assert disk.stats.random_reads == 2

    def test_interleaved_extents_same_device_cost_randoms(self, disk):
        a = disk.allocate("a", device=0, capacity=4)
        b = disk.allocate("b", device=0, capacity=4)
        disk.load(a, list("aaaa"))
        disk.load(b, list("bbbb"))
        for i in range(4):
            disk.read(a, i)
            disk.read(b, i)
        assert disk.stats.random_reads == 8

    def test_interleaved_extents_different_devices_stay_sequential(self, disk):
        a = disk.allocate("a", device=0, capacity=4)
        b = disk.allocate("b", device=1, capacity=4)
        disk.load(a, list("aaaa"))
        disk.load(b, list("bbbb"))
        for i in range(4):
            disk.read(a, i)
            disk.read(b, i)
        assert disk.stats.random_reads == 2
        assert disk.stats.sequential_reads == 6

    def test_append_run_is_one_random_then_sequential(self, disk):
        extent = disk.allocate("w", capacity=8)
        for i in range(8):
            disk.append(extent, f"p{i}")
        assert disk.stats.random_writes == 1
        assert disk.stats.sequential_writes == 7

    def test_park_heads_forces_random(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("abcd"))
        disk.read(extent, 0)
        disk.read(extent, 1)
        disk.park_heads()
        disk.read(extent, 2)
        assert disk.stats.random_reads == 2


class TestReadWriteSemantics:
    def test_read_past_end(self, disk):
        extent = disk.allocate("r", capacity=4)
        with pytest.raises(StorageError, match="past end"):
            disk.read(extent, 0)

    def test_write_creates_hole_rejected(self, disk):
        extent = disk.allocate("w", capacity=4)
        with pytest.raises(StorageError, match="hole"):
            disk.write(extent, 2, "x")

    def test_overwrite_in_place(self, disk):
        extent = disk.allocate("w", capacity=4)
        disk.append(extent, "old")
        disk.write(extent, 0, "new")
        assert disk.peek(extent, 0) == "new"

    def test_load_and_peek_do_not_charge(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("abcd"))
        disk.peek(extent, 2)
        assert disk.stats.total_ops == 0

    def test_truncate_clears_contents(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("ab"))
        disk.truncate(extent)
        assert extent.n_pages == 0

    def test_head_position_tracking(self, disk):
        extent = disk.allocate("r", device=3, capacity=4)
        disk.load(extent, list("abcd"))
        assert disk.head_position(3) is None
        disk.read(extent, 2)
        assert disk.head_position(3) == extent.physical_address(2)


class TestSegmentBoundaries:
    def test_crossing_a_segment_boundary_costs_a_seek(self, disk):
        extent = disk.allocate("grow", capacity=3)
        disk.allocate("neighbor", capacity=4)  # forces the growth segment away
        for i in range(6):
            disk.write(extent, i, f"p{i}")
        # Pages 0-2 live in the first segment, 3-5 in the chained one; the
        # jump between them is physically discontiguous.
        assert extent.physical_address(3) != extent.physical_address(2) + 1
        disk.park_heads()
        disk.stats = type(disk.stats)()
        for i in range(6):
            disk.read(extent, i)
        assert disk.stats.random_reads == 2  # initial seek + boundary seek
        assert disk.stats.sequential_reads == 4

    def test_append_across_boundary_is_random(self, disk):
        extent = disk.allocate("grow", capacity=2)
        disk.allocate("neighbor", capacity=2)
        for i in range(4):
            disk.append(extent, f"p{i}")
        # One seek to start, one to enter the growth segment at page 2.
        assert disk.stats.random_writes == 2
        assert disk.stats.sequential_writes == 2

    def test_negative_index_rejected_with_context(self, disk):
        extent = disk.allocate("r", capacity=2)
        with pytest.raises(StorageError) as excinfo:
            extent.physical_address(-1)
        assert excinfo.value.extent == "r"
        assert excinfo.value.page_index == -1


class TestTruncate:
    def test_truncate_to_watermark(self, disk):
        extent = disk.allocate("r", capacity=8)
        disk.load(extent, list("abcdef"))
        disk.truncate(extent, keep=4)
        assert extent.n_pages == 4
        assert disk.peek(extent, 3) == "d"

    def test_truncate_validates_keep(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("ab"))
        with pytest.raises(StorageError, match="cannot keep"):
            disk.truncate(extent, keep=-1)
        with pytest.raises(StorageError, match="only 2 stored"):
            disk.truncate(extent, keep=3)

    def test_truncate_keeps_the_reservation(self, disk):
        extent = disk.allocate("r", capacity=4)
        disk.load(extent, list("abcd"))
        disk.truncate(extent)
        assert extent.capacity == 4
        disk.append(extent, "fresh")
        assert disk.peek(extent, 0) == "fresh"


class TestChecksummedDisk:
    def test_checksummed_pages_roundtrip_unwrapped(self):
        disk = SimulatedDisk(IOStatistics(), checksums=True)
        extent = disk.allocate("c", capacity=2)
        disk.append(extent, ["x", "y"])
        assert disk.read(extent, 0) == ["x", "y"]
        assert disk.peek(extent, 0) == ["x", "y"]

    def test_load_frames_pages(self):
        disk = SimulatedDisk(IOStatistics(), checksums=True)
        extent = disk.allocate("c", capacity=2)
        disk.load(extent, [["a"], ["b"]])
        assert disk.read(extent, 1) == ["b"]
        assert disk.stats.total_ops == 1
