"""Unit tests for the shared-memory column arena and lane-result slabs.

The contract: the shared-memory transport is a pure transport -- every
dispatch (in-slab, slab-overflow, arena-overflow, pickled fallback) returns
bit-identical lane results -- and every segment the dispatchers create is
unlinked by ``close()`` on every path.
"""

import random

import pytest

from repro.exec.backend import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the shared-memory arena is numpy-only"
)

if HAVE_NUMPY:
    import numpy as np

    from repro.exec.arena import (
        ArenaDescriptor,
        ArenaOverflowError,
        ColumnArena,
        LaneResultSlabs,
        PickledLaneDispatcher,
        ShmLaneDispatcher,
        active_arena_count,
        copy_counters,
        reset_copy_counters,
    )


@pytest.fixture(autouse=True)
def clean_counters():
    reset_copy_counters()
    yield
    assert active_arena_count() == 0, "a test leaked a shared-memory segment"


class TestColumnArena:
    def test_push_view_round_trip(self):
        arena = ColumnArena(1 << 12)
        try:
            col = np.arange(100, dtype=np.int64) * 7
            # Copy out of the view before close() -- a live view pins the
            # shared-memory mapping.
            got = arena.view(arena.push(col)).copy()
            assert np.array_equal(got, col)
        finally:
            arena.close()

    def test_mark_reset_reuses_space(self):
        arena = ColumnArena(8 * 16)
        try:
            arena.push(np.arange(8, dtype=np.int64))
            mark = arena.mark()
            arena.push(np.arange(8, dtype=np.int64))
            arena.reset_to(mark)
            # Without the reset this second push would overflow.
            span = arena.push(np.arange(8, dtype=np.int64) + 1)
            assert list(arena.view(span)) == list(range(1, 9))
        finally:
            arena.close()

    def test_overflow_raises(self):
        arena = ColumnArena(8 * 4)
        try:
            with pytest.raises(ArenaOverflowError):
                arena.push(np.arange(16, dtype=np.int64))
        finally:
            arena.close()

    def test_push_meters_shared_bytes(self):
        arena = ColumnArena(1 << 12)
        try:
            arena.push(np.arange(10, dtype=np.int64))
            assert copy_counters()["bytes_shared"] == 80
            assert arena.total_pushed == 80
        finally:
            arena.close()

    def test_close_is_idempotent_and_releases(self):
        arena = ColumnArena(1 << 12)
        assert active_arena_count() == 1
        arena.close()
        arena.close()
        assert active_arena_count() == 0


class TestLaneResultSlabs:
    def test_disjoint_lanes_round_trip(self):
        slabs = LaneResultSlabs(lanes=3, capacity=8)
        try:
            # Emulate two workers writing their slabs.
            for slot, count in ((0, 5), (2, 3)):
                slabs.write(
                    slot,
                    tuple(np.arange(count) + 10 * slot + i for i in range(4)),
                )
            a = slabs.read_lane(0, 5)
            b = slabs.read_lane(2, 3)
            assert [list(x) for x in a] == [
                list(np.arange(5) + i) for i in range(4)
            ]
            assert [list(x) for x in b] == [
                list(np.arange(3) + 20 + i) for i in range(4)
            ]
        finally:
            slabs.close()

    def test_read_lane_copies(self):
        slabs = LaneResultSlabs(lanes=1, capacity=4)
        try:
            arrays = tuple(np.asarray([7 + i, 8 + i]) for i in range(4))
            slabs.write(0, arrays)
            (inner, _, _, _) = slabs.read_lane(0, 2)
            slabs.write(0, tuple(np.zeros(2, dtype=np.int64) for _ in range(4)))
            assert list(inner) == [7, 8]  # the copy survives slab reuse
        finally:
            slabs.close()

    def test_count_mismatch_raises(self):
        from repro.model.errors import SlabCorruptionError

        slabs = LaneResultSlabs(lanes=1, capacity=4)
        try:
            slabs.write(0, tuple(np.asarray([1, 2]) for _ in range(4)))
            with pytest.raises(SlabCorruptionError):
                slabs.read_lane(0, 3)
        finally:
            slabs.close()

    def test_sequence_mismatch_raises(self):
        from repro.model.errors import SlabCorruptionError

        slabs = LaneResultSlabs(lanes=1, capacity=4)
        try:
            slabs.write(0, tuple(np.asarray([1, 2]) for _ in range(4)), seq=7)
            assert slabs.read_lane(0, 2, expected_seq=7)
            with pytest.raises(SlabCorruptionError):
                slabs.read_lane(0, 2, expected_seq=8)
        finally:
            slabs.close()

    def test_crc_catches_payload_corruption(self):
        from repro.model.errors import SlabCorruptionError

        slabs = LaneResultSlabs(lanes=1, capacity=4)
        try:
            slabs.write(0, tuple(np.asarray([1, 2, 3]) for _ in range(4)))
            slabs.corrupt(0)
            with pytest.raises(SlabCorruptionError):
                slabs.read_lane(0, 3)
        finally:
            slabs.close()

    def test_crc_catches_empty_slab_corruption(self):
        from repro.model.errors import SlabCorruptionError

        slabs = LaneResultSlabs(lanes=1, capacity=4)
        try:
            slabs.write(0, tuple(np.asarray([], dtype=np.int64) for _ in range(4)))
            assert all(len(a) == 0 for a in slabs.read_lane(0, 0))
            slabs.corrupt(0)  # flips the stored CRC when there is no payload
            with pytest.raises(SlabCorruptionError):
                slabs.read_lane(0, 0)
        finally:
            slabs.close()


class TestInitLeak:
    def test_failed_slab_creation_releases_the_arena(self, monkeypatch):
        """A dispatcher that dies half-built must not leak its first segment."""
        import repro.exec.arena as arena_mod

        def explode(*args, **kwargs):
            raise OSError("no shared memory for slabs")

        monkeypatch.setattr(arena_mod, "LaneResultSlabs", explode)
        with pytest.raises(OSError):
            ShmLaneDispatcher(None, data_bytes=1 << 12, slab_rows=8, lanes=2)
        assert active_arena_count() == 0


class TestDispatcherEquivalence:
    """Pickled pool, shared-memory pool, and in-process must agree exactly."""

    def _run_engine(self, pmap_tuples, pages, *, zero_copy, arena_plan=None,
                    workers=2, monkeypatch=None):
        import repro.exec.sweep_parallel as sweep
        from repro.core.intervals import PartitionMap
        from repro.exec.sweep_parallel import PipelinedSweepEngine
        from repro.time.interval import Interval

        pmap = PartitionMap([Interval(0, 199), Interval(200, 399), Interval(400, 599)])
        engine = PipelinedSweepEngine(
            pmap, "backward", workers=workers, zero_copy=zero_copy,
            arena_plan=arena_plan,
        )
        try:
            index = engine.build_index(pmap_tuples)
            out = []
            for page in pages:
                out.append(engine.process_page(index, page, 2, 1, True))
            traffic = engine.copy_traffic()
        finally:
            engine.close()
        return out, traffic

    @pytest.fixture
    def workload(self):
        from repro.model.vtuple import VTTuple
        from repro.time.interval import Interval

        rng = random.Random(11)

        def tuples(n, tag):
            out = []
            for i in range(n):
                start = rng.randrange(0, 600)
                end = min(599, start + rng.randrange(0, 80))
                out.append(
                    VTTuple(
                        (f"k{rng.randrange(20)}",), (f"{tag}{i}",), Interval(start, end)
                    )
                )
            return out

        block = tuples(2000, "b")
        pages = [tuples(700, f"p{j}_") for j in range(3)]
        return block, pages

    def test_zero_copy_pool_matches_serial_and_pickled(self, workload, monkeypatch):
        import repro.exec.sweep_parallel as sweep

        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
        block, pages = workload

        serial, _ = self._run_engine(block, pages, zero_copy=False, workers=1)
        pickled, t_pickled = self._run_engine(block, pages, zero_copy=False, workers=3)
        shm, t_shm = self._run_engine(block, pages, zero_copy=True, workers=3)

        assert shm == serial == pickled
        assert t_shm["bytes_shared"] > 0
        assert t_shm["arena_overflows"] == 0
        assert t_pickled["bytes_pickled"] > 0
        # The descriptor fan-out must beat pickling on moved bytes.
        assert t_shm["bytes_shared"] < t_pickled["bytes_pickled"]

    def test_slab_overflow_is_bit_identical(self, workload, monkeypatch):
        import repro.exec.sweep_parallel as sweep
        from repro.exec.arena import ArenaDescriptor

        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
        block, pages = workload
        serial, _ = self._run_engine(block, pages, zero_copy=False, workers=1)
        tiny_slabs = ArenaDescriptor(data_bytes=1 << 22, slab_rows=16, lanes=3)
        shm, traffic = self._run_engine(
            block, pages, zero_copy=True, workers=3, arena_plan=tiny_slabs
        )
        assert shm == serial
        assert traffic["slab_overflows"] > 0

    def test_arena_overflow_falls_back_to_pickling(self, workload, monkeypatch):
        import repro.exec.sweep_parallel as sweep
        from repro.exec.arena import ArenaDescriptor

        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
        block, pages = workload
        serial, _ = self._run_engine(block, pages, zero_copy=False, workers=1)
        tiny_arena = ArenaDescriptor(data_bytes=256, slab_rows=1 << 14, lanes=3)
        shm, traffic = self._run_engine(
            block, pages, zero_copy=True, workers=3, arena_plan=tiny_arena
        )
        assert shm == serial
        assert traffic["arena_overflows"] > 0
        assert traffic["bytes_pickled"] > 0


class TestLocateTransports:
    def test_shared_transport_matches_pickle(self):
        from repro.exec.parallel import locate_partitions_parallel

        rng = random.Random(5)
        spans = []
        for _ in range(20000):
            start = rng.randrange(0, 1000)
            spans.append((start, start + rng.randrange(0, 50)))
        boundaries = [99, 199, 399, 699, 1099]
        serial = locate_partitions_parallel(spans, boundaries, "last", workers=1)
        for transport in ("pickle", "shared"):
            got = locate_partitions_parallel(
                spans, boundaries, "last", workers=3, transport=transport
            )
            assert got == serial, transport
        assert active_arena_count() == 0

    def test_unknown_transport_rejected(self):
        from repro.exec.parallel import locate_partitions_parallel

        with pytest.raises(ValueError):
            locate_partitions_parallel([(0, 1)], [5], "last", transport="carrier-pigeon")
