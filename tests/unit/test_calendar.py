"""Unit tests for the day-granularity calendar mapping."""

from datetime import date

import pytest

from repro.time.calendar import (
    EPOCH,
    as_dates,
    between,
    chronon_to_day,
    day_to_chronon,
    on,
)
from repro.time.interval import Interval


class TestMapping:
    def test_epoch_is_zero(self):
        assert day_to_chronon(EPOCH) == 0
        assert chronon_to_day(0) == EPOCH

    def test_round_trip(self):
        for day in (date(1994, 4, 14), date(1969, 12, 31), date(2026, 7, 7)):
            assert chronon_to_day(day_to_chronon(day)) == day

    def test_pre_epoch_is_negative(self):
        assert day_to_chronon(date(1969, 12, 31)) == -1

    def test_ordering_preserved(self):
        assert day_to_chronon(date(1994, 1, 1)) < day_to_chronon(date(1994, 6, 1))


class TestIntervalBuilders:
    def test_between(self):
        interval = between(date(1994, 1, 1), date(1994, 12, 31))
        assert interval.duration == 365

    def test_between_reversed_rejected(self):
        with pytest.raises(ValueError):
            between(date(1994, 12, 31), date(1994, 1, 1))

    def test_on_is_instantaneous(self):
        interval = on(date(1994, 4, 14))
        assert interval.duration == 1

    def test_as_dates(self):
        interval = Interval(day_to_chronon(date(2000, 1, 1)), day_to_chronon(date(2000, 1, 31)))
        start, end = as_dates(interval)
        assert start == date(2000, 1, 1)
        assert end == date(2000, 1, 31)

    def test_overlap_in_date_terms(self):
        q1 = between(date(2020, 1, 1), date(2020, 3, 31))
        q1_q2 = between(date(2020, 2, 1), date(2020, 6, 30))
        common = q1.intersect(q1_q2)
        assert as_dates(common) == (date(2020, 2, 1), date(2020, 3, 31))
