"""Unit tests for per-device I/O statistics."""

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.storage.disk import SimulatedDisk
from repro.storage.iostats import IOStatistics
from repro.storage.layout import Device
from repro.storage.page import PageSpec
from tests.conftest import random_relation


class TestDeviceStats:
    def test_breakdown_sums_to_totals(self):
        disk = SimulatedDisk(IOStatistics())
        a = disk.allocate("a", device=0, capacity=4)
        b = disk.allocate("b", device=1, capacity=4)
        for i in range(4):
            disk.append(a, i)
            disk.append(b, i)
        disk.read(a, 0)
        per_device_total = sum(
            stats.total_ops for stats in disk.device_stats.values()
        )
        assert per_device_total == disk.stats.total_ops == 9
        assert disk.device_stats[0].writes == 4
        assert disk.device_stats[0].reads == 1
        assert disk.device_stats[1].writes == 4

    def test_partition_join_uses_expected_devices(self, schema_r, schema_s):
        r = random_relation(schema_r, 500, seed=331, long_lived_fraction=0.5)
        s = random_relation(schema_s, 500, seed=332, long_lived_fraction=0.5)
        run = partition_join(
            r,
            s,
            PartitionJoinConfig(memory_pages=10, page_spec=PageSpec(512, 128)),
        )
        device_stats = run.layout.disk.device_stats
        assert device_stats[Device.BASE].reads > 0  # inputs scanned
        assert device_stats[Device.BASE].writes == 0  # inputs never written
        assert device_stats[Device.TEMP].writes > 0  # partitions written
        assert device_stats[Device.CACHE].writes > 0  # long-lived cached
        # Result traffic lives on a different disk entirely.
        assert Device.RESULT not in device_stats
        assert run.layout.result_stats.writes > 0
