"""Unit tests for valid-time natural outerjoins."""

from repro.model.schema import RelationSchema
from repro.variants.outerjoin import valid_time_outerjoin
from repro.baselines.reference import reference_join
from tests.conftest import make_relation, random_relation


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


class TestLeftOuterjoin:
    def test_unmatched_left_validity_preserved(self):
        r = make_relation(SCHEMA_R, [("x", "a", 0, 9)])
        s = make_relation(SCHEMA_S, [("x", "b", 4, 6)])
        result = valid_time_outerjoin(r, s)
        stamps = {(t.valid.start, t.valid.end): t.payload for t in result}
        assert stamps[(4, 6)] == ("a", "b")
        assert stamps[(0, 3)] == ("a", None)
        assert stamps[(7, 9)] == ("a", None)

    def test_right_not_preserved_by_default(self):
        r = make_relation(SCHEMA_R, [])
        s = make_relation(SCHEMA_S, [("x", "b", 0, 9)])
        assert len(valid_time_outerjoin(r, s)) == 0


class TestFullOuterjoin:
    def test_both_sides_preserved(self):
        r = make_relation(SCHEMA_R, [("x", "a", 0, 5)])
        s = make_relation(SCHEMA_S, [("x", "b", 3, 9)])
        result = valid_time_outerjoin(r, s, keep_left=True, keep_right=True)
        stamps = {(t.valid.start, t.valid.end): t.payload for t in result}
        assert stamps == {
            (3, 5): ("a", "b"),
            (0, 2): ("a", None),
            (6, 9): (None, "b"),
        }


class TestInnerDegeneration:
    def test_no_keeps_equals_inner_join(self):
        r = random_relation(SCHEMA_R, 40, seed=95, n_keys=5)
        s = random_relation(SCHEMA_S, 40, seed=96, n_keys=5)
        result = valid_time_outerjoin(r, s, keep_left=False, keep_right=False)
        assert result.multiset_equal(reference_join(r, s))


class TestSnapshotReducibility:
    def test_timeslice_commutes_with_outerjoin(self):
        """Snapshot reducibility of the full outerjoin at each chronon."""
        r = make_relation(SCHEMA_R, [("x", "a", 0, 9), ("y", "c", 2, 4)])
        s = make_relation(SCHEMA_S, [("x", "b", 5, 12)])
        result = valid_time_outerjoin(r, s, keep_left=True, keep_right=True)
        for chronon in range(0, 13):
            out_rows = sorted(map(str, result.timeslice(chronon)))
            expected = []
            r_rows = r.timeslice(chronon)
            s_rows = s.timeslice(chronon)
            s_keys = {row[0] for row in s_rows}
            r_keys = {row[0] for row in r_rows}
            for row in r_rows:
                matched = [s_row for s_row in s_rows if s_row[0] == row[0]]
                if matched:
                    expected.extend(row + s_row[1:] for s_row in matched)
                else:
                    expected.append(row + (None,))
            for s_row in s_rows:
                if s_row[0] not in r_keys:
                    expected.append((s_row[0], None) + s_row[1:])
            assert out_rows == sorted(map(str, expected)), f"chronon {chronon}"
