"""Unit tests for the canonical disk layout."""

import pytest

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import Device, DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval


@pytest.fixture
def layout():
    return DiskLayout(spec=PageSpec(page_bytes=1024, tuple_bytes=256))


@pytest.fixture
def relation():
    schema = RelationSchema("r", ("k",), ("val",), tuple_bytes=256)
    return ValidTimeRelation(
        schema,
        [VTTuple((i,), (i,), Interval(i, i)) for i in range(10)],
    )


class TestPlacement:
    def test_place_relation_uncharged(self, layout, relation):
        heap = layout.place_relation(relation)
        assert layout.tracker.stats.total_ops == 0
        assert heap.n_tuples == 10
        assert heap.extent.device == Device.BASE

    def test_temp_and_cache_devices(self, layout):
        assert layout.temp_file("t").extent.device == Device.TEMP
        assert layout.cache_file("c").extent.device == Device.CACHE
        assert layout.file_on(Device.SCRATCH_B, "x").extent.device == Device.SCRATCH_B

    def test_pages_of(self, layout, relation):
        assert layout.pages_of(relation) == 3  # 10 tuples, 4 per page


class TestResultStream:
    def test_result_io_excluded_from_tracker(self, layout, relation):
        result_file = layout.result_file("out")
        for tup in relation:
            layout.write_result(result_file, tup)
        result_file.flush()
        assert layout.tracker.stats.total_ops == 0
        assert layout.result_stats.writes > 0

    def test_collect_result(self, layout, relation):
        result_file = layout.result_file("out")
        for tup in relation:
            layout.write_result(result_file, tup)
        result_file.flush()
        collected = layout.collect_result(result_file, relation.schema)
        assert collected.multiset_equal(relation)
