"""Unit tests for buffer-pool budget bookkeeping and Figure 3 allocation."""

import pytest

from repro.model.errors import BufferOverflowError
from repro.storage.buffer import BufferPool, JoinBufferAllocation


class TestBufferPool:
    def test_reserve_and_release(self):
        pool = BufferPool(10)
        reservation = pool.reserve("area", 6)
        assert pool.used_pages == 6
        assert pool.free_pages == 4
        reservation.release()
        assert pool.free_pages == 10

    def test_over_reservation_raises(self):
        pool = BufferPool(4)
        pool.reserve("a", 3)
        with pytest.raises(BufferOverflowError, match="exceeds free space"):
            pool.reserve("b", 2)

    def test_double_release_raises(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        reservation.release()
        with pytest.raises(BufferOverflowError, match="already released"):
            reservation.release()

    def test_resize_grow_and_shrink(self):
        pool = BufferPool(10)
        reservation = pool.reserve("a", 2)
        reservation.resize(8)
        assert pool.free_pages == 2
        reservation.resize(1)
        assert pool.free_pages == 9

    def test_resize_beyond_budget(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        with pytest.raises(BufferOverflowError):
            reservation.resize(5)

    def test_negative_reserve(self):
        with pytest.raises(BufferOverflowError):
            BufferPool(4).reserve("a", -1)

    def test_empty_pool_rejected(self):
        with pytest.raises(BufferOverflowError):
            BufferPool(0)

    def test_resize_negative_rejected(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        with pytest.raises(BufferOverflowError, match="resize"):
            reservation.resize(-1)
        assert pool.used_pages == 2

    def test_resize_to_zero_frees_everything_but_keeps_the_region(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 3)
        reservation.resize(0)
        assert pool.free_pages == 4
        reservation.resize(2)
        assert pool.used_pages == 2

    def test_resize_after_release_rejected(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        reservation.release()
        with pytest.raises(BufferOverflowError, match="already released"):
            reservation.resize(1)

    def test_zero_page_reservation_is_legal(self):
        pool = BufferPool(4)
        reservation = pool.reserve("empty", 0)
        assert pool.used_pages == 0
        reservation.release()
        assert pool.free_pages == 4

    def test_release_restores_exact_capacity_after_growth(self):
        pool = BufferPool(8)
        a = pool.reserve("a", 3)
        b = pool.reserve("b", 2)
        a.resize(5)
        assert pool.free_pages == 1
        a.release()
        b.release()
        assert pool.used_pages == 0
        assert pool.free_pages == 8


class TestJoinBufferAllocation:
    def test_figure3_split(self):
        allocation = JoinBufferAllocation(total_pages=16)
        assert allocation.buff_size == 13

    def test_minimum_size(self):
        with pytest.raises(BufferOverflowError):
            JoinBufferAllocation(total_pages=3)

    def test_open_materializes_all_regions(self):
        pool = BufferPool(16)
        regions = JoinBufferAllocation(total_pages=16).open(pool)
        assert regions["outer_partition"].pages == 13
        assert regions["inner_page"].pages == 1
        assert regions["tuple_cache_page"].pages == 1
        assert regions["result_page"].pages == 1
        assert pool.free_pages == 0
