"""Unit tests for buffer-pool budget bookkeeping and Figure 3 allocation."""

import pytest

from repro.model.errors import BufferOverflowError
from repro.storage.buffer import BufferPool, JoinBufferAllocation, PageCache


class TestBufferPool:
    def test_reserve_and_release(self):
        pool = BufferPool(10)
        reservation = pool.reserve("area", 6)
        assert pool.used_pages == 6
        assert pool.free_pages == 4
        reservation.release()
        assert pool.free_pages == 10

    def test_over_reservation_raises(self):
        pool = BufferPool(4)
        pool.reserve("a", 3)
        with pytest.raises(BufferOverflowError, match="exceeds free space"):
            pool.reserve("b", 2)

    def test_double_release_raises(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        reservation.release()
        with pytest.raises(BufferOverflowError, match="already released"):
            reservation.release()

    def test_resize_grow_and_shrink(self):
        pool = BufferPool(10)
        reservation = pool.reserve("a", 2)
        reservation.resize(8)
        assert pool.free_pages == 2
        reservation.resize(1)
        assert pool.free_pages == 9

    def test_resize_beyond_budget(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        with pytest.raises(BufferOverflowError):
            reservation.resize(5)

    def test_negative_reserve(self):
        with pytest.raises(BufferOverflowError):
            BufferPool(4).reserve("a", -1)

    def test_empty_pool_rejected(self):
        with pytest.raises(BufferOverflowError):
            BufferPool(0)

    def test_resize_negative_rejected(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        with pytest.raises(BufferOverflowError, match="resize"):
            reservation.resize(-1)
        assert pool.used_pages == 2

    def test_resize_to_zero_frees_everything_but_keeps_the_region(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 3)
        reservation.resize(0)
        assert pool.free_pages == 4
        reservation.resize(2)
        assert pool.used_pages == 2

    def test_resize_after_release_rejected(self):
        pool = BufferPool(4)
        reservation = pool.reserve("a", 2)
        reservation.release()
        with pytest.raises(BufferOverflowError, match="already released"):
            reservation.resize(1)

    def test_zero_page_reservation_is_legal(self):
        pool = BufferPool(4)
        reservation = pool.reserve("empty", 0)
        assert pool.used_pages == 0
        reservation.release()
        assert pool.free_pages == 4

    def test_release_restores_exact_capacity_after_growth(self):
        pool = BufferPool(8)
        a = pool.reserve("a", 3)
        b = pool.reserve("b", 2)
        a.resize(5)
        assert pool.free_pages == 1
        a.release()
        b.release()
        assert pool.used_pages == 0
        assert pool.free_pages == 8


class TestPageCache:
    def test_needs_capacity(self):
        with pytest.raises(BufferOverflowError):
            PageCache(0)

    def test_put_get_hit_miss_counters(self):
        cache = PageCache(2)
        cache.put(("x", 0), "page0")
        assert cache.get(("x", 0)) == "page0"
        assert cache.get(("x", 1)) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = PageCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_pinned_pages_survive_eviction(self):
        cache = PageCache(2)
        cache.put("a", 1, pin=True)
        cache.put("b", 2)
        cache.put("c", 3)  # must evict b, not pinned a
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_fully_pinned_cache_rejects_insert(self):
        cache = PageCache(2)
        cache.put("a", 1, pin=True)
        cache.put("b", 2, pin=True)
        assert cache.pinned_pages == 2
        with pytest.raises(BufferOverflowError):
            cache.put("c", 3)

    def test_take_consumes_regardless_of_pin(self):
        cache = PageCache(2)
        cache.put("a", 1, pin=True)
        assert cache.take("a") == 1
        assert "a" not in cache
        assert len(cache) == 0
        assert cache.take("a") is None  # second take is a miss

    def test_pin_unpin_lifecycle(self):
        cache = PageCache(2)
        cache.put("a", 1)
        cache.pin("a")
        cache.pin("a")  # pins nest
        cache.unpin("a")
        cache.put("b", 2)
        cache.put("c", 3)  # evicts b: a still holds one pin
        assert "a" in cache
        cache.unpin("a")
        with pytest.raises(BufferOverflowError):
            cache.unpin("a")  # not pinned any more
        with pytest.raises(BufferOverflowError):
            cache.pin("absent")

    def test_put_refresh_keeps_page_and_adds_pin(self):
        cache = PageCache(2)
        cache.put("a", 1)
        cache.put("a", 2, pin=True)  # refresh with new page + pin
        assert len(cache) == 1
        assert cache.pinned_pages == 1
        assert cache.take("a") == 2

    def test_clear_drops_everything(self):
        cache = PageCache(3)
        cache.put("a", 1, pin=True)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache


class TestJoinBufferAllocation:
    def test_figure3_split(self):
        allocation = JoinBufferAllocation(total_pages=16)
        assert allocation.buff_size == 13

    def test_minimum_size(self):
        with pytest.raises(BufferOverflowError):
            JoinBufferAllocation(total_pages=3)

    def test_open_materializes_all_regions(self):
        pool = BufferPool(16)
        regions = JoinBufferAllocation(total_pages=16).open(pool)
        assert regions["outer_partition"].pages == 13
        assert regions["inner_page"].pages == 1
        assert regions["tuple_cache_page"].pages == 1
        assert regions["result_page"].pages == 1
        assert pool.free_pages == 0


class TestBufferPoolConcurrency:
    """The pool is shared by concurrent queries: its accounting must hold
    under contention (single lock, atomic check-then-charge)."""

    def test_stress_never_oversubscribes_or_leaks(self):
        import os
        import random
        import threading

        seed = int(os.environ.get("SERVICE_STRESS_SEED", "0"))
        pool = BufferPool(64)
        errors = []
        violations = []
        barrier = threading.Barrier(8)

        def worker(worker_id: int) -> None:
            rng = random.Random(seed * 1000 + worker_id)
            barrier.wait()
            for _ in range(300):
                pages = rng.randrange(1, 24)
                try:
                    reservation = pool.reserve(f"w{worker_id}", pages)
                except BufferOverflowError:
                    continue
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return
                used = pool.used_pages
                if used > pool.total_pages or used < 0:
                    violations.append(used)
                if rng.random() < 0.3:
                    try:
                        reservation.resize(max(1, pages // 2))
                    except BufferOverflowError:
                        pass
                reservation.release()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert not violations
        # No double counting in either direction: everything was released.
        assert pool.used_pages == 0
        assert pool.free_pages == 64

    def test_concurrent_reserve_release_pairs_balance(self):
        import threading

        pool = BufferPool(8)
        acquired = []
        lock = threading.Lock()

        def grab():
            for _ in range(200):
                try:
                    reservation = pool.reserve("x", 3)
                except BufferOverflowError:
                    continue
                with lock:
                    acquired.append(1)
                reservation.release()

        threads = [threading.Thread(target=grab) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert pool.used_pages == 0
        assert len(acquired) > 0
