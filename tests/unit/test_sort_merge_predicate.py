"""Unit tests for sort-merge Allen-predicate joins."""

import pytest

from repro.storage.page import PageSpec
from repro.time.allen import AllenRelation
from repro.variants.allen_joins import (
    CONTAIN_RELATIONS,
    INTERSECTING_RELATIONS,
    OVERLAP_RELATIONS,
    contain_join,
    intersect_join,
    overlap_join,
)
from repro.variants.sort_merge_predicate import sort_merge_predicate_join
from tests.conftest import random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)


@pytest.fixture
def inputs(schema_r, schema_s):
    r = random_relation(schema_r, 350, seed=361, payload_tag="p")
    s = random_relation(schema_s, 350, seed=362, payload_tag="q")
    return r, s


class TestSortMergePredicateJoins:
    @pytest.mark.parametrize("memory", [4, 8, 64])
    def test_intersect_join(self, inputs, memory):
        r, s = inputs
        run = sort_merge_predicate_join(
            r, s, memory, INTERSECTING_RELATIONS, page_spec=SPEC
        )
        assert run.result.multiset_equal(intersect_join(r, s))

    def test_overlap_join(self, inputs):
        r, s = inputs
        run = sort_merge_predicate_join(r, s, 8, OVERLAP_RELATIONS, page_spec=SPEC)
        assert run.result.multiset_equal(overlap_join(r, s))

    def test_contain_join(self, inputs):
        r, s = inputs
        run = sort_merge_predicate_join(
            r, s, 8, CONTAIN_RELATIONS, timestamp="right", page_spec=SPEC
        )
        assert run.result.multiset_equal(contain_join(r, s))

    def test_agrees_with_partitioned_evaluation(self, inputs):
        """Three families, one answer: sort-merge == partition evaluation."""
        from repro.core.partition_join import PartitionJoinConfig
        from repro.variants.partitioned import partitioned_predicate_join

        r, s = inputs
        via_sm = sort_merge_predicate_join(r, s, 8, OVERLAP_RELATIONS, page_spec=SPEC)
        via_pj = partitioned_predicate_join(
            r,
            s,
            PartitionJoinConfig(memory_pages=8, page_spec=SPEC),
            OVERLAP_RELATIONS,
        )
        assert via_sm.result.multiset_equal(via_pj.result)

    def test_rejects_non_intersecting_predicates(self, inputs):
        r, s = inputs
        with pytest.raises(ValueError, match="intersection-implying"):
            sort_merge_predicate_join(r, s, 8, {AllenRelation.BEFORE})

    def test_rejects_unknown_policy(self, inputs):
        r, s = inputs
        with pytest.raises(ValueError, match="policy"):
            sort_merge_predicate_join(
                r, s, 8, OVERLAP_RELATIONS, timestamp="middle"
            )

    def test_costs_tracked(self, inputs):
        r, s = inputs
        run = sort_merge_predicate_join(r, s, 8, OVERLAP_RELATIONS, page_spec=SPEC)
        assert run.layout.tracker.stats.total_ops > 0
