"""Unit tests for the IntervalSet container."""

import pytest

from repro.time.interval import Interval
from repro.time.intervalset_class import IntervalSet


class TestConstruction:
    def test_canonicalizes(self):
        a = IntervalSet([Interval(0, 4), Interval(5, 9), Interval(2, 3)])
        assert list(a) == [Interval(0, 9)]

    def test_equality_by_coverage(self):
        a = IntervalSet([Interval(0, 4), Interval(5, 9)])
        b = IntervalSet([Interval(0, 9)])
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_is_falsy(self):
        assert not IntervalSet()
        assert IntervalSet([Interval(0, 0)])

    def test_immutable(self):
        a = IntervalSet()
        with pytest.raises(AttributeError):
            a._intervals = ()


class TestMembership:
    def test_chronon_membership(self):
        a = IntervalSet([Interval(0, 4), Interval(10, 12)])
        assert 3 in a
        assert 10 in a
        assert 7 not in a

    def test_interval_containment(self):
        a = IntervalSet([Interval(0, 9)])
        assert Interval(2, 5) in a
        assert Interval(8, 11) not in a


class TestAlgebra:
    A = IntervalSet([Interval(0, 9)])
    B = IntervalSet([Interval(5, 14)])

    def test_union(self):
        assert self.A | self.B == IntervalSet([Interval(0, 14)])

    def test_difference(self):
        assert self.A - self.B == IntervalSet([Interval(0, 4)])

    def test_intersection(self):
        assert self.A & self.B == IntervalSet([Interval(5, 9)])

    def test_symmetric_difference(self):
        assert self.A ^ self.B == IntervalSet(
            [Interval(0, 4), Interval(10, 14)]
        )

    def test_de_morgan_within_bounds(self):
        bounds = Interval(0, 20)
        lhs = (self.A | self.B).complement_within(bounds)
        rhs = self.A.complement_within(bounds) & self.B.complement_within(bounds)
        assert lhs == rhs


class TestMeasures:
    def test_duration(self):
        a = IntervalSet([Interval(0, 4), Interval(10, 12)])
        assert a.duration == 8

    def test_hull(self):
        a = IntervalSet([Interval(0, 4), Interval(10, 12)])
        assert a.hull() == Interval(0, 12)
        assert IntervalSet().hull() is None

    def test_complement_within(self):
        a = IntervalSet([Interval(3, 5)])
        assert a.complement_within(Interval(0, 9)) == IntervalSet(
            [Interval(0, 2), Interval(6, 9)]
        )
