"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.snapshot() == 13.0

    def test_histogram_bucketing(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 5.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        # Cumulative counts, Prometheus-style, with a trailing +Inf bucket.
        assert snapshot["buckets"] == [
            {"le": 1.0, "count": 1},
            {"le": 10.0, "count": 3},
            {"le": "+Inf", "count": 4},
        ]
        assert snapshot["sum"] == 110.5
        assert snapshot["count"] == 4

    def test_histogram_validates_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))


class TestFamiliesAndRegistry:
    def test_labels_resolve_and_cache_children(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("phase",))
        child = family.labels(phase="join")
        child.inc(3)
        assert family.labels(phase="join") is child
        assert family.labels(phase="sample") is not child

    def test_label_names_validated_exactly(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("phase", "device"))
        with pytest.raises(ValueError):
            family.labels(phase="join")  # missing 'device'
        with pytest.raises(ValueError):
            family.labels(phase="join", device="d", extra="x")

    def test_unlabeled_family_has_anonymous_child(self):
        registry = MetricsRegistry()
        family = registry.gauge("depth")
        family.labels().set(4)
        assert registry.snapshot()["depth"]["series"][""] == 4.0

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("ops", labelnames=("phase",))
        second = registry.counter("ops", labelnames=("phase",))
        assert first is second

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("ops", labelnames=("phase",))
        with pytest.raises(ValueError):
            registry.gauge("ops", labelnames=("phase",))  # kind conflict
        with pytest.raises(ValueError):
            registry.counter("ops", labelnames=("device",))  # label conflict

    def test_snapshot_is_stable_and_sorted(self):
        def populate(registry: MetricsRegistry) -> None:
            registry.counter("z_ops", labelnames=("phase",)).labels(
                phase="join"
            ).inc(2)
            registry.counter("a_ops").labels().inc()
            registry.histogram("rows", buckets=(4.0, 16.0)).labels().observe(5)

        one, two = MetricsRegistry(), MetricsRegistry()
        populate(one)
        populate(two)
        # Two identically-recorded registries snapshot byte-identically.
        assert json.dumps(one.snapshot()) == json.dumps(two.snapshot())
        assert list(one.snapshot()) == ["a_ops", "rows", "z_ops"]

    def test_series_keys_use_declared_label_order(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", labelnames=("phase", "device"))
        family.labels(device="disk", phase="join").inc()
        assert list(registry.snapshot()["ops"]["series"]) == [
            "phase=join,device=disk"
        ]

    def test_default_buckets_strictly_increase(self):
        assert all(
            b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )
