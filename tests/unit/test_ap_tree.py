"""Unit tests for the append-only tree and the index-nested-loop join."""

import random

import pytest

from repro.baselines.reference import reference_join
from repro.index.ap_tree import AppendOnlyTree, build_ap_tree
from repro.index.index_join import index_nested_loop_join
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from tests.conftest import random_relation


def vt(vs, ve, tag="x"):
    return VTTuple((tag,), (f"{vs}-{ve}",), Interval(vs, ve))


def append_only_tuples(n, seed=1, max_duration=40):
    rng = random.Random(seed)
    vs = 0
    tuples = []
    for _ in range(n):
        vs += rng.randrange(0, 4)
        tuples.append(vt(vs, vs + rng.randrange(max_duration)))
    return tuples


class TestAppendOnlyTree:
    def test_empty_tree(self):
        tree = AppendOnlyTree()
        assert len(tree) == 0
        assert tree.overlapping(Interval(0, 100)) == []

    def test_single_leaf(self):
        tree = AppendOnlyTree(fanout=4)
        for tup in (vt(0, 5), vt(2, 3), vt(4, 10)):
            tree.insert(tup)
        assert tree.height == 2  # leaf level + one (empty-root) summary level
        assert len(tree.overlapping(Interval(4, 4))) == 2  # (0,5) and (4,10)
        assert len(tree.overlapping(Interval(2, 3))) == 2  # (0,5) and (2,3)
        assert len(tree.overlapping(Interval(6, 9))) == 1

    def test_append_only_enforced(self):
        tree = AppendOnlyTree()
        tree.insert(vt(10, 12))
        with pytest.raises(ValueError, match="append-only"):
            tree.insert(vt(9, 20))

    def test_equal_start_chronons_allowed(self):
        tree = AppendOnlyTree()
        tree.insert(vt(5, 6))
        tree.insert(vt(5, 9))
        assert len(tree.stab(5)) == 2

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            AppendOnlyTree(fanout=1)

    def test_matches_linear_scan(self):
        tuples = append_only_tuples(500, seed=7)
        tree = build_ap_tree(tuples, fanout=4)
        rng = random.Random(8)
        for _ in range(40):
            lo = rng.randrange(600)
            query = Interval(lo, lo + rng.randrange(50))
            expected = [tup for tup in tuples if tup.valid.overlaps(query)]
            assert tree.overlapping(query) == expected

    def test_stab_matches_scan(self):
        tuples = append_only_tuples(300, seed=9)
        tree = build_ap_tree(tuples, fanout=8)
        for chronon in range(0, 400, 17):
            expected = [t for t in tuples if t.valid.contains_chronon(chronon)]
            assert tree.stab(chronon) == expected

    def test_pruning_visits_few_pages_for_point_queries(self):
        """Instantaneous data: a stab visits O(height) pages, not O(n)."""
        tuples = [vt(i, i) for i in range(4096)]
        tree = build_ap_tree(tuples, fanout=8)
        _, visited = tree.probe(Interval(2000, 2000))
        assert len(visited) <= 3 * tree.height

    def test_long_lived_widen_visits(self):
        instantaneous = build_ap_tree([vt(i, i) for i in range(1024)], fanout=8)
        long_lived = build_ap_tree([vt(i, i + 512) for i in range(1024)], fanout=8)
        _, narrow = instantaneous.probe(Interval(700, 700))
        _, wide = long_lived.probe(Interval(700, 700))
        assert len(wide) > len(narrow)

    def test_page_numbers_unique(self):
        tree = build_ap_tree(append_only_tuples(400, seed=10), fanout=4)
        _, visited = tree.probe(Interval(0, 10_000))
        assert len(tree.overlapping(Interval(0, 10_000))) == 400
        assert len(set(visited)) == len(visited)
        assert max(visited) < tree.n_nodes


class TestIndexNestedLoopJoin:
    def test_equals_reference(self, schema_r, schema_s):
        r = random_relation(schema_r, 300, seed=341, payload_tag="p")
        s = random_relation(schema_s, 300, seed=342, payload_tag="q")
        run = index_nested_loop_join(r, s, page_spec=PageSpec(512, 128))
        assert run.result.multiset_equal(reference_join(r, s))

    def test_probe_accounting(self, schema_r, schema_s):
        r = random_relation(schema_r, 200, seed=343)
        s = random_relation(schema_s, 200, seed=344)
        run = index_nested_loop_join(r, s, page_spec=PageSpec(512, 128))
        assert run.n_probes == 200
        assert run.index_pages_read > 0
        from repro.index.index_join import INDEX_DEVICE

        assert run.layout.disk.device_stats[INDEX_DEVICE].reads == run.index_pages_read

    def test_empty_inner(self, schema_r, schema_s):
        r = random_relation(schema_r, 50, seed=345)
        s = ValidTimeRelation(schema_s)
        run = index_nested_loop_join(r, s)
        assert run.n_result_tuples == 0
