"""Unit tests for the bitemporal extension."""

import pytest

from repro.baselines.reference import reference_join
from repro.bitemporal.model import UC, BitemporalRelation, BitemporalTuple
from repro.bitemporal.operators import (
    bitemporal_join,
    bitemporal_join_as_of,
    bitemporal_timeslice,
)
from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from repro.time.interval import Interval


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


@pytest.fixture
def relation():
    relation = BitemporalRelation(SCHEMA_R)
    relation.insert(("x",), ("a1",), Interval(0, 9), tt=100)
    relation.insert(("y",), ("a2",), Interval(5, 14), tt=110)
    return relation


class TestAppendOnlySemantics:
    def test_insert_is_current(self, relation):
        assert all(tup.is_current for tup in relation)
        assert len(relation.current()) == 2

    def test_logical_delete_preserves_history(self, relation):
        victim = next(iter(relation))
        relation.logical_delete(victim, tt=120)
        assert len(relation) == 2  # nothing physically removed
        assert len(relation.current()) == 1
        assert len(relation.as_of(115)) == 2  # rollback sees it
        assert len(relation.as_of(120)) == 1

    def test_as_of_before_any_insert(self, relation):
        assert len(relation.as_of(50)) == 0

    def test_as_of_between_inserts(self, relation):
        assert len(relation.as_of(105)) == 1

    def test_transaction_time_cannot_regress(self, relation):
        with pytest.raises(ValueError, match="backwards"):
            relation.insert(("z",), ("a3",), Interval(0, 1), tt=90)

    def test_delete_requires_current_tuple(self, relation):
        ghost = BitemporalTuple(("x",), ("a1",), Interval(0, 9), Interval(0, 10))
        with pytest.raises(KeyError):
            relation.logical_delete(ghost, tt=200)

    def test_delete_must_follow_insert(self):
        relation = BitemporalRelation(SCHEMA_R)
        tup = relation.insert(("x",), ("a",), Interval(0, 1), tt=100)
        with pytest.raises(ValueError, match="after insertion"):
            relation.logical_delete(tup, tt=100)

    def test_update_is_delete_plus_insert(self, relation):
        victim = next(iter(relation))
        replacement = relation.update(victim, ("a1_v2",), Interval(0, 19), tt=130)
        assert replacement.is_current
        assert len(relation.as_of(125)) == 2  # old belief
        current_payloads = {tup.payload for tup in relation.current()}
        assert ("a1_v2",) in current_payloads
        assert ("a1",) not in current_payloads

    def test_schema_arity_checked(self, relation):
        with pytest.raises(SchemaError):
            relation.insert(("x", "extra"), ("a",), Interval(0, 1), tt=200)


class TestBitemporalTimeslice:
    def test_two_dimensional_slice(self, relation):
        # At tt=105 only the first insert is believed; at vt=7 it is valid.
        assert bitemporal_timeslice(relation, tt=105, vt=7) == [("x", "a1")]
        # At tt=115 both are believed; vt=7 hits both.
        assert len(bitemporal_timeslice(relation, tt=115, vt=7)) == 2
        # vt outside any validity.
        assert bitemporal_timeslice(relation, tt=115, vt=50) == []


class TestBitemporalJoin:
    @pytest.fixture
    def pair(self):
        r = BitemporalRelation(SCHEMA_R)
        s = BitemporalRelation(SCHEMA_S)
        r.insert(("x",), ("a1",), Interval(0, 9), tt=100)
        s.insert(("x",), ("b2",), Interval(0, 4), tt=100)
        s.insert(("x",), ("b1",), Interval(5, 14), tt=105)
        return r, s

    def test_rectangle_semantics(self, pair):
        r, s = pair
        results = bitemporal_join(r, s)
        assert len(results) == 2
        by_payload = {tup.payload: tup for tup in results}
        a1b1 = by_payload[("a1", "b1")]
        assert a1b1.valid == Interval(5, 9)
        assert a1b1.transaction == Interval(105, UC)
        a1b2 = by_payload[("a1", "b2")]
        assert a1b2.valid == Interval(0, 4)
        assert a1b2.transaction == Interval(100, UC)

    def test_deleted_belief_limits_transaction_overlap(self, pair):
        r, s = pair
        victim = next(tup for tup in s if tup.payload == ("b1",))
        s.logical_delete(victim, tt=150)
        results = bitemporal_join(r, s)
        a1b1 = next(tup for tup in results if tup.payload == ("a1", "b1"))
        assert a1b1.transaction == Interval(105, 149)

    def test_transaction_snapshot_reducibility(self, pair):
        """as_of(r JOIN_B s, tt) == as_of(r, tt) JOIN_V as_of(s, tt)."""
        r, s = pair
        victim = next(tup for tup in s if tup.payload == ("b2",))
        s.logical_delete(victim, tt=140)
        joined = bitemporal_join(r, s)
        for tt in (99, 100, 104, 105, 139, 140, 1000):
            lhs = sorted(
                repr((t.key, t.payload, t.valid))
                for t in joined
                if t.known_at(tt)
            )
            rhs = sorted(
                repr((t.key, t.payload, t.valid))
                for t in reference_join(r.as_of(tt), s.as_of(tt))
            )
            assert lhs == rhs, f"tt={tt}"

    def test_join_as_of_uses_partition_join(self, pair):
        r, s = pair
        result = bitemporal_join_as_of(r, s, tt=200)
        expected = reference_join(r.as_of(200), s.as_of(200))
        assert result.multiset_equal(expected)
