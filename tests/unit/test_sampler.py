"""Unit tests for sample drawing and the scan-sampling optimization."""

import random

import pytest

from repro.model.vtuple import VTTuple
from repro.sampling.sampler import SampleStrategy, draw_samples, plan_sampling
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import CostModel, IOStatistics
from repro.storage.page import PageSpec
from repro.time.interval import Interval


def make_heap(n_tuples):
    disk = SimulatedDisk(IOStatistics())
    spec = PageSpec(page_bytes=1024, tuple_bytes=256)
    tuples = [VTTuple((i,), (i,), Interval(i, i)) for i in range(n_tuples)]
    return HeapFile.bulk_load(disk, "r", spec, tuples), disk


class TestPlanSampling:
    def test_small_draw_goes_random(self):
        plan = plan_sampling(10, 1000, CostModel.with_ratio(5))
        assert plan.strategy is SampleStrategy.RANDOM
        assert plan.estimated_cost == 50

    def test_large_draw_switches_to_scan(self):
        model = CostModel.with_ratio(5)
        plan = plan_sampling(5000, 1000, model)
        assert plan.strategy is SampleStrategy.SCAN
        assert plan.estimated_cost == model.cost_of_run(1000)

    def test_scan_disabled(self):
        plan = plan_sampling(5000, 1000, CostModel.with_ratio(5), allow_scan=False)
        assert plan.strategy is SampleStrategy.RANDOM
        assert plan.estimated_cost == 25_000

    def test_paper_threshold_example(self):
        """Section 4.2: at ratio 10:1, ~ relation_pages/10 samples reach the
        scan cost."""
        model = CostModel.with_ratio(10)
        pages = 8192
        # Scan cost = 10 + 8191; the crossover sits just above 820 samples.
        threshold_plan = plan_sampling(821, pages, model)
        assert threshold_plan.strategy is SampleStrategy.SCAN
        below = plan_sampling(819, pages, model)
        assert below.strategy is SampleStrategy.RANDOM

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            plan_sampling(-1, 10, CostModel())


class TestDrawSamples:
    def test_random_draw_without_replacement(self):
        heap, disk = make_heap(400)  # 100 pages: random is cheaper for 10 draws
        plan = plan_sampling(10, heap.n_pages, CostModel.with_ratio(5))
        assert plan.strategy is SampleStrategy.RANDOM
        samples = draw_samples(heap, plan, random.Random(1))
        assert len(samples) == 10
        assert len(set(samples)) == 10  # all distinct tuples
        assert disk.stats.total_ops == 10

    def test_scan_draw_charges_one_pass(self):
        heap, disk = make_heap(100)
        plan = plan_sampling(90, heap.n_pages, CostModel.with_ratio(2))
        assert plan.strategy is SampleStrategy.SCAN
        samples = draw_samples(heap, plan, random.Random(1))
        assert len(samples) == 90
        assert disk.stats.total_ops == heap.n_pages

    def test_oversized_request_returns_everything(self):
        heap, _ = make_heap(10)
        plan = plan_sampling(50, heap.n_pages, CostModel())
        samples = draw_samples(heap, plan, random.Random(1))
        assert len(samples) == 10

    def test_deterministic_under_seed(self):
        heap, _ = make_heap(50)
        plan = plan_sampling(10, heap.n_pages, CostModel())
        a = draw_samples(heap, plan, random.Random(42))
        heap2, _ = make_heap(50)
        b = draw_samples(heap2, plan, random.Random(42))
        assert a == b
