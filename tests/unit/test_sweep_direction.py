"""Unit tests for the forward-sweep variant (paper footnote 1)."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.intervals import PartitionMap
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.core.partitioner import do_partitioning
from repro.model.errors import PlanError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from tests.conftest import random_relation


SPEC = PageSpec(page_bytes=512, tuple_bytes=128)


class TestFirstOverlapPlacement:
    @pytest.fixture
    def pmap(self):
        return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])

    def test_first_placement(self, pmap):
        layout = DiskLayout(spec=SPEC)
        schema = RelationSchema("r", ("k",), (), tuple_bytes=128)
        relation = ValidTimeRelation(
            schema,
            [
                VTTuple((0,), (), Interval(5, 25)),  # first overlap: partition 0
                VTTuple((1,), (), Interval(12, 29)),  # partition 1
            ],
        )
        source = layout.place_relation(relation)
        parts = do_partitioning(
            source, pmap, layout, "r", memory_pages=8, placement="first"
        )
        assert [p.n_tuples for p in parts] == [1, 1, 0]

    def test_invalid_placement(self, pmap):
        layout = DiskLayout(spec=SPEC)
        schema = RelationSchema("r", ("k",), (), tuple_bytes=128)
        source = layout.place_relation(ValidTimeRelation(schema))
        with pytest.raises(PlanError, match="placement"):
            do_partitioning(source, pmap, layout, "r", 8, placement="middle")


class TestForwardSweepEquivalence:
    def test_matches_backward_and_reference(self, schema_r, schema_s):
        r = random_relation(schema_r, 500, seed=201, payload_tag="p")
        s = random_relation(schema_s, 500, seed=202, payload_tag="q")
        expected = reference_join(r, s)
        for direction in ("backward", "forward"):
            run = partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=10, page_spec=SPEC, sweep_direction=direction
                ),
            )
            assert run.result.multiset_equal(expected), direction

    def test_long_lived_heavy(self, schema_r, schema_s):
        r = random_relation(schema_r, 300, seed=203, long_lived_fraction=0.8)
        s = random_relation(schema_s, 300, seed=204, long_lived_fraction=0.8)
        expected = reference_join(r, s)
        run = partition_join(
            r,
            s,
            PartitionJoinConfig(
                memory_pages=8, page_spec=SPEC, sweep_direction="forward"
            ),
        )
        assert run.result.multiset_equal(expected)

    def test_invalid_direction_rejected(self, schema_r, schema_s):
        r = random_relation(schema_r, 200, seed=205)
        s = random_relation(schema_s, 200, seed=206)
        with pytest.raises(ValueError, match="direction"):
            partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=8, page_spec=SPEC, sweep_direction="sideways"
                ),
            )

    def test_similar_costs_both_directions(self, schema_r, schema_s):
        """Footnote 1 calls the strategies equivalent; costs should be close."""
        r = random_relation(schema_r, 600, seed=207, long_lived_fraction=0.3)
        s = random_relation(schema_s, 600, seed=208, long_lived_fraction=0.3)
        costs = {}
        for direction in ("backward", "forward"):
            config = PartitionJoinConfig(
                memory_pages=10, page_spec=SPEC, sweep_direction=direction
            )
            run = partition_join(r, s, config)
            costs[direction] = run.total_cost(config.cost_model)
        ratio = costs["forward"] / costs["backward"]
        assert 0.7 < ratio < 1.4
