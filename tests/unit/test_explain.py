"""Unit tests for EXPLAIN / EXPLAIN ANALYZE on the database facade."""

import pytest

from repro.engine.database import TemporalDatabase
from repro.obs import ObservabilityConfig
from repro.obs.explain import ExplainReport, PhaseCost
from repro.storage.page import PageSpec
from tests.conftest import random_relation


@pytest.fixture
def db(schema_r, schema_s):
    """A database whose join spans many pages and several partitions."""
    db = TemporalDatabase(
        memory_pages=16,
        page_spec=PageSpec(page_bytes=512, tuple_bytes=128),
        execution="batch",
        observability=ObservabilityConfig(),
    )
    db.create_relation(schema_r).extend(
        random_relation(schema_r, 400, seed=301, payload_tag="p").tuples
    )
    db.create_relation(schema_s).extend(
        random_relation(schema_s, 400, seed=302, payload_tag="q").tuples
    )
    return db


@pytest.fixture
def tiny_db(schema_r, schema_s):
    """Both relations fit the buffer: the single-partition shortcut."""
    db = TemporalDatabase(memory_pages=16)
    db.create_relation(schema_r).extend(
        random_relation(schema_r, 40, seed=11, payload_tag="p").tuples
    )
    db.create_relation(schema_s).extend(
        random_relation(schema_s, 40, seed=23, payload_tag="q").tuples
    )
    return db


class TestExplain:
    def test_mapping_protocol_backward_compatible(self, db):
        """The report must keep behaving like the old Dict[str, JoinEstimate]."""
        report = db.explain("works_on", "earns")
        assert isinstance(report, ExplainReport)
        assert set(report) == {"partition", "sort_merge", "nested_loop"}
        assert len(report) == 3
        assert all(estimate.cost > 0 for estimate in report.values())
        assert dict(report.items())["partition"] is report["partition"]
        assert "partition" in report

    def test_explain_does_not_execute(self, db):
        report = db.explain("works_on", "earns", method="partition")
        assert report.analyzed is False
        assert report.actual_total is None
        assert all(p.actual is None for p in report.phases)
        # Planning samples a scratch layout; the database's observability
        # runtime must see no I/O from it.
        assert report.observability is None

    def test_partition_plan_is_described(self, db):
        report = db.explain("works_on", "earns", method="partition")
        assert report.plan is not None
        assert len(report.plan.intervals) >= 1
        assert [p.phase for p in report.phases] == ["sample", "partition", "join"]
        assert report.predicted_total == pytest.approx(
            sum(p.predicted for p in report.phases)
        )
        text = report.render()
        assert text.startswith("EXPLAIN valid-time natural join")
        assert "plan:" in text
        assert "partition(s)" in text
        assert "<- chosen" in text or "(forced)" in text

    def test_forced_vs_chosen_marker(self, db):
        forced = db.explain("works_on", "earns", method="nested_loop")
        assert forced.algorithm == "nested_loop"
        assert "(forced)" in forced.render()
        assert forced.plan is None  # no partition plan for other algorithms
        auto = db.explain("works_on", "earns")
        assert "(chosen by cost)" in auto.render()

    def test_single_partition_shortcut_predicts_zero_prep(self, tiny_db):
        report = tiny_db.explain("works_on", "earns", method="partition")
        assert report.single_partition is True
        by_phase = {p.phase: p for p in report.phases}
        assert by_phase["sample"].predicted == 0.0
        assert by_phase["partition"].predicted == 0.0
        assert by_phase["join"].predicted > 0.0
        assert "[single-partition shortcut]" in report.render()


class TestExplainAnalyze:
    def test_actuals_reconcile_exactly_with_tracker(self, db):
        """The acceptance bar: per-phase actuals sum to the charged total."""
        report = db.explain_analyze("works_on", "earns", method="partition")
        assert report.analyzed is True
        actuals = [p.actual for p in report.phases]
        assert all(actual is not None for actual in actuals)
        # Every charged operation happened inside a tracked phase, so the
        # phase rows reconcile with the run's total bill *exactly* -- not
        # approximately.
        assert sum(actuals) == report.actual_total
        assert report.actual_total > 0

    def test_render_includes_actual_columns(self, db):
        report = db.explain_analyze("works_on", "earns", method="partition")
        text = report.render()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "actual" in text
        assert "deviation" in text
        assert "total" in text
        assert "result:" in text

    def test_analyze_carries_observability_runtime(self, db):
        report = db.explain_analyze("works_on", "earns", method="partition")
        assert report.observability is not None
        trace = report.observability.chrome_trace()
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "sweep" in names
        assert report.result_tuples == len(
            db.join("works_on", "earns", method="partition").relation
        )

    def test_analyze_forced_sort_merge_has_actuals_only(self, db):
        report = db.explain_analyze("works_on", "earns", method="sort_merge")
        assert report.analyzed is True
        assert report.plan is None
        # No partition-plan predictions, but the run's phases still land.
        assert report.actual_total is not None
        assert sum(p.actual for p in report.phases) == report.actual_total

    def test_as_dict_is_json_friendly(self, db):
        import json

        report = db.explain_analyze("works_on", "earns", method="partition")
        snapshot = report.as_dict()
        json.dumps(snapshot)
        assert snapshot["analyzed"] is True
        assert snapshot["plan"]["num_partitions"] == len(report.plan.intervals)


class TestPhaseCost:
    def test_deviation_requires_both_sides(self):
        assert PhaseCost("join").deviation_pct is None
        assert PhaseCost("join", predicted=10.0).deviation_pct is None
        assert PhaseCost("join", actual=10.0).deviation_pct is None

    def test_deviation_signed_percent(self):
        assert PhaseCost("join", predicted=100.0, actual=110.0).deviation_pct == 10.0
        assert PhaseCost("join", predicted=100.0, actual=90.0).deviation_pct == -10.0

    def test_zero_prediction_edge_cases(self):
        assert PhaseCost("join", predicted=0.0, actual=0.0).deviation_pct is None
        assert PhaseCost("join", predicted=0.0, actual=5.0).deviation_pct == float(
            "inf"
        )
