"""Unit tests for in-memory valid-time relations."""

import pytest

from repro.model.errors import SchemaError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval
from repro.time.lifespan import Lifespan


@pytest.fixture
def schema():
    return RelationSchema("emp", ("name",), ("dept",))


@pytest.fixture
def relation(schema):
    return ValidTimeRelation.from_rows(
        schema,
        [
            ("alice", "db", 0, 9),
            ("bob", "os", 5, 14),
            ("alice", "ai", 10, 19),
        ],
    )


class TestConstruction:
    def test_from_rows(self, relation):
        assert len(relation) == 3

    def test_from_rows_arity_check(self, schema):
        with pytest.raises(SchemaError, match="arity"):
            ValidTimeRelation.from_rows(schema, [("alice", 0, 9)])

    def test_add_validates_key_arity(self, schema):
        relation = ValidTimeRelation(schema)
        with pytest.raises(SchemaError):
            relation.add(VTTuple(("a", "b"), ("x",), Interval(0, 1)))

    def test_add_validates_payload_arity(self, schema):
        relation = ValidTimeRelation(schema)
        with pytest.raises(SchemaError):
            relation.add(VTTuple(("a",), (), Interval(0, 1)))

    def test_extend(self, schema):
        relation = ValidTimeRelation(schema)
        relation.extend(
            [VTTuple(("a",), ("x",), Interval(0, 1)) for _ in range(3)]
        )
        assert len(relation) == 3


class TestQueries:
    def test_lifespan(self, relation):
        assert relation.lifespan() == Lifespan(0, 19)

    def test_lifespan_empty(self, schema):
        assert ValidTimeRelation(schema).lifespan() is None

    def test_overlapping(self, relation):
        hits = list(relation.overlapping(Interval(12, 13)))
        assert len(hits) == 2  # bob(5-14) and alice(10-19)

    def test_timeslice(self, relation):
        rows = relation.timeslice(7)
        assert sorted(rows) == [("alice", "db"), ("bob", "os")]

    def test_timeslice_empty_chronon(self, relation):
        assert relation.timeslice(100) == []

    def test_contains(self, relation):
        assert VTTuple(("bob",), ("os",), Interval(5, 14)) in relation


class TestGroupingAndSorting:
    def test_group_by_key(self, relation):
        groups = relation.group_by_key()
        assert len(groups[("alice",)]) == 2
        assert len(groups[("bob",)]) == 1

    def test_sorted_by_vs(self, relation):
        ordered = relation.sorted_by_vs()
        starts = [tup.vs for tup in ordered]
        assert starts == sorted(starts)
        assert len(ordered) == len(relation)

    def test_sorted_does_not_mutate_original(self, relation):
        original = list(relation)
        relation.sorted_by_vs()
        assert list(relation) == original


class TestMultiset:
    def test_multiset_counts_duplicates(self, schema):
        t = VTTuple(("a",), ("x",), Interval(0, 1))
        relation = ValidTimeRelation(schema, [t, t])
        assert relation.as_multiset()[t] == 2

    def test_multiset_equality_order_insensitive(self, schema):
        t1 = VTTuple(("a",), ("x",), Interval(0, 1))
        t2 = VTTuple(("b",), ("y",), Interval(2, 3))
        assert ValidTimeRelation(schema, [t1, t2]).multiset_equal(
            ValidTimeRelation(schema, [t2, t1])
        )

    def test_multiset_inequality_on_counts(self, schema):
        t = VTTuple(("a",), ("x",), Interval(0, 1))
        assert not ValidTimeRelation(schema, [t]).multiset_equal(
            ValidTimeRelation(schema, [t, t])
        )
