"""Unit tests for Allen's thirteen interval relations."""

import pytest

from repro.time.allen import AllenRelation, relate
from repro.time.interval import Interval


class TestRelate:
    CASES = [
        (Interval(0, 1), Interval(4, 5), AllenRelation.BEFORE),
        (Interval(4, 5), Interval(0, 1), AllenRelation.AFTER),
        (Interval(0, 3), Interval(4, 7), AllenRelation.MEETS),
        (Interval(4, 7), Interval(0, 3), AllenRelation.MET_BY),
        (Interval(0, 5), Interval(3, 8), AllenRelation.OVERLAPS),
        (Interval(3, 8), Interval(0, 5), AllenRelation.OVERLAPPED_BY),
        (Interval(0, 3), Interval(0, 8), AllenRelation.STARTS),
        (Interval(0, 8), Interval(0, 3), AllenRelation.STARTED_BY),
        (Interval(3, 5), Interval(0, 8), AllenRelation.DURING),
        (Interval(0, 8), Interval(3, 5), AllenRelation.CONTAINS),
        (Interval(5, 8), Interval(0, 8), AllenRelation.FINISHES),
        (Interval(0, 8), Interval(5, 8), AllenRelation.FINISHED_BY),
        (Interval(2, 6), Interval(2, 6), AllenRelation.EQUAL),
    ]

    @pytest.mark.parametrize("u, v, expected", CASES)
    def test_all_thirteen(self, u, v, expected):
        assert relate(u, v) is expected

    def test_exhaustive_partition(self):
        """Exactly one relation holds, and inverses are consistent."""
        span = range(0, 5)
        for us in span:
            for ue in range(us, 5):
                for vs in span:
                    for ve in range(vs, 5):
                        u, v = Interval(us, ue), Interval(vs, ve)
                        forward = relate(u, v)
                        backward = relate(v, u)
                        assert forward.inverse is backward

    def test_intersects_flag_agrees_with_overlap(self):
        for us in range(0, 5):
            for ue in range(us, 5):
                for vs in range(0, 5):
                    for ve in range(vs, 5):
                        u, v = Interval(us, ue), Interval(vs, ve)
                        assert relate(u, v).intersects == u.overlaps(v)


class TestInverse:
    def test_equal_is_self_inverse(self):
        assert AllenRelation.EQUAL.inverse is AllenRelation.EQUAL

    def test_inverse_is_involution(self):
        for relation in AllenRelation:
            assert relation.inverse.inverse is relation
