"""Unit tests for coalescing value-equivalent tuples."""

from repro.algebra.coalesce import coalesce, is_coalesced
from repro.model.schema import RelationSchema
from tests.conftest import make_relation


SCHEMA = RelationSchema("r", ("k",), ("a",))


class TestCoalesce:
    def test_merges_adjacent(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 4), ("x", "a", 5, 9)])
        out = coalesce(r)
        assert len(out) == 1
        assert out.tuples[0].valid.start == 0
        assert out.tuples[0].valid.end == 9

    def test_merges_overlapping(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 6), ("x", "a", 4, 9)])
        out = coalesce(r)
        assert len(out) == 1

    def test_keeps_gaps(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 2), ("x", "a", 5, 9)])
        out = coalesce(r)
        assert len(out) == 2

    def test_different_values_never_merge(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 4), ("x", "b", 5, 9)])
        assert len(coalesce(r)) == 2

    def test_different_keys_never_merge(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 4), ("y", "a", 5, 9)])
        assert len(coalesce(r)) == 2

    def test_idempotent(self):
        r = make_relation(
            SCHEMA,
            [("x", "a", 0, 4), ("x", "a", 3, 9), ("y", "b", 0, 0), ("y", "b", 1, 1)],
        )
        once = coalesce(r)
        twice = coalesce(once)
        assert once.multiset_equal(twice)

    def test_snapshot_equivalent(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 6), ("x", "a", 4, 9)])
        out = coalesce(r)
        for chronon in range(-1, 11):
            assert set(map(tuple, r.timeslice(chronon))) == set(
                map(tuple, out.timeslice(chronon))
            )


class TestIsCoalesced:
    def test_detects_adjacency(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 4), ("x", "a", 5, 9)])
        assert not is_coalesced(r)

    def test_detects_overlap(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 6), ("x", "a", 3, 9)])
        assert not is_coalesced(r)

    def test_accepts_gapped(self):
        r = make_relation(SCHEMA, [("x", "a", 0, 2), ("x", "a", 4, 9)])
        assert is_coalesced(r)

    def test_coalesce_establishes_invariant(self):
        r = make_relation(
            SCHEMA, [("x", "a", 0, 6), ("x", "a", 3, 9), ("x", "a", 10, 12)]
        )
        assert is_coalesced(coalesce(r))
