"""Unit tests for the query engine: optimizer estimates and the facade."""

import pytest

from repro.baselines.reference import reference_join
from repro.engine.database import TemporalDatabase
from repro.engine.optimizer import choose_algorithm, estimate_costs
from repro.model.errors import SchemaError
from repro.model.schema import RelationSchema
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec
from tests.conftest import random_relation


class TestOptimizerEstimates:
    MODEL = CostModel.with_ratio(5)

    def test_all_three_estimated(self):
        estimates = estimate_costs(1000, 1000, 64, self.MODEL)
        assert set(estimates) == {"partition", "sort_merge", "nested_loop"}
        assert all(e.cost > 0 for e in estimates.values())

    def test_partition_wins_at_scarce_memory(self):
        choice = choose_algorithm(2000, 2000, 40, self.MODEL)
        assert choice == "partition"

    def test_everything_fits_ties_break_to_partition(self):
        # Both relations fit in memory: all algorithms ~ two scans.
        choice = choose_algorithm(10, 10, 64, self.MODEL)
        assert choice == "partition"

    def test_long_lived_fraction_penalizes_sort_merge(self):
        plain = estimate_costs(2000, 2000, 40, self.MODEL)["sort_merge"].cost
        heavy = estimate_costs(
            2000, 2000, 40, self.MODEL, long_lived_fraction=0.5
        )["sort_merge"].cost
        assert heavy > plain

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            estimate_costs(10, 10, 8, self.MODEL, long_lived_fraction=2.0)

    def test_nested_loop_estimate_matches_paper_formula(self):
        from repro.baselines.nested_loop_cost import nested_loop_cost

        estimate = estimate_costs(500, 700, 32, self.MODEL)["nested_loop"]
        assert estimate.cost == nested_loop_cost(500, 700, 32, self.MODEL)


class TestTemporalDatabase:
    @pytest.fixture
    def db(self, schema_r, schema_s):
        db = TemporalDatabase(
            memory_pages=16, page_spec=PageSpec(page_bytes=512, tuple_bytes=128)
        )
        db.create_relation(schema_r)
        db.create_relation(schema_s)
        r = random_relation(schema_r, 400, seed=301, payload_tag="p")
        s = random_relation(schema_s, 400, seed=302, payload_tag="q")
        db.relation("works_on").extend(r.tuples)
        db.relation("earns").extend(s.tuples)
        return db

    def test_duplicate_relation_rejected(self, db, schema_r):
        with pytest.raises(SchemaError, match="already exists"):
            db.create_relation(schema_r)

    def test_missing_relation(self, db):
        with pytest.raises(SchemaError, match="no relation"):
            db.relation("ghost")

    def test_insert_rows(self, db):
        before = len(db.relation("works_on"))
        added = db.insert("works_on", [("zed", "proj", 0, 5)])
        assert added == 1
        assert len(db.relation("works_on")) == before + 1

    def test_every_method_gives_same_result(self, db):
        expected = reference_join(db.relation("works_on"), db.relation("earns"))
        results = {}
        for method in ("auto", "partition", "sort_merge", "nested_loop"):
            result = db.join("works_on", "earns", method=method)
            assert result.relation.multiset_equal(expected), method
            results[method] = result
        assert results["auto"].algorithm in ("partition", "sort_merge", "nested_loop")

    def test_join_reports_cost_and_estimates(self, db):
        result = db.join("works_on", "earns")
        assert result.cost > 0
        assert set(result.estimates) == {"partition", "sort_merge", "nested_loop"}

    def test_unknown_method(self, db):
        with pytest.raises(ValueError, match="unknown join method"):
            db.join("works_on", "earns", method="hash")

    def test_timeslice(self, db):
        rows = db.timeslice("works_on", 100)
        assert all(len(row) == 2 for row in rows)

    def test_aggregate(self, db):
        counts = db.aggregate("works_on", "count")
        assert len(counts) > 0
        assert all(tup.payload[0] >= 1 for tup in counts)

    def test_explain(self, db):
        estimates = db.explain("works_on", "earns")
        assert all(e.cost > 0 for e in estimates.values())

    def test_names(self, db):
        assert db.names() == ["earns", "works_on"]


class TestOptimizerChoiceQuality:
    def test_auto_choice_close_to_best_actual(self, schema_r, schema_s):
        """The optimizer's pick should cost within 2x of the best measured
        algorithm on a realistic workload (coarse estimates, honest test)."""
        db = TemporalDatabase(
            memory_pages=12, page_spec=PageSpec(page_bytes=512, tuple_bytes=128)
        )
        db.create_relation(schema_r)
        db.create_relation(schema_s)
        db.relation("works_on").extend(
            random_relation(schema_r, 700, seed=303, long_lived_fraction=0.3).tuples
        )
        db.relation("earns").extend(
            random_relation(schema_s, 700, seed=304, long_lived_fraction=0.3).tuples
        )
        actual = {
            method: db.join("works_on", "earns", method=method).cost
            for method in ("partition", "sort_merge", "nested_loop")
        }
        chosen = db.join("works_on", "earns", method="auto")
        assert chosen.cost <= 2 * min(actual.values())
