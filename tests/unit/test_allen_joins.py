"""Unit tests for the Allen-predicate join variants [LM90]."""

import pytest

from repro.baselines.reference import reference_join
from repro.model.schema import RelationSchema
from repro.time.allen import AllenRelation
from repro.variants.allen_joins import (
    allen_join,
    contain_join,
    contain_semijoin,
    intersect_join,
    overlap_join,
)
from tests.conftest import make_relation, random_relation


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))


class TestIntersectJoin:
    def test_equivalent_to_natural_join(self):
        r = random_relation(SCHEMA_R, 50, seed=91, n_keys=5)
        s = random_relation(SCHEMA_S, 50, seed=92, n_keys=5)
        assert intersect_join(r, s).multiset_equal(reference_join(r, s))


class TestOverlapJoin:
    def test_only_strict_partial_overlaps(self):
        r = make_relation(SCHEMA_R, [("x", "a", 0, 5)])
        s = make_relation(
            SCHEMA_S,
            [
                ("x", "partial", 3, 9),  # overlaps
                ("x", "inside", 1, 4),  # during -> excluded
                ("x", "equal", 0, 5),  # equal -> excluded
                ("x", "apart", 7, 9),  # before -> excluded
            ],
        )
        result = overlap_join(r, s)
        assert [t.payload for t in result] == [("a", "partial")]
        assert result.tuples[0].valid.start == 3
        assert result.tuples[0].valid.end == 5


class TestContainJoin:
    def test_contained_interval_is_result_timestamp(self):
        r = make_relation(SCHEMA_R, [("x", "outer", 0, 9)])
        s = make_relation(SCHEMA_S, [("x", "inner", 3, 5), ("x", "not", 8, 12)])
        result = contain_join(r, s)
        assert len(result) == 1
        assert result.tuples[0].valid.start == 3
        assert result.tuples[0].valid.end == 5

    def test_equal_counts_as_containment(self):
        r = make_relation(SCHEMA_R, [("x", "outer", 2, 6)])
        s = make_relation(SCHEMA_S, [("x", "same", 2, 6)])
        assert len(contain_join(r, s)) == 1


class TestContainSemijoin:
    def test_keeps_left_tuples_unchanged(self):
        r = make_relation(SCHEMA_R, [("x", "a", 0, 9), ("x", "b", 4, 5)])
        s = make_relation(SCHEMA_S, [("x", "w", 3, 5)])
        result = contain_semijoin(r, s)
        assert result.schema is SCHEMA_R
        assert [t.payload for t in result] == [("a",)]

    def test_single_witness_no_duplicates(self):
        r = make_relation(SCHEMA_R, [("x", "a", 0, 9)])
        s = make_relation(SCHEMA_S, [("x", "w1", 1, 2), ("x", "w2", 4, 5)])
        assert len(contain_semijoin(r, s)) == 1


class TestAllenJoinGeneric:
    def test_rejects_intersection_stamp_for_disjoint_predicates(self):
        r = make_relation(SCHEMA_R, [])
        s = make_relation(SCHEMA_S, [])
        with pytest.raises(ValueError, match="intersection"):
            allen_join(r, s, {AllenRelation.BEFORE}, timestamp="intersection")

    def test_before_join_with_left_stamp(self):
        r = make_relation(SCHEMA_R, [("x", "early", 0, 2)])
        s = make_relation(SCHEMA_S, [("x", "late", 5, 9)])
        result = allen_join(r, s, {AllenRelation.BEFORE}, timestamp="left")
        assert len(result) == 1
        assert result.tuples[0].valid.start == 0
        assert result.tuples[0].valid.end == 2

    def test_unknown_timestamp_policy(self):
        r = make_relation(SCHEMA_R, [])
        s = make_relation(SCHEMA_S, [])
        with pytest.raises(ValueError, match="policy"):
            allen_join(r, s, {AllenRelation.EQUAL}, timestamp="middle")

    def test_key_equality_always_required(self):
        r = make_relation(SCHEMA_R, [("x", "a", 0, 9)])
        s = make_relation(SCHEMA_S, [("y", "b", 2, 3)])
        assert len(contain_join(r, s)) == 0
