"""Unit tests for joinPartitions (Appendix A.1): sweep, cache, emission."""

import pytest

from repro.baselines.reference import reference_join
from repro.core.intervals import PartitionMap
from repro.core.joiner import join_partitions
from repro.core.partitioner import do_partitioning
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("rv",), tuple_bytes=256)
SCHEMA_S = RelationSchema("s", ("k",), ("sv",), tuple_bytes=256)


def build(rows_r, rows_s, pmap, buff_size=16, memory_pages=8):
    layout = DiskLayout(spec=PageSpec(page_bytes=1024, tuple_bytes=256))
    r = ValidTimeRelation(
        SCHEMA_R, [VTTuple((k,), (f"r{i}",), v) for i, (k, v) in enumerate(rows_r)]
    )
    s = ValidTimeRelation(
        SCHEMA_S, [VTTuple((k,), (f"s{i}",), v) for i, (k, v) in enumerate(rows_s)]
    )
    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    r_parts = do_partitioning(r_file, pmap, layout, "r", memory_pages)
    s_parts = do_partitioning(s_file, pmap, layout, "s", memory_pages)
    outcome = join_partitions(
        r_parts,
        s_parts,
        pmap,
        buff_size,
        layout,
        SCHEMA_R.join_result_schema(SCHEMA_S),
    )
    return outcome, reference_join(r, s), layout


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 29)])


class TestCorrectness:
    def test_simple_match_within_one_partition(self, pmap):
        outcome, ref, _ = build(
            [("a", Interval(2, 5))], [("a", Interval(3, 8))], pmap
        )
        assert outcome.result.multiset_equal(ref)
        assert len(ref) == 1

    def test_exactly_once_across_partitions(self, pmap):
        """A pair co-resident in several partitions is emitted once."""
        outcome, ref, _ = build(
            [("a", Interval(0, 29))], [("a", Interval(0, 29))], pmap
        )
        assert len(ref) == 1
        assert outcome.n_result_tuples == 1

    def test_long_lived_inner_migrates_through_cache(self, pmap):
        # Inner tuple stored in partition 2 must meet an outer stored in 0.
        outcome, ref, _ = build(
            [("a", Interval(2, 4))], [("a", Interval(0, 25))], pmap
        )
        assert len(ref) == 1
        assert outcome.result.multiset_equal(ref)

    def test_long_lived_outer_retained_in_buffer(self, pmap):
        outcome, ref, _ = build(
            [("a", Interval(0, 25))], [("a", Interval(2, 4))], pmap
        )
        assert len(ref) == 1
        assert outcome.result.multiset_equal(ref)

    def test_key_mismatch_never_joins(self, pmap):
        outcome, ref, _ = build(
            [("a", Interval(0, 29))], [("b", Interval(0, 29))], pmap
        )
        assert outcome.n_result_tuples == 0
        assert len(ref) == 0

    def test_mixed_workload_equals_reference(self, pmap):
        rows_r = [("a", Interval(i, min(29, i + 7))) for i in range(0, 28, 3)]
        rows_s = [("a", Interval(i, min(29, i + 2))) for i in range(0, 29, 2)]
        rows_s += [("b", Interval(0, 29))]
        outcome, ref, _ = build(rows_r, rows_s, pmap)
        assert outcome.result.multiset_equal(ref)


class TestBufferOverflow:
    def test_overflow_preserves_correctness(self, pmap):
        """With buffSize of 1 page, big partitions split into blocks."""
        rows_r = [("a", Interval(i % 30, i % 30)) for i in range(60)]
        rows_s = [("a", Interval(i % 30, i % 30)) for i in range(60)]
        outcome, ref, _ = build(rows_r, rows_s, pmap, buff_size=1)
        assert outcome.result.multiset_equal(ref)
        assert outcome.overflow_blocks > 0


class TestValidation:
    def test_misaligned_partitions_rejected(self, pmap):
        layout = DiskLayout(spec=PageSpec(page_bytes=1024, tuple_bytes=256))
        with pytest.raises(ValueError, match="align"):
            join_partitions([], [], pmap, 4, layout, None, collect=False)

    def test_collect_requires_schema(self, pmap):
        layout = DiskLayout(spec=PageSpec(page_bytes=1024, tuple_bytes=256))
        files = [layout.temp_file(f"p{i}") for i in range(3)]
        with pytest.raises(ValueError, match="result_schema"):
            join_partitions(files, files, pmap, 4, layout, None, collect=True)


class TestCacheCost:
    def test_cache_io_charged_for_long_lived_inner(self, pmap):
        _, _, layout = build(
            [("a", Interval(2, 4)), ("b", Interval(12, 14))],
            [("a", Interval(0, 25)), ("b", Interval(0, 25))],
            pmap,
        )
        # The long-lived inner tuples must have been written to the cache.
        cache_writes = layout.tracker.stats.writes
        assert cache_writes > 0
