"""Unit tests for the interval-pruned parallel probe executor.

The contract under test: :class:`PipelinedSweepEngine` and the pruned
probe functions produce matches and migration rows **bit-identical** (same
pairs, same emission order) to the PR-1 kernels' CSR probe, for every
backend, lane count, pool geometry, and on the composite-overflow fallback
path.
"""

import random

import pytest

from repro.core.intervals import PartitionMap
from repro.exec import kernels as kernels_module
from repro.exec import sweep_parallel as sweep
from repro.exec.backend import HAVE_NUMPY
from repro.exec.kernels import PythonKernels, get_kernels
from repro.exec.sweep_parallel import (
    PipelinedSweepEngine,
    PrunedProbeIndex,
    PrunedProbeIndexPython,
    default_sweep_workers,
    effective_sweep_workers,
    probe_pruned,
)
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")


@pytest.fixture(params=BACKENDS)
def kernels(request):
    return get_kernels(request.param)


def vt(key, start, end, tag="x"):
    return VTTuple((key,), (tag,), Interval(start, end))


@pytest.fixture
def pmap():
    return PartitionMap([Interval(0, 19), Interval(20, 39), Interval(40, 59)])


def random_tuples(rng, n, keys, hi=59):
    out = []
    for i in range(n):
        start = rng.randrange(0, hi + 1)
        end = min(hi, start + rng.choice((0, 0, 1, 2, 5, 25)))
        out.append(vt(rng.choice(keys), start, end, tag=i))
    return out


def oracle_probe(kernels, block, page, boundaries, part_index, direction):
    """The PR-1 CSR probe, with its own interner (the ground truth)."""
    interner = kernels.make_interner()
    index = kernels.build_probe_index(block, interner)
    batch = kernels.page_batch(page, interner)
    return kernels.probe(index, batch, boundaries, part_index, direction)


class TestProbeMatchesOracle:
    def test_fuzz_bit_identical_to_csr_probe(self, kernels, pmap):
        """Random workloads, both directions, all partitions: same matches
        in the same emission order, and the same migration rows."""
        rng = random.Random(0x5EED)
        boundaries = kernels.prepare_boundaries(pmap)
        for trial in range(25):
            keys = [f"k{j}" for j in range(rng.choice((1, 2, 5, 9)))]
            block = random_tuples(rng, rng.randrange(0, 40), keys)
            # Pages include keys absent from the block.
            page = random_tuples(rng, rng.randrange(0, 24), keys + ["ghost"])
            engine = PipelinedSweepEngine(pmap, "backward", workers=1, kernels=kernels)
            index_obj = engine.build_index(block)
            for direction in ("backward", "forward"):
                engine._direction = direction
                for part in range(len(pmap)):
                    want = oracle_probe(kernels, block, page, boundaries, part, direction)
                    got, migrate = engine.process_page(
                        index_obj, page, part, part + 1, True
                    )
                    assert got == want, f"trial {trial} {direction} part {part}"
                    oracle_interner = kernels.make_interner()
                    kernels.build_probe_index(block, oracle_interner)
                    want_migrate = kernels.migration_rows(
                        kernels.page_batch(page, oracle_interner),
                        boundaries,
                        part + 1,
                    )
                    assert list(migrate) == list(want_migrate)

    def test_empty_block_and_empty_page(self, kernels, pmap):
        engine = PipelinedSweepEngine(pmap, "backward", workers=1, kernels=kernels)
        index_obj = engine.build_index([])
        assert engine.process_page(index_obj, [vt("a", 1, 2)], 0, None, False) == ([], [])
        index_obj = engine.build_index([vt("a", 1, 2)])
        assert engine.process_page(index_obj, [], 0, None, False) == ([], [])


@needs_numpy
class TestLaneInvariance:
    def test_lane_count_is_unobservable(self, pmap, monkeypatch):
        """Same arrays out of probe_pruned for every lane count."""
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
        kernels = get_kernels("numpy")
        rng = random.Random(7)
        keys = [f"k{j}" for j in range(11)]
        block = random_tuples(rng, 120, keys)
        page = random_tuples(rng, 80, keys)
        boundaries = kernels.prepare_boundaries(pmap)
        interner = kernels.make_interner()
        index = PrunedProbeIndex(block, interner)
        batch = kernels.page_batch(page, interner)
        baseline = None
        for lanes in (1, 2, 3, 7, 64):
            got = probe_pruned(
                index,
                batch.key_ids,
                batch.starts,
                batch.ends,
                boundaries,
                1,
                "backward",
                lanes=lanes,
            )
            as_lists = [arr.tolist() for arr in got]
            if baseline is None:
                baseline = as_lists
            else:
                assert as_lists == baseline, f"lanes={lanes} changed the output"

    def test_composite_overflow_falls_back_to_csr(self, pmap):
        """Starts spread over ~2^61 chronons overflow the composite key;
        the index must carry a CSR fallback and stay correct through it."""
        kernels = get_kernels("numpy")
        far = 2**61
        block = [vt("a", 0, far), vt("a", far, far + 5), vt("b", 1, 4)]
        page = [vt("a", 2, far + 2), vt("b", 0, 9)]
        interner = kernels.make_interner()
        index = PrunedProbeIndex(block, interner)
        assert index.fallback is not None
        engine = PipelinedSweepEngine(pmap, "backward", workers=1, kernels=kernels)
        index_obj = engine.build_index(block)
        assert index_obj.fallback is not None
        got, _ = engine.process_page(index_obj, page, 0, None, False)
        want = oracle_probe(
            kernels, block, page, kernels.prepare_boundaries(pmap), 0, "backward"
        )
        assert got == want

    def test_small_pages_stay_single_lane(self, pmap):
        """Below MIN_LANE_ROWS the pool is never consulted."""
        kernels = get_kernels("numpy")
        interner = kernels.make_interner()
        block = [vt("a", 0, 9), vt("b", 3, 7)]
        page = [vt("a", 1, 5)]
        index = PrunedProbeIndex(block, interner)
        batch = kernels.page_batch(page, interner)

        class ExplodingPool:
            def map(self, fn, tasks):  # pragma: no cover - must not run
                raise AssertionError("pool used below the lane threshold")

        got = probe_pruned(
            index,
            batch.key_ids,
            batch.starts,
            batch.ends,
            kernels.prepare_boundaries(pmap),
            0,
            "backward",
            lanes=4,
            pool=ExplodingPool(),
        )
        assert got[0].size == 1


@needs_numpy
class TestEngine:
    def test_honors_default_kernels_monkeypatch(self, pmap, monkeypatch):
        monkeypatch.setattr(kernels_module, "_DEFAULT", PythonKernels())
        engine = PipelinedSweepEngine(pmap, "backward")
        assert engine._kernels.use_numpy is False
        assert isinstance(engine.build_index([vt("a", 1, 2)]), PrunedProbeIndexPython)

    def test_python_backend_never_opens_a_pool(self, pmap):
        engine = PipelinedSweepEngine(
            pmap, "backward", workers=4, kernels=get_kernels("python")
        )
        assert engine._ensure_pool() is None
        engine.close()

    def test_forced_pool_is_deterministic(self, pmap, monkeypatch):
        """OVERSUBSCRIBE forces a real multi-process pool even on one core;
        the matches must equal the single-lane run exactly."""
        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
        kernels = get_kernels("numpy")
        rng = random.Random(21)
        keys = [f"k{j}" for j in range(9)]
        block = random_tuples(rng, 90, keys)
        page = random_tuples(rng, 60, keys)

        serial = PipelinedSweepEngine(pmap, "backward", workers=1, kernels=kernels)
        want, _ = serial.process_page(serial.build_index(block), page, 1, None, False)

        pooled = PipelinedSweepEngine(pmap, "backward", workers=3, kernels=kernels)
        assert pooled.lanes == 3
        try:
            got, _ = pooled.process_page(pooled.build_index(block), page, 1, None, False)
        finally:
            pooled.close()
        assert got == want
        assert pooled.pool_dispatches + pooled.pool_fallbacks >= 1

    def test_pool_spawn_failure_degrades_in_process(self, pmap, monkeypatch):
        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)

        class BrokenContext:
            def Pool(self, processes):
                raise OSError("no processes here")

        monkeypatch.setattr(
            sweep.multiprocessing, "get_context", lambda *a, **k: BrokenContext()
        )
        kernels = get_kernels("numpy")
        block = [vt("a", 0, 9), vt("b", 3, 7), vt("a", 5, 12)]
        page = [vt("a", 1, 5), vt("b", 4, 6)]
        engine = PipelinedSweepEngine(pmap, "backward", workers=2, kernels=kernels)
        got, _ = engine.process_page(engine.build_index(block), page, 0, None, False)
        want = oracle_probe(
            kernels, block, page, kernels.prepare_boundaries(pmap), 0, "backward"
        )
        assert got == want
        assert engine.pool_fallbacks == 1
        assert engine._pool_broken

    def test_pool_crash_mid_probe_degrades_in_process(self, pmap, monkeypatch):
        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
        kernels = get_kernels("numpy")
        rng = random.Random(3)
        keys = [f"k{j}" for j in range(5)]
        block = random_tuples(rng, 50, keys)
        page = random_tuples(rng, 40, keys)
        engine = PipelinedSweepEngine(pmap, "backward", workers=2, kernels=kernels)

        class DyingPool:
            def map(self, fn, tasks):
                raise RuntimeError("worker died")

            def terminate(self):
                pass

            def join(self):
                pass

        engine._pool = DyingPool()
        got, _ = engine.process_page(engine.build_index(block), page, 1, None, False)
        want = oracle_probe(
            kernels, block, page, kernels.prepare_boundaries(pmap), 1, "backward"
        )
        assert got == want
        assert engine.pool_fallbacks == 1
        assert engine._pool is None  # the dead pool was shut down

    def test_close_is_idempotent(self, pmap):
        engine = PipelinedSweepEngine(pmap, "backward", workers=1)
        engine.close()
        engine.close()


class TestWorkerCounts:
    def test_default_caps_at_eight(self, monkeypatch):
        monkeypatch.setattr(sweep.os, "cpu_count", lambda: 32)
        assert default_sweep_workers() == 8
        monkeypatch.setattr(sweep.os, "cpu_count", lambda: 3)
        assert default_sweep_workers() == 3
        monkeypatch.setattr(sweep.os, "cpu_count", lambda: None)
        assert default_sweep_workers() == 1

    def test_effective_clamps_to_cores(self, monkeypatch):
        monkeypatch.setattr(sweep.os, "cpu_count", lambda: 2)
        assert effective_sweep_workers(8) == 2
        assert effective_sweep_workers(1) == 1
        assert effective_sweep_workers(None) == 2
        assert effective_sweep_workers(0) == 1

    def test_oversubscribe_lifts_the_clamp(self, monkeypatch):
        monkeypatch.setattr(sweep.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
        assert effective_sweep_workers(6) == 6
