"""Unit tests for intervals and the paper's overlap function."""

import pytest

from repro.time.interval import Interval, hull, overlap, overlaps


class TestConstruction:
    def test_valid_interval(self):
        interval = Interval(3, 9)
        assert interval.start == 3
        assert interval.end == 9

    def test_instantaneous(self):
        interval = Interval(5, 5)
        assert interval.duration == 1

    def test_reversed_raises(self):
        with pytest.raises(ValueError, match="precedes"):
            Interval(9, 3)

    def test_non_int_raises(self):
        with pytest.raises(TypeError):
            Interval("a", 3)

    def test_immutable(self):
        interval = Interval(1, 2)
        with pytest.raises(AttributeError):
            interval.start = 7


class TestIdentity:
    def test_equality_and_hash(self):
        assert Interval(1, 4) == Interval(1, 4)
        assert Interval(1, 4) != Interval(1, 5)
        assert hash(Interval(1, 4)) == hash(Interval(1, 4))
        assert len({Interval(1, 4), Interval(1, 4), Interval(2, 4)}) == 2

    def test_not_equal_to_other_types(self):
        assert Interval(1, 4) != (1, 4)

    def test_ordering_by_start_then_end(self):
        assert Interval(1, 9) < Interval(2, 3)
        assert Interval(1, 3) < Interval(1, 9)
        assert sorted([Interval(4, 5), Interval(1, 2)])[0] == Interval(1, 2)


class TestQueries:
    def test_duration(self):
        assert Interval(3, 7).duration == 5

    def test_contains_chronon(self):
        interval = Interval(2, 6)
        assert interval.contains_chronon(2)
        assert interval.contains_chronon(6)
        assert not interval.contains_chronon(1)
        assert not interval.contains_chronon(7)

    def test_contains_interval(self):
        assert Interval(0, 10).contains(Interval(3, 4))
        assert Interval(0, 10).contains(Interval(0, 10))
        assert not Interval(0, 10).contains(Interval(5, 11))

    def test_overlaps_shared_endpoint(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))

    def test_overlaps_disjoint(self):
        assert not Interval(0, 4).overlaps(Interval(5, 9))

    def test_precedes_and_meets(self):
        assert Interval(0, 4).precedes(Interval(5, 9))
        assert Interval(0, 4).meets(Interval(5, 9))
        assert not Interval(0, 4).meets(Interval(6, 9))

    def test_chronons_iteration(self):
        assert list(Interval(3, 6).chronons()) == [3, 4, 5, 6]


class TestIntersect:
    def test_partial_overlap(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_containment(self):
        assert Interval(0, 10).intersect(Interval(4, 6)) == Interval(4, 6)

    def test_disjoint_returns_none(self):
        assert Interval(0, 2).intersect(Interval(3, 5)) is None

    def test_single_shared_chronon(self):
        assert Interval(0, 5).intersect(Interval(5, 9)) == Interval(5, 5)

    def test_matches_chronon_set_definition(self):
        # The paper's procedural overlap: common chronons, min/max.
        for a_start in range(0, 6):
            for a_end in range(a_start, 6):
                for b_start in range(0, 6):
                    for b_end in range(b_start, 6):
                        a, b = Interval(a_start, a_end), Interval(b_start, b_end)
                        common = set(a.chronons()) & set(b.chronons())
                        expected = (
                            Interval(min(common), max(common)) if common else None
                        )
                        assert a.intersect(b) == expected


class TestModuleLevelOverlap:
    def test_propagates_bottom(self):
        assert overlap(None, Interval(0, 1)) is None
        assert overlap(Interval(0, 1), None) is None
        assert overlap(None, None) is None

    def test_delegates(self):
        assert overlap(Interval(0, 5), Interval(4, 9)) == Interval(4, 5)

    def test_predicate(self):
        assert overlaps(Interval(0, 5), Interval(5, 6))
        assert not overlaps(Interval(0, 5), Interval(6, 7))


class TestCombination:
    def test_union_overlapping(self):
        assert Interval(0, 5).union(Interval(3, 9)) == Interval(0, 9)

    def test_union_meeting(self):
        assert Interval(0, 4).union(Interval(5, 9)) == Interval(0, 9)
        assert Interval(5, 9).union(Interval(0, 4)) == Interval(0, 9)

    def test_union_disjoint_raises(self):
        with pytest.raises(ValueError, match="disjoint"):
            Interval(0, 3).union(Interval(5, 9))

    def test_shifted(self):
        assert Interval(2, 4).shifted(10) == Interval(12, 14)
        assert Interval(2, 4).shifted(-2) == Interval(0, 2)

    def test_clamp(self):
        assert Interval(0, 100).clamp(Interval(10, 20)) == Interval(10, 20)
        assert Interval(0, 5).clamp(Interval(10, 20)) is None


class TestHull:
    def test_empty(self):
        assert hull([]) is None

    def test_single(self):
        assert hull([Interval(3, 4)]) == Interval(3, 4)

    def test_multiple_disjoint(self):
        assert hull([Interval(5, 6), Interval(0, 1), Interval(9, 9)]) == Interval(0, 9)
