"""Unit tests for the nested-loop baseline, simulated and analytical."""

import pytest

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.nested_loop_cost import nested_loop_cost
from repro.baselines.reference import reference_join
from repro.model.errors import PlanError
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec
from tests.conftest import random_relation


SPEC = PageSpec(page_bytes=1024, tuple_bytes=128)


class TestSimulated:
    def test_equals_reference(self, schema_r, schema_s):
        r = random_relation(schema_r, 300, seed=41, payload_tag="p")
        s = random_relation(schema_s, 300, seed=42, payload_tag="q")
        run = nested_loop_join(r, s, 10, page_spec=SPEC)
        assert run.result.multiset_equal(reference_join(r, s))

    def test_block_count(self, schema_r, schema_s):
        r = random_relation(schema_r, 320, seed=43)  # 40 pages
        s = random_relation(schema_s, 80, seed=44)
        run = nested_loop_join(r, s, 12, page_spec=SPEC)  # blocks of 10
        assert run.n_outer_blocks == 4

    def test_memory_minimum(self, schema_r, schema_s):
        r = random_relation(schema_r, 10, seed=45)
        s = random_relation(schema_s, 10, seed=46)
        with pytest.raises(PlanError):
            nested_loop_join(r, s, 2)

    def test_simulated_matches_analytic_formula(self, schema_r, schema_s):
        """The key identity: the simulation reproduces the closed form."""
        r = random_relation(schema_r, 333, seed=47)
        s = random_relation(schema_s, 555, seed=48)
        model = CostModel.with_ratio(5)
        for memory in (4, 8, 17, 64):
            run = nested_loop_join(r, s, memory, page_spec=SPEC)
            simulated = run.layout.tracker.stats.cost(model)
            analytic = nested_loop_cost(
                SPEC.pages_for_tuples(len(r)),
                SPEC.pages_for_tuples(len(s)),
                memory,
                model,
            )
            assert simulated == pytest.approx(analytic), f"memory={memory}"


class TestAnalytic:
    def test_single_block_case(self):
        model = CostModel.with_ratio(5)
        # Outer fits in one block: one outer run + one inner run.
        cost = nested_loop_cost(10, 20, 12, model)
        assert cost == model.cost_of_run(10) + model.cost_of_run(20)

    def test_multi_block_case(self):
        model = CostModel.with_ratio(5)
        cost = nested_loop_cost(20, 30, 12, model)  # blocks of 10 -> 2 scans
        expected = 2 * model.cost_of_run(10) + 2 * model.cost_of_run(30)
        assert cost == expected

    def test_uneven_final_block(self):
        model = CostModel.with_ratio(2)
        cost = nested_loop_cost(15, 10, 12, model)  # blocks of 10 and 5
        expected = (
            model.cost_of_run(10)
            + model.cost_of_run(5)
            + 2 * model.cost_of_run(10)
        )
        assert cost == expected

    def test_empty_outer(self):
        assert nested_loop_cost(0, 10, 8, CostModel()) == 0.0

    def test_memory_minimum(self):
        with pytest.raises(PlanError):
            nested_loop_cost(10, 10, 2, CostModel())

    def test_cost_falls_with_memory(self):
        model = CostModel.with_ratio(5)
        costs = [nested_loop_cost(100, 100, m, model) for m in (4, 12, 52, 102)]
        assert costs == sorted(costs, reverse=True)
