"""Integration: the engine facade end to end, including persistence."""

import pytest

from repro.baselines.reference import reference_join
from repro.engine.database import TemporalDatabase
from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec
from repro.storage.serialize import load_jsonl, save_jsonl
from repro.time.calendar import between, day_to_chronon
from tests.conftest import random_relation


class TestEnginePipeline:
    def test_load_join_aggregate_save(self, tmp_path, schema_r, schema_s):
        """A full user session: build, persist, reload, join, aggregate."""
        source_r = random_relation(schema_r, 500, seed=401, payload_tag="p")
        source_s = random_relation(schema_s, 500, seed=402, payload_tag="q")
        r_path = tmp_path / "r.jsonl"
        s_path = tmp_path / "s.jsonl"
        save_jsonl(source_r, r_path)
        save_jsonl(source_s, s_path)

        db = TemporalDatabase(
            memory_pages=24, page_spec=PageSpec(page_bytes=512, tuple_bytes=128)
        )
        loaded_r = load_jsonl(r_path)
        loaded_s = load_jsonl(s_path)
        db.create_relation(loaded_r.schema)
        db.create_relation(loaded_s.schema)
        db.relation("works_on").extend(loaded_r.tuples)
        db.relation("earns").extend(loaded_s.tuples)

        result = db.join("works_on", "earns")
        expected = reference_join(source_r, source_s)
        assert result.relation.multiset_equal(expected)

        out_path = tmp_path / "joined.jsonl"
        save_jsonl(result.relation, out_path)
        assert load_jsonl(out_path).multiset_equal(result.relation)

        staffing = db.aggregate("works_on", "count")
        assert len(staffing) > 0

    def test_calendar_driven_workload(self):
        """Dates in, dates out -- the calendar mapping composes with joins."""
        from datetime import date

        db = TemporalDatabase(memory_pages=16)
        db.create_relation(RelationSchema("leases", ("tenant",), ("unit",)))
        db.create_relation(RelationSchema("rates", ("tenant",), ("rate",)))
        lease = between(date(2020, 1, 1), date(2020, 12, 31))
        rate_a = between(date(2019, 6, 1), date(2020, 6, 30))
        rate_b = between(date(2020, 7, 1), date(2021, 6, 30))
        db.insert("leases", [("t1", "4B", lease.start, lease.end)])
        db.insert(
            "rates",
            [
                ("t1", 1200, rate_a.start, rate_a.end),
                ("t1", 1250, rate_b.start, rate_b.end),
            ],
        )
        joined = db.join("leases", "rates").relation
        assert len(joined) == 2
        boundary = day_to_chronon(date(2020, 7, 1))
        rows = joined.timeslice(boundary)
        assert rows == [("t1", "4B", 1250)]

    def test_optimizer_respects_memory_changes(self, schema_r, schema_s):
        """The same database picks different plans as memory varies."""
        r = random_relation(schema_r, 900, seed=403)
        s = random_relation(schema_s, 900, seed=404)
        chosen = {}
        for memory in (8, 4096):
            db = TemporalDatabase(
                memory_pages=memory,
                page_spec=PageSpec(page_bytes=512, tuple_bytes=128),
            )
            db.create_relation(schema_r)
            db.create_relation(schema_s)
            db.relation("works_on").extend(r.tuples)
            db.relation("earns").extend(s.tuples)
            chosen[memory] = db.join("works_on", "earns").algorithm
        # At 4096 pages everything fits: any algorithm is two scans, the
        # tie-break picks partition.  At 8 pages the estimates genuinely
        # differ and some choice is made; both must execute correctly
        # (asserted by multiset checks elsewhere) -- here we pin the
        # structural fact that a choice happened per configuration.
        assert set(chosen.values()) <= {"partition", "sort_merge", "nested_loop"}
