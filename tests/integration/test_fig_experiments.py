"""Integration: the figure reproductions hold their paper shapes at test scale.

These run the same harness the benches run, at a smaller scale and with
thinned sweeps so the whole module stays fast.  The assertions are the
shape checks documented in DESIGN.md's per-experiment index.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments import fig4, fig6, fig7, fig8


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=32)


class TestFig4:
    def test_curve_shape(self, config):
        result = fig4.run_fig4(config, memory_mb=4)
        problems = fig4.shape_checks(result)
        assert problems == []

    def test_sampling_cost_rises_and_cache_cost_falls(self, config):
        result = fig4.run_fig4(config, memory_mb=4)
        curve = result.curve
        assert curve[-1].c_sample > curve[0].c_sample
        assert curve[-1].c_join_cache < curve[0].c_join_cache

    def test_chosen_point_interior_or_minimum(self, config):
        result = fig4.run_fig4(config, memory_mb=4)
        best = min(point.total for point in result.curve)
        chosen = next(
            p for p in result.curve if p.part_size == result.chosen_part_size
        )
        assert chosen.total == best


class TestFig6:
    @pytest.fixture(scope="class")
    def points(self, config):
        # The smallest paper memory (1 MiB) shrinks below useful bucket
        # buffering at this test scale, so the sweep starts at 2 MiB; the
        # benches run the full 1-32 MiB sweep at a larger scale.
        return fig6.run_fig6(config, memory_mb=(2, 4, 16, 32), ratios=(2, 10))

    def test_shape_checks(self, points):
        assert fig6.shape_checks(points) == []

    def test_partition_beats_sort_merge_when_memory_scarce(self, points):
        scarce = [p for p in points if p.memory_pages < p.relation_pages]
        partition = {
            (p.memory_mb, p.ratio): p.cost
            for p in scarce
            if p.algorithm == "partition"
        }
        sort_merge = {
            (p.memory_mb, p.ratio): p.cost
            for p in scarce
            if p.algorithm == "sort_merge"
        }
        assert partition  # the sweep includes scarce-memory points
        for key in partition:
            assert partition[key] < sort_merge[key]

    def test_costs_fall_with_memory_for_every_algorithm(self, points):
        for algorithm in ("partition", "sort_merge", "nested_loop"):
            for ratio in (2, 10):
                series = [
                    p.cost
                    for p in points
                    if p.algorithm == algorithm and p.ratio == ratio
                ]
                assert series[0] >= series[-1]


class TestFig7:
    @pytest.fixture(scope="class")
    def points(self, config):
        return fig7.run_fig7(
            config, long_lived_totals=(16_000, 64_000, 128_000)
        )

    def test_shape_checks(self, points):
        assert fig7.shape_checks(points) == []

    def test_backup_reads_grow_with_density(self, points):
        backups = [
            p.detail["backup_page_reads"]
            for p in points
            if p.algorithm == "sort_merge"
        ]
        assert backups[-1] > backups[0]

    def test_partition_cache_grows_with_density(self, points):
        caches = [
            p.detail["cache_tuples_peak"]
            for p in points
            if p.algorithm == "partition"
        ]
        assert caches[-1] > caches[0]


class TestFig8:
    @pytest.fixture(scope="class")
    def points(self, config):
        return fig8.run_fig8(
            config,
            long_lived_totals=(16_000, 64_000, 128_000),
            memory_mb=(1, 4, 32),
        )

    def test_shape_checks(self, points):
        assert fig8.shape_checks(points) == []

    def test_curves_converge_at_large_memory(self, points):
        def spread(mb):
            costs = [p.cost for p in points if p.memory_mb == mb]
            return max(costs) - min(costs)

        assert spread(1) > spread(32)
