"""Smoke test at the EXPERIMENTS.md reporting scale (1/8).

The rest of the suite runs at 1/16-1/64 scale for speed; this single test
confirms that the shape claims recorded in EXPERIMENTS.md hold at the
larger scale those numbers were measured at.  Only the Figure 6 sweep is
exercised (the slowest per-point figure is covered by the benches).
"""

from repro.experiments import ExperimentConfig, run_fig6
from repro.experiments.fig6 import shape_checks


def test_fig6_shape_holds_at_reporting_scale():
    config = ExperimentConfig(scale=8)
    points = run_fig6(config, ratios=(5,))
    assert shape_checks(points) == []
    # The headline fact behind EXPERIMENTS.md's Figure 6 table: wherever a
    # relation exceeds memory, the partition join beats sort-merge.
    scarce = [p for p in points if p.memory_pages < p.relation_pages]
    partition = {p.memory_mb: p.cost for p in scarce if p.algorithm == "partition"}
    sort_merge = {p.memory_mb: p.cost for p in scarce if p.algorithm == "sort_merge"}
    assert partition and all(
        partition[mb] < sort_merge[mb] for mb in partition
    )
