"""Integration: the CLI's `all` command runs every figure end to end."""

from repro.__main__ import main


def test_cli_all_small_scale(capsys):
    deviations = main(["all", "--scale", "64"])
    out = capsys.readouterr().out
    for marker in ("Figure 4", "Figure 6", "Figure 7", "Figure 8"):
        assert marker in out
    assert out.count("shape checks") == 4
    # At this very small scale some sweeps may show documented scale
    # artifacts; the command still completes and reports every verdict.
    assert deviations >= 0
