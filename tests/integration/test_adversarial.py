"""Adversarial inputs: the algorithms under hostile data shapes.

The property tests cover random smallness; these target the specific
shapes that break partition-based evaluation in practice: everything on
one key, everything at one chronon, a lifespan of one chronon, one tuple
covering everything, extreme skew, and planner sample sizes forced to
their minimum.  Every case must produce the exact reference result --
degraded performance is acceptable (the paper promises only that),
wrong answers are not.
"""

import pytest

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.reference import reference_join
from repro.baselines.sort_merge import sort_merge_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.interval import Interval


SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)
CONFIG = PartitionJoinConfig(memory_pages=8, page_spec=SPEC)


def run_all(r, s):
    expected = reference_join(r, s)
    partition = partition_join(r, s, CONFIG).result
    sort_merge = sort_merge_join(r, s, 8, page_spec=SPEC).result
    nested = nested_loop_join(r, s, 8, page_spec=SPEC).result
    assert partition.multiset_equal(expected)
    assert sort_merge.multiset_equal(expected)
    assert nested.multiset_equal(expected)
    return expected


class TestAdversarialShapes:
    def test_single_key_everything_joins(self):
        r = ValidTimeRelation(
            SCHEMA_R,
            [VTTuple(("k",), (f"a{i}",), Interval(i, i + 5)) for i in range(120)],
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [VTTuple(("k",), (f"b{i}",), Interval(i, i + 5)) for i in range(120)],
        )
        expected = run_all(r, s)
        assert len(expected) > 500  # dense cross-matching really happened

    def test_all_tuples_at_one_chronon(self):
        r = ValidTimeRelation(
            SCHEMA_R,
            [VTTuple((i % 5,), (f"a{i}",), Interval(7, 7)) for i in range(100)],
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [VTTuple((i % 5,), (f"b{i}",), Interval(7, 7)) for i in range(100)],
        )
        expected = run_all(r, s)
        assert len(expected) == 20 * 100  # 100 pairs per key over 5 keys

    def test_one_tuple_covers_everything(self):
        r = ValidTimeRelation(
            SCHEMA_R, [VTTuple((0,), ("blanket",), Interval(0, 10_000))]
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [VTTuple((0,), (f"b{i}",), Interval(i * 97, i * 97)) for i in range(100)],
        )
        expected = run_all(r, s)
        assert len(expected) == 100

    def test_duplicate_tuples_multiset_semantics(self):
        tup_r = VTTuple((0,), ("same",), Interval(0, 9))
        tup_s = VTTuple((0,), ("other",), Interval(5, 14))
        r = ValidTimeRelation(SCHEMA_R, [tup_r, tup_r, tup_r])
        s = ValidTimeRelation(SCHEMA_S, [tup_s, tup_s])
        expected = run_all(r, s)
        assert len(expected) == 6

    def test_interleaved_staircase(self):
        """Every r tuple straddles a partition boundary candidate."""
        r = ValidTimeRelation(
            SCHEMA_R,
            [VTTuple((0,), (f"a{i}",), Interval(i * 10, i * 10 + 15)) for i in range(60)],
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [VTTuple((0,), (f"b{i}",), Interval(i * 10 + 5, i * 10 + 20)) for i in range(60)],
        )
        run_all(r, s)

    def test_extreme_temporal_skew(self):
        r_tuples = [VTTuple((i % 7,), (f"a{i}",), Interval(5, 5)) for i in range(200)]
        r_tuples.append(VTTuple((0,), ("outlier",), Interval(1_000_000, 1_000_000)))
        s_tuples = [VTTuple((i % 7,), (f"b{i}",), Interval(5, 5)) for i in range(200)]
        r = ValidTimeRelation(SCHEMA_R, r_tuples)
        s = ValidTimeRelation(SCHEMA_S, s_tuples)
        run_all(r, s)

    def test_disjoint_lifespans_produce_nothing(self):
        r = ValidTimeRelation(
            SCHEMA_R, [VTTuple((0,), (f"a{i}",), Interval(i, i)) for i in range(50)]
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [VTTuple((0,), (f"b{i}",), Interval(1000 + i, 1000 + i)) for i in range(50)],
        )
        expected = run_all(r, s)
        assert len(expected) == 0

    def test_minimum_memory_every_algorithm(self):
        r = ValidTimeRelation(
            SCHEMA_R,
            [VTTuple((i % 3,), (f"a{i}",), Interval(i, i + 2)) for i in range(90)],
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [VTTuple((i % 3,), (f"b{i}",), Interval(i + 1, i + 3)) for i in range(90)],
        )
        expected = reference_join(r, s)
        # The partition join's floor is 5 pages: the Figure 3 fixed areas
        # plus a buffSize of 2 (1 page of error space is the planner's
        # minimum slack).
        assert partition_join(
            r, s, PartitionJoinConfig(memory_pages=5, page_spec=SPEC)
        ).result.multiset_equal(expected)
        assert sort_merge_join(r, s, 4, page_spec=SPEC).result.multiset_equal(expected)
        assert nested_loop_join(r, s, 3, page_spec=SPEC).result.multiset_equal(expected)
