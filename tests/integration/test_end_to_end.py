"""Integration: realistic multi-operator pipelines through the public API."""

import pytest

from repro.algebra.coalesce import coalesce
from repro.algebra.normalize import decompose
from repro.algebra.select_project import select_temporal
from repro.algebra.timeslice import timeslice
from repro.baselines.reference import reference_join
from repro.core.intervals import PartitionMap
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.incremental.view import MaterializedVTJoin
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.interval import Interval


class TestNormalizationViaPartitionJoin:
    """The paper's motivating use: reconstructing a normalized database with
    the measured partition join rather than the reference evaluation."""

    def test_decompose_then_partition_join(self):
        schema = RelationSchema("emp", ("name",), ("dept", "salary"))
        rows = []
        for e in range(40):
            base = e * 13 % 300
            rows.append((f"emp{e}", f"d{e % 5}", 100 + e, base, base + 40))
            rows.append((f"emp{e}", f"d{(e + 1) % 5}", 120 + e, base + 41, base + 90))
        history = ValidTimeRelation.from_rows(schema, rows)
        dept, salary = decompose(history, [("dept",), ("salary",)])

        run = partition_join(
            dept,
            salary,
            PartitionJoinConfig(
                memory_pages=8, page_spec=PageSpec(page_bytes=512, tuple_bytes=128)
            ),
        )
        rebuilt = coalesce(run.result)
        assert rebuilt.multiset_equal(coalesce(history))


class TestQueryPipeline:
    def test_window_query_over_join_result(self):
        schema_r = RelationSchema("assign", ("emp",), ("project",))
        schema_s = RelationSchema("pay", ("emp",), ("grade",))
        r = ValidTimeRelation.from_rows(
            schema_r,
            [(f"e{i}", f"p{i % 3}", i * 5, i * 5 + 30) for i in range(30)],
        )
        s = ValidTimeRelation.from_rows(
            schema_s,
            [(f"e{i}", i % 4, i * 5 + 10, i * 5 + 50) for i in range(30)],
        )
        run = partition_join(r, s, PartitionJoinConfig(memory_pages=8))
        window = Interval(40, 80)
        clipped = select_temporal(run.result, window)
        expected = select_temporal(reference_join(r, s), window)
        assert clipped.multiset_equal(expected)

    def test_timeslice_of_materialized_view_matches_join(self):
        schema_r = RelationSchema("r", ("k",), ("a",))
        schema_s = RelationSchema("s", ("k",), ("b",))
        pmap = PartitionMap([Interval(0, 49), Interval(50, 99)])
        r_tuples = [
            VTTuple((i % 6,), (f"a{i}",), Interval(i, min(99, i + 20)))
            for i in range(0, 90, 7)
        ]
        s_tuples = [
            VTTuple((i % 6,), (f"b{i}",), Interval(i, min(99, i + 10)))
            for i in range(0, 90, 5)
        ]
        view = MaterializedVTJoin(schema_r, schema_s, pmap, r_tuples, s_tuples)
        joined = reference_join(
            ValidTimeRelation(schema_r, r_tuples),
            ValidTimeRelation(schema_s, s_tuples),
        )
        for chronon in (0, 25, 50, 75, 99):
            assert sorted(map(repr, view.snapshot().timeslice(chronon))) == sorted(
                map(repr, joined.timeslice(chronon))
            )


class TestViewMaintainedUnderChurnThenQueried:
    def test_full_cycle(self):
        schema_r = RelationSchema("r", ("k",), ("a",))
        schema_s = RelationSchema("s", ("k",), ("b",))
        pmap = PartitionMap([Interval(0, 29), Interval(30, 59), Interval(60, 99)])
        view = MaterializedVTJoin(schema_r, schema_s, pmap)

        r_live, s_live = [], []
        for i in range(60):
            tup = VTTuple((i % 5,), (f"a{i}",), Interval(i % 80, min(99, i % 80 + 15)))
            view.insert_r(tup)
            r_live.append(tup)
        for i in range(60):
            tup = VTTuple((i % 5,), (f"b{i}",), Interval((i * 3) % 80, min(99, (i * 3) % 80 + 8)))
            view.insert_s(tup)
            s_live.append(tup)
        # Churn: delete every third r tuple.
        for tup in r_live[::3]:
            view.delete_r(tup)
        remaining_r = [t for i, t in enumerate(r_live) if i % 3 != 0]

        expected = reference_join(
            ValidTimeRelation(schema_r, remaining_r),
            ValidTimeRelation(schema_s, s_live),
        )
        assert view.snapshot().multiset_equal(expected)
        assert timeslice(view.snapshot(), 45) == timeslice(expected, 45)
