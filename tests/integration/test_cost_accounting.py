"""Integration: cost-accounting identities across the stack.

These tests pin the simulator's global invariants: analytical formulas match
simulation, phase costs sum to totals, and the documented accounting units
(one random seek plus sequential transfers per extent run) survive being
composed into whole-algorithm executions.
"""

import pytest

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.nested_loop_cost import nested_loop_cost
from repro.baselines.sort_merge import sort_merge_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.experiments.config import ExperimentConfig
from repro.storage.iostats import CostModel
from repro.storage.page import PageSpec
from repro.workloads.specs import DatabaseSpec


SPEC = PageSpec(page_bytes=1024, tuple_bytes=128)


@pytest.fixture(scope="module")
def workload():
    spec = DatabaseSpec(
        "cost_acc",
        relation_tuples=2048,
        long_lived_per_relation=256,
        n_objects=200,
        lifespan_chronons=100_000,
    )
    return ExperimentConfig(scale=1).database(spec)


class TestNestedLoopIdentity:
    @pytest.mark.parametrize("memory", [4, 10, 33, 120, 300])
    def test_simulation_equals_formula(self, workload, memory):
        r, s = workload
        model = CostModel.with_ratio(5)
        run = nested_loop_join(r, s, memory, page_spec=SPEC, collect_result=False)
        simulated = run.layout.tracker.stats.cost(model)
        expected = nested_loop_cost(
            SPEC.pages_for_tuples(len(r)),
            SPEC.pages_for_tuples(len(s)),
            memory,
            model,
        )
        assert simulated == pytest.approx(expected)


class TestAccountingClosure:
    def test_partition_phase_sum(self, workload):
        r, s = workload
        run = partition_join(
            r, s, PartitionJoinConfig(memory_pages=32, page_spec=SPEC)
        )
        tracker = run.layout.tracker
        phase_ops = sum(stats.total_ops for stats in tracker.phases.values())
        assert phase_ops == tracker.stats.total_ops

    def test_sort_merge_phase_sum(self, workload):
        r, s = workload
        run = sort_merge_join(r, s, 32, page_spec=SPEC)
        tracker = run.layout.tracker
        phase_ops = sum(stats.total_ops for stats in tracker.phases.values())
        assert phase_ops == tracker.stats.total_ops

    def test_cost_monotone_in_ratio(self, workload):
        """The same run weighs higher under a more expensive random model."""
        r, s = workload
        run = sort_merge_join(r, s, 16, page_spec=SPEC)
        stats = run.layout.tracker.stats
        costs = [stats.cost(CostModel.with_ratio(k)) for k in (2, 5, 10)]
        assert costs == sorted(costs)
        assert stats.random_ops > 0

    def test_partition_join_reads_at_least_both_relations(self, workload):
        """Lower bound: every algorithm must read each input at least once."""
        r, s = workload
        run = partition_join(
            r, s, PartitionJoinConfig(memory_pages=32, page_spec=SPEC)
        )
        total_input_pages = SPEC.pages_for_tuples(len(r)) + SPEC.pages_for_tuples(len(s))
        assert run.layout.tracker.stats.reads >= total_input_pages


class TestScanSamplingAblationDirection:
    def test_forcing_random_sampling_never_cheaper(self, workload):
        r, s = workload
        model = CostModel.with_ratio(10)
        base = PartitionJoinConfig(
            memory_pages=128, page_spec=SPEC, cost_model=model
        )
        forced = PartitionJoinConfig(
            memory_pages=128,
            page_spec=SPEC,
            cost_model=model,
            allow_scan_sampling=False,
        )
        with_opt = partition_join(r, s, base)
        without_opt = partition_join(r, s, forced)
        # The optimization caps the sampling phase near one linear scan of
        # the outer relation (plus the estimate-floor random draws).
        cost_with = with_opt.layout.tracker.phase_cost("sample", model)
        r_pages = SPEC.pages_for_tuples(len(r))
        assert cost_with <= model.cost_of_run(r_pages) + 64 * model.io_ran
        # End to end, the optimized planner is never meaningfully worse (the
        # two searches may settle on slightly different plans).
        assert with_opt.total_cost(model) <= without_opt.total_cost(model) * 1.05
