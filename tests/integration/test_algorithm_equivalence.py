"""Integration: all evaluation algorithms agree on generated workloads.

The unit and property tests cover small adversarial inputs; these tests run
the actual experiment workloads (scaled down) through every algorithm and
compare full result multisets.
"""

import pytest

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.reference import reference_join
from repro.baselines.sort_merge import sort_merge_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.core.replicating import replicating_partition_join
from repro.experiments.config import ExperimentConfig
from repro.storage.page import PageSpec
from repro.workloads.specs import DatabaseSpec


@pytest.fixture(scope="module")
def workload():
    spec = DatabaseSpec(
        "integration",
        relation_tuples=1500,
        long_lived_per_relation=300,
        n_objects=120,
        lifespan_chronons=50_000,
    )
    config = ExperimentConfig(scale=1)
    r, s = config.database(spec)
    return r, s, reference_join(r, s)


PAGE_SPEC = PageSpec(page_bytes=1024, tuple_bytes=128)


class TestEquivalenceOnExperimentWorkload:
    @pytest.mark.parametrize("memory", [8, 24, 96])
    def test_partition_join(self, workload, memory):
        r, s, expected = workload
        run = partition_join(
            r, s, PartitionJoinConfig(memory_pages=memory, page_spec=PAGE_SPEC)
        )
        assert run.result.multiset_equal(expected)

    @pytest.mark.parametrize("memory", [8, 24, 96])
    def test_sort_merge(self, workload, memory):
        r, s, expected = workload
        run = sort_merge_join(r, s, memory, page_spec=PAGE_SPEC)
        assert run.result.multiset_equal(expected)

    def test_nested_loop(self, workload):
        r, s, expected = workload
        run = nested_loop_join(r, s, 16, page_spec=PAGE_SPEC)
        assert run.result.multiset_equal(expected)

    def test_replicating_partition_join(self, workload):
        r, s, expected = workload
        run = replicating_partition_join(
            r, s, PartitionJoinConfig(memory_pages=24, page_spec=PAGE_SPEC)
        )
        assert run.outcome.result.multiset_equal(expected)

    def test_result_cardinality_is_nontrivial(self, workload):
        _, _, expected = workload
        assert len(expected) > 50  # the workload genuinely joins


class TestAblationEquivalence:
    def test_scan_sampling_off_same_result(self, workload):
        r, s, expected = workload
        run = partition_join(
            r,
            s,
            PartitionJoinConfig(
                memory_pages=24, page_spec=PAGE_SPEC, allow_scan_sampling=False
            ),
        )
        assert run.result.multiset_equal(expected)

    def test_different_seeds_same_result(self, workload):
        r, s, expected = workload
        for seed in (1, 2, 3):
            run = partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=24, page_spec=PAGE_SPEC, seed=seed
                ),
            )
            assert run.result.multiset_equal(expected)
