"""Execution-mode equivalence: batch kernels vs the tuple-at-a-time oracle.

The contract of the batch execution layer is *bit-identical observability*:
for every scenario, ``execution="batch"`` and ``"batch-parallel"`` must
reproduce the tuple-mode oracle's result relation (same tuples, same
order), JoinOutcome counters, and per-phase I/O statistics exactly -- not
approximately, not merely as multisets.  These tests drive the equivalence
through the paths the unit tests cannot reach: the overflow/"thrashing"
path (``overflow_blocks > 0``), both sweep directions, the tuple-cache
spill and residency trade-off, the single-partition shortcut, and the
predicate-join variants, under both kernel backends.
"""

from __future__ import annotations

import pytest

import repro.exec.kernels as kernels_module
from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.reference import reference_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.exec.backend import HAVE_NUMPY
from repro.storage.page import PageSpec
from repro.time.allen import AllenRelation
from repro.variants.partitioned import partitioned_predicate_join
from tests.conftest import random_relation

BATCH_MODES = ("batch", "batch-parallel")
BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Pin the process-default kernels to one backend for the test."""
    monkeypatch.setattr(
        kernels_module, "_DEFAULT", kernels_module.get_kernels(request.param)
    )
    return request.param


def stats_tuple(stats):
    return (
        stats.random_reads,
        stats.sequential_reads,
        stats.random_writes,
        stats.sequential_writes,
    )


def observe(run):
    """Everything observable about a partition-join run, exactly."""
    outcome = run.outcome
    return {
        "result": tuple(outcome.result.tuples) if outcome.result is not None else None,
        "n_result_tuples": outcome.n_result_tuples,
        "overflow_blocks": outcome.overflow_blocks,
        "cache_tuples_peak": outcome.cache_tuples_peak,
        "cache_tuples_spilled": outcome.cache_tuples_spilled,
        "stats": stats_tuple(run.layout.tracker.stats),
        "phases": {
            name: stats_tuple(stats)
            for name, stats in run.layout.tracker.phases.items()
        },
        "result_stats": stats_tuple(run.layout.result_stats),
        "plan_intervals": tuple(run.plan.intervals),
    }


def run_modes(r, s, make_config, **join_kwargs):
    """Run all three modes and assert batch modes equal the tuple oracle."""
    oracle = partition_join(r, s, make_config("tuple"), **join_kwargs)
    expected = observe(oracle)
    for mode in BATCH_MODES:
        run = partition_join(r, s, make_config(mode), **join_kwargs)
        assert observe(run) == expected, f"mode {mode} diverged from tuple oracle"
    return oracle


class TestSweepEquivalence:
    @pytest.mark.parametrize("direction", ["backward", "forward"])
    def test_partitioned_sweep_with_overflow(
        self, schema_r, schema_s, backend, direction, monkeypatch
    ):
        """The thrashing path: a buffer too small for the partitions."""
        import repro.exec.parallel as parallel_module

        # Force batch-parallel through the real process pool even at test sizes.
        monkeypatch.setattr(parallel_module, "MIN_PARALLEL_TUPLES", 0)
        r = random_relation(schema_r, 700, seed=11, n_keys=18)
        s = random_relation(schema_s, 800, seed=12, n_keys=18)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=12,
                sweep_direction=direction,
                execution=mode,
                parallel_workers=2,
            )

        oracle = run_modes(r, s, make_config)
        assert oracle.outcome.overflow_blocks > 0
        assert oracle.result.multiset_equal(reference_join(r, s))

    @pytest.mark.parametrize("direction", ["backward", "forward"])
    def test_cache_residency_reservation(self, schema_r, schema_s, backend, direction):
        r = random_relation(schema_r, 500, seed=21, long_lived_fraction=0.6)
        s = random_relation(schema_s, 500, seed=22, long_lived_fraction=0.6)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=16,
                sweep_direction=direction,
                cache_buffer_pages=2,
                execution=mode,
                parallel_workers=2,
            )

        oracle = run_modes(r, s, make_config)
        assert oracle.outcome.cache_tuples_peak > 0
        assert oracle.result.multiset_equal(reference_join(r, s))

    def test_single_partition_shortcut(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 60, seed=31)
        s = random_relation(schema_s, 500, seed=32)

        def make_config(mode):
            return PartitionJoinConfig(memory_pages=64, execution=mode)

        oracle = run_modes(r, s, make_config)
        assert oracle.plan.num_partitions == 1

    def test_small_pages_exercise_many_batches(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 300, seed=41)
        s = random_relation(schema_s, 300, seed=42)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=10,
                page_spec=PageSpec(page_bytes=512, tuple_bytes=128),
                execution=mode,
            )

        run_modes(r, s, make_config)


class TestPipelinedSweepEquivalence:
    """``"batch-parallel-sweep"``: results and counters bit-identical, I/O
    *op counts* bit-identical, weighted cost never above the oracle.

    The pipeline's contract is deliberately one notch weaker than the batch
    modes' on the random/sequential split: write-behind reorders the CACHE
    device's accesses (same ops, fewer-or-equal randoms), so the full
    per-kind breakdown is only bit-equal when the serial sweep has no
    interleaved cache traffic -- which one scenario below pins down.
    """

    @staticmethod
    def observe_counts(run):
        obs = observe(run)
        stats = run.layout.tracker.stats
        obs["stats"] = (stats.reads, stats.writes)
        obs["phases"] = {
            name: (phase.reads, phase.writes)
            for name, phase in run.layout.tracker.phases.items()
        }
        return obs

    @pytest.mark.parametrize("direction", ["backward", "forward"])
    def test_sweep_equivalence_with_overflow(
        self, schema_r, schema_s, backend, direction
    ):
        r = random_relation(schema_r, 700, seed=11, n_keys=18)
        s = random_relation(schema_s, 800, seed=12, n_keys=18)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=12, sweep_direction=direction, execution=mode
            )

        oracle = partition_join(r, s, make_config("tuple"))
        run = partition_join(r, s, make_config("batch-parallel-sweep"))
        assert oracle.outcome.overflow_blocks > 0
        assert self.observe_counts(run) == self.observe_counts(oracle)
        cost_model = make_config("tuple").cost_model
        assert run.layout.tracker.stats.cost(cost_model) <= oracle.layout.tracker.stats.cost(cost_model)
        assert oracle.result.multiset_equal(reference_join(r, s))

    def test_sweep_full_bit_equality_without_cache_spill(
        self, schema_r, schema_s, backend
    ):
        """With the tuple cache fully resident the CACHE device is silent,
        prefetch is a strict prefix of the serial read order, and the whole
        statistics breakdown -- random/sequential included -- is bit-equal."""
        r = random_relation(schema_r, 500, seed=21, long_lived_fraction=0.3)
        s = random_relation(schema_s, 500, seed=22, long_lived_fraction=0.3)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=20, cache_buffer_pages=6, execution=mode
            )

        oracle = partition_join(r, s, make_config("tuple"))
        run = partition_join(r, s, make_config("batch-parallel-sweep"))
        assert oracle.outcome.cache_tuples_spilled == 0
        assert observe(run) == observe(oracle)
        stats = run.layout.tracker.stats
        assert stats.prefetch_reads > 0  # the pipeline actually ran

    def test_sweep_zero_depth_disables_readahead(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 400, seed=31)
        s = random_relation(schema_s, 400, seed=32)
        oracle = partition_join(
            r, s, PartitionJoinConfig(memory_pages=10, execution="tuple")
        )
        run = partition_join(
            r,
            s,
            PartitionJoinConfig(
                memory_pages=10, execution="batch-parallel-sweep", prefetch_depth=0
            ),
        )
        assert self.observe_counts(run) == self.observe_counts(oracle)
        assert run.layout.tracker.stats.prefetch_reads == 0

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sweep_worker_count_is_unobservable(
        self, schema_r, schema_s, backend, workers, monkeypatch
    ):
        """The lane count must never leak into any observable."""
        import repro.exec.sweep_parallel as sweep_module

        monkeypatch.setattr(sweep_module, "OVERSUBSCRIBE", True)
        monkeypatch.setattr(sweep_module, "MIN_LANE_ROWS", 0)
        r = random_relation(schema_r, 500, seed=41, n_keys=24)
        s = random_relation(schema_s, 500, seed=42, n_keys=24)
        runs = [
            partition_join(
                r,
                s,
                PartitionJoinConfig(
                    memory_pages=12,
                    execution="batch-parallel-sweep",
                    sweep_workers=w,
                ),
            )
            for w in (workers, 1)
        ]
        assert observe(runs[0]) == observe(runs[1])

    def test_sweep_predicate_variant(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 400, seed=51, long_lived_fraction=0.5)
        s = random_relation(schema_s, 400, seed=52, long_lived_fraction=0.5)
        accepted = [
            rel for rel in AllenRelation if getattr(rel, "intersects", False)
        ]
        runs = {}
        for mode in ("tuple", "batch-parallel-sweep"):
            config = PartitionJoinConfig(memory_pages=12, execution=mode)
            run = partitioned_predicate_join(r, s, config, accepted)
            obs = observe(run)
            stats = run.layout.tracker.stats
            obs["stats"] = (stats.reads, stats.writes)
            obs["phases"] = {
                name: (phase.reads, phase.writes)
                for name, phase in run.layout.tracker.phases.items()
            }
            runs[mode] = obs
        assert runs["batch-parallel-sweep"] == runs["tuple"]


class TestZeroCopySweepEquivalence:
    """``"zero-copy-sweep"``: the columnar page layout and shared-memory
    fan-out are pure mechanism.  The mode's every observable -- including
    the full random/sequential breakdown per phase -- must equal
    ``"batch-parallel-sweep"`` exactly, and its relationship to the tuple
    oracle is exactly the pipelined contract (same op counts, never
    costlier)."""

    @pytest.mark.parametrize("direction", ["backward", "forward"])
    def test_full_stats_equal_pipelined_sweep(
        self, schema_r, schema_s, backend, direction
    ):
        r = random_relation(schema_r, 700, seed=11, n_keys=18)
        s = random_relation(schema_s, 800, seed=12, n_keys=18)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=12, sweep_direction=direction, execution=mode
            )

        pipelined = partition_join(r, s, make_config("batch-parallel-sweep"))
        zero_copy = partition_join(r, s, make_config("zero-copy-sweep"))
        assert pipelined.outcome.overflow_blocks > 0  # the thrashing path
        assert observe(zero_copy) == observe(pipelined)

    def test_op_counts_equal_tuple_oracle(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 500, seed=21, long_lived_fraction=0.6)
        s = random_relation(schema_s, 500, seed=22, long_lived_fraction=0.6)

        def make_config(mode):
            return PartitionJoinConfig(
                memory_pages=16, cache_buffer_pages=2, execution=mode
            )

        oracle = partition_join(r, s, make_config("tuple"))
        run = partition_join(r, s, make_config("zero-copy-sweep"))
        observe_counts = TestPipelinedSweepEquivalence.observe_counts
        assert observe_counts(run) == observe_counts(oracle)
        cost_model = make_config("tuple").cost_model
        assert (
            run.layout.tracker.stats.cost(cost_model)
            <= oracle.layout.tracker.stats.cost(cost_model)
        )
        assert oracle.result.multiset_equal(reference_join(r, s))

    def test_columnar_layout_is_on_disk(self, schema_r, schema_s, backend):
        """The mode actually runs over packed pages, not tuple lists."""
        from repro.storage.columnar_page import ColumnarPage

        r = random_relation(schema_r, 200, seed=31)
        s = random_relation(schema_s, 200, seed=32)
        run = partition_join(
            r, s, PartitionJoinConfig(memory_pages=10, execution="zero-copy-sweep")
        )
        assert run.layout.columnar
        # Any file written through this layout packs columnar pages.
        heap = run.layout.temp_file("probe", capacity_tuples=8)
        heap.append_many(list(r.tuples)[:8])
        heap.flush()
        assert isinstance(next(iter(heap.scan_pages())), ColumnarPage)


class TestVariantsAndBaselines:
    def test_predicate_variant_equivalence(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 400, seed=51, long_lived_fraction=0.5)
        s = random_relation(schema_s, 400, seed=52, long_lived_fraction=0.5)
        accepted = [
            rel for rel in AllenRelation if getattr(rel, "intersects", False)
        ]
        runs = {}
        for mode in ("tuple",) + BATCH_MODES:
            config = PartitionJoinConfig(memory_pages=12, execution=mode)
            runs[mode] = observe(
                partitioned_predicate_join(r, s, config, accepted)
            )
        assert runs["batch"] == runs["tuple"]
        assert runs["batch-parallel"] == runs["tuple"]

    def test_nested_loop_batch_equivalence(self, schema_r, schema_s, backend):
        r = random_relation(schema_r, 300, seed=61)
        s = random_relation(schema_s, 300, seed=62)
        runs = {}
        for mode in ("tuple", "batch"):
            result = nested_loop_join(r, s, memory_pages=8, execution=mode)
            runs[mode] = (
                tuple(result.result.tuples),
                result.n_result_tuples,
                result.n_outer_blocks,
                stats_tuple(result.layout.tracker.stats),
            )
        assert runs["batch"] == runs["tuple"]
        assert runs["tuple"][1] == len(reference_join(r, s))


class TestConfigValidation:
    def test_unknown_execution_rejected(self):
        with pytest.raises(ValueError):
            PartitionJoinConfig(memory_pages=8, execution="gpu")

    @pytest.mark.parametrize("workers", [0, -2])
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(ValueError):
            PartitionJoinConfig(memory_pages=8, parallel_workers=workers)

    @pytest.mark.parametrize("depth", [-1, 2.5])
    def test_bad_prefetch_depth_rejected(self, depth):
        with pytest.raises(ValueError):
            PartitionJoinConfig(memory_pages=8, prefetch_depth=depth)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_nonpositive_sweep_workers_rejected(self, workers):
        with pytest.raises(ValueError):
            PartitionJoinConfig(memory_pages=8, sweep_workers=workers)
