"""Property tests for interval-set normalize/subtract against chronon sets."""

from hypothesis import given, strategies as st

from repro.time.interval import Interval
from repro.time.intervalset import covers, normalize, subtract, total_duration


def intervals(max_chronon=60):
    return st.tuples(
        st.integers(0, max_chronon), st.integers(0, max_chronon)
    ).map(lambda pair: Interval(min(pair), max(pair)))


def interval_lists(max_chronon=60, max_size=8):
    return st.lists(intervals(max_chronon), max_size=max_size)


def chronon_set(interval_list):
    chronons = set()
    for interval in interval_list:
        chronons.update(interval.chronons())
    return chronons


class TestNormalize:
    @given(interval_lists())
    def test_preserves_chronon_set(self, interval_list):
        assert chronon_set(normalize(interval_list)) == chronon_set(interval_list)

    @given(interval_lists())
    def test_canonical_form(self, interval_list):
        result = normalize(interval_list)
        for earlier, later in zip(result, result[1:]):
            assert earlier.end + 1 < later.start  # disjoint AND non-adjacent

    @given(interval_lists())
    def test_idempotent(self, interval_list):
        once = normalize(interval_list)
        assert normalize(once) == once

    @given(interval_lists())
    def test_total_duration_is_set_size(self, interval_list):
        assert total_duration(interval_list) == len(chronon_set(interval_list))


class TestSubtract:
    @given(intervals(), interval_lists())
    def test_matches_set_difference(self, target, blocks):
        expected = set(target.chronons()) - chronon_set(blocks)
        got = chronon_set(subtract(target, blocks))
        assert got == expected

    @given(intervals(), interval_lists())
    def test_gaps_within_target(self, target, blocks):
        for gap in subtract(target, blocks):
            assert target.contains(gap)

    @given(intervals(), interval_lists())
    def test_covers_iff_no_gaps(self, target, blocks):
        assert covers(blocks, target) == (not subtract(target, blocks))
