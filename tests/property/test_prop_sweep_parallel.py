"""Property tests: ``"batch-parallel-sweep"`` is the tuple sweep, faster.

The pipelined mode's whole contract is *unobservability*: on arbitrary
inputs -- including the overflow machinery under tight memory and the
permanent-fault degradation ladder -- its result tuples (payloads **and**
overlap intervals, in emission order) and its :class:`JoinOutcome`
counters are bit-identical to plain tuple-at-a-time execution.

Degradation is exercised with *page-keyed* faults (``fail_read`` on a
named extent page), never op-count-keyed crashes: the pipelined mode
reorders the global charge sequence (read-ahead, write-behind), so "the
k-th operation" names different physical accesses in different modes and
would diverge by construction.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.resilience import FaultInjector
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",), tuple_bytes=128)
SCHEMA_S = RelationSchema("s", ("k",), ("b",), tuple_bytes=128)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)  # 4 tuples/page: many pages

prop_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def vt_tuples(tag):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 5),
        start=st.integers(0, 80),
        duration=st.integers(0, 40),
        payload=st.integers(0, 1000),
    )


def relations(schema, tag, min_size=0):
    return st.lists(vt_tuples(tag), min_size=min_size, max_size=40).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


def config(execution, memory, **overrides):
    settings_ = dict(memory_pages=memory, page_spec=SPEC, execution=execution)
    settings_.update(overrides)
    return PartitionJoinConfig(**settings_)


def observe(run):
    """Everything the pipelined mode promises to reproduce exactly."""
    outcome = run.outcome
    return {
        "tuples": list(run.result.tuples),  # payloads + overlap intervals, in order
        "n_result_tuples": outcome.n_result_tuples,
        "overflow_blocks": outcome.overflow_blocks,
        "cache_tuples_peak": outcome.cache_tuples_peak,
        "cache_tuples_spilled": outcome.cache_tuples_spilled,
    }


class TestBitIdenticalToTupleExecution:
    @given(
        relations(SCHEMA_R, "a"),
        relations(SCHEMA_S, "b"),
        st.integers(6, 24),
        st.sampled_from(("backward", "forward")),
    )
    @prop_settings
    def test_results_and_counters_match(self, r, s, memory, direction):
        oracle = partition_join(
            r, s, config("tuple", memory, sweep_direction=direction)
        )
        run = partition_join(
            r,
            s,
            config("batch-parallel-sweep", memory, sweep_direction=direction),
        )
        assert observe(run) == observe(oracle)

    @given(
        relations(SCHEMA_R, "a", min_size=25),
        relations(SCHEMA_S, "b", min_size=25),
        st.integers(6, 8),
    )
    @prop_settings
    def test_overflow_machinery_is_unobservable(self, r, s, memory):
        """Tight memory drives the Section 3.4 overflow path; the pipelined
        sweep must take it at the same blocks with the same counters."""
        oracle = partition_join(r, s, config("tuple", memory))
        run = partition_join(r, s, config("batch-parallel-sweep", memory))
        assert observe(run) == observe(oracle)

    @given(
        relations(SCHEMA_R, "a"),
        relations(SCHEMA_S, "b"),
        st.integers(6, 20),
        st.integers(0, 3),
    )
    @prop_settings
    def test_prefetch_depth_is_unobservable(self, r, s, memory, depth):
        oracle = partition_join(r, s, config("tuple", memory))
        run = partition_join(
            r, s, config("batch-parallel-sweep", memory, prefetch_depth=depth)
        )
        assert observe(run) == observe(oracle)


def run_with_fault(r, s, execution, seed):
    injector = FaultInjector(seed=seed)
    injector.fail_read("r_part0", 0, times=50)
    layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
    run = partition_join(r, s, config(execution, 8), layout=layout)
    return run, layout


class TestDegradationPath:
    @given(
        relations(SCHEMA_R, "a", min_size=20),
        relations(SCHEMA_S, "b", min_size=20),
        st.integers(0, 1_000_000),
    )
    @prop_settings
    def test_permanent_fault_handled_like_tuple_mode(self, r, s, seed):
        """Whether or not the scripted fault fires (degenerate inputs can
        collapse to one partition that never reads ``r_part0``), both modes
        must land in the same place: same tuples, same result count, and
        the same degradation verdict."""
        oracle, oracle_layout = run_with_fault(r, s, "tuple", seed)
        run, layout = run_with_fault(r, s, "batch-parallel-sweep", seed)

        assert sorted(run.result.tuples, key=repr) == sorted(
            oracle.result.tuples, key=repr
        )
        assert run.outcome.n_result_tuples == oracle.outcome.n_result_tuples
        report, oracle_report = layout.resilience_report, oracle_layout.resilience_report
        assert report.degraded == oracle_report.degraded
        assert [e.kind for e in report.degradations] == [
            e.kind for e in oracle_report.degradations
        ]

    def test_fault_actually_fires_on_a_multi_partition_workload(self):
        """Pin one workload where the scripted page failure is guaranteed
        to engage the nested-loop fallback in *both* modes (so the property
        above cannot silently pass on the no-fault branch forever)."""
        import random

        rng = random.Random(11)
        r = ValidTimeRelation(
            SCHEMA_R,
            [
                VTTuple((rng.randrange(6),), (f"a{i}",), Interval(s0, s0 + rng.randrange(40)))
                for i in range(120)
                for s0 in (rng.randrange(400),)
            ],
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [
                VTTuple((rng.randrange(6),), (f"b{i}",), Interval(s0, s0 + rng.randrange(40)))
                for i in range(120)
                for s0 in (rng.randrange(400),)
            ],
        )
        oracle, oracle_layout = run_with_fault(r, s, "tuple", 0)
        run, layout = run_with_fault(r, s, "batch-parallel-sweep", 0)
        for report in (layout.resilience_report, oracle_layout.resilience_report):
            assert report.degraded
            assert [e.kind for e in report.degradations] == ["nested-loop-fallback"]
        assert sorted(run.result.tuples, key=repr) == sorted(
            oracle.result.tuples, key=repr
        )
        assert run.outcome.n_result_tuples == oracle.outcome.n_result_tuples
