"""Property tests for partitioning invariants (Section 3.3)."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.intervals import PartitionMap, choose_intervals
from repro.core.partitioner import do_partitioning
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from repro.time.lifespan import covers_lifespan, lifespan_of

SCHEMA = RelationSchema("r", ("k",), (), tuple_bytes=128)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)

prop_settings = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples():
    return st.builds(
        lambda key, start, duration: VTTuple(
            (key,), (), Interval(start, start + duration)
        ),
        key=st.integers(0, 3),
        start=st.integers(0, 100),
        duration=st.integers(0, 60),
    )


class TestChooseIntervalsProperties:
    @given(st.lists(vt_tuples(), min_size=1, max_size=60), st.integers(1, 10))
    @prop_settings
    def test_tiles_sampled_lifespan(self, samples, n):
        intervals = choose_intervals(samples, n)
        span = lifespan_of(tup.valid for tup in samples)
        assert covers_lifespan(intervals, span)
        assert intervals[0].start == span.start
        assert intervals[-1].end == span.end

    @given(st.lists(vt_tuples(), min_size=1, max_size=60), st.integers(1, 10))
    @prop_settings
    def test_count_bounded_by_request(self, samples, n):
        assert 1 <= len(choose_intervals(samples, n)) <= n

    @given(st.lists(vt_tuples(), min_size=1, max_size=60), st.integers(1, 10))
    @prop_settings
    def test_intervals_form_valid_partition_map(self, samples, n):
        PartitionMap(choose_intervals(samples, n))  # no PlanError


class TestPlacementProperties:
    @given(st.lists(vt_tuples(), min_size=1, max_size=60), st.integers(1, 6))
    @prop_settings
    def test_each_tuple_stored_exactly_once_in_last_overlap(self, tuples, n):
        pmap = PartitionMap(choose_intervals(tuples, n))
        layout = DiskLayout(spec=SPEC)
        relation = ValidTimeRelation(SCHEMA, tuples)
        source = layout.place_relation(relation)
        parts = do_partitioning(source, pmap, layout, "r", memory_pages=8)

        assert sum(part.n_tuples for part in parts) == len(tuples)
        for index, part in enumerate(parts):
            for tup in part.all_tuples():
                assert pmap.last_overlapping(tup.valid) == index

    @given(st.lists(vt_tuples(), min_size=1, max_size=60), st.integers(1, 6))
    @prop_settings
    def test_first_le_last_overlap(self, tuples, n):
        pmap = PartitionMap(choose_intervals(tuples, n))
        for tup in tuples:
            first = pmap.first_overlapping(tup.valid)
            last = pmap.last_overlapping(tup.valid)
            assert 0 <= first <= last < len(pmap)
            # The clamped overlap set is exactly the index range.
            for index in range(len(pmap)):
                assert pmap.overlaps_partition(tup.valid, index) == (
                    first <= index <= last
                )

    @given(st.lists(vt_tuples(), min_size=2, max_size=60))
    @prop_settings
    def test_overlapping_tuples_share_a_partition(self, tuples):
        """The partitioning correctness core: joinable pairs co-reside."""
        pmap = PartitionMap(choose_intervals(tuples, 5))
        for x in tuples:
            for y in tuples:
                if x.valid.overlaps(y.valid):
                    shared = set(
                        range(
                            pmap.first_overlapping(x.valid),
                            pmap.last_overlapping(x.valid) + 1,
                        )
                    ) & set(
                        range(
                            pmap.first_overlapping(y.valid),
                            pmap.last_overlapping(y.valid) + 1,
                        )
                    )
                    assert shared


class TestKolmogorovAccuracy:
    def test_sampled_partitions_respect_error_bound_empirically(self):
        """With the Kolmogorov-sized sample, realized partition sizes stay
        within errorSize of the target with high probability."""
        from repro.sampling.kolmogorov import required_samples

        rng = random.Random(99)
        n_tuples = 4000
        tuples = []
        for _ in range(n_tuples):
            start = rng.randrange(100_000)
            tuples.append(VTTuple((0,), (), Interval(start, start + rng.randrange(100))))
        pages = n_tuples // SPEC.capacity
        part_size = pages // 8
        error_pages = part_size  # generous slack for the bound
        m = required_samples(pages, error_pages)
        samples = rng.sample(tuples, min(m, n_tuples))
        intervals = choose_intervals(samples, 8)
        pmap = PartitionMap(intervals)
        violations = 0
        for index in range(len(pmap)):
            stored = sum(
                1 for t in tuples if pmap.last_overlapping(t.valid) == index
            )
            stored_pages = SPEC.pages_for_tuples(stored)
            if stored_pages > part_size + error_pages:
                violations += 1
        assert violations == 0
