"""Property tests: the forward-scan sweep against the Allen-join oracle.

Three contracts, on arbitrary inputs including skewed-key and long-lived
interval distributions:

* Every registry predicate (the 13 Allen relations plus the
  ``intersects`` and ``covers`` disjunctions) produces exactly the
  brute-force :func:`repro.variants.allen_joins.allen_join` multiset.
* The numpy and pure-Python sweep twins are bit-identical: same tuples in
  the same order, same outcome counters.
* For the natural predicate (``intersects``) the sweep's result multiset
  and cardinality match every partition execution mode, and
  endpoint-sorted inputs never charge a sort phase.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.predicates import NATURAL_PREDICATE, PREDICATES
from repro.core.partition_join import (
    EXECUTION_MODES,
    PartitionJoinConfig,
    partition_join,
)
from repro.exec.backend import HAVE_NUMPY
from repro.exec.forward_sweep import forward_sweep_join
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",), tuple_bytes=128)
SCHEMA_S = RelationSchema("s", ("k",), ("b",), tuple_bytes=128)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)  # 4 tuples/page

BACKENDS = ("numpy", "python") if HAVE_NUMPY else ("python",)

prop_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples(tag, n_keys=4, max_start=60, durations=st.integers(0, 25)):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, n_keys),
        start=st.integers(0, max_start),
        duration=durations,
        payload=st.integers(0, 1000),
    )


def relations(schema, tag, max_size=35, **kwargs):
    return st.lists(vt_tuples(tag, **kwargs), max_size=max_size).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


#: Long-lived tuples (intervals spanning most of the axis) stress the
#: active maps; the key skew (three quarters of tuples on key 0) stresses
#: per-key candidate runs.
def skewed_tuples(tag):
    return st.builds(
        lambda raw_key, start, duration, payload: VTTuple(
            (0 if raw_key < 6 else raw_key,),
            (f"{tag}{payload}",),
            Interval(start, start + duration),
        ),
        raw_key=st.integers(0, 8),
        start=st.integers(0, 40),
        duration=st.one_of(st.integers(0, 3), st.integers(50, 120)),
        payload=st.integers(0, 1000),
    )


def skewed_relations(schema, tag):
    return st.lists(skewed_tuples(tag), max_size=30).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


def oracle(r, s, name):
    from repro.variants.allen_joins import allen_join

    pred = PREDICATES[name]
    return allen_join(r, s, pred.relations, timestamp=pred.timestamp)


def sweep(r, s, name, backend):
    layout = DiskLayout(spec=SPEC, columnar=True)
    r_file = layout.place_relation(r)
    s_file = layout.place_relation(s)
    schema = r.schema.join_result_schema(s.schema)
    outcome = forward_sweep_join(
        r_file, s_file, schema, layout, predicate=name, backend=backend
    )
    return outcome, layout


def multiset(relation):
    counts = {}
    for tup in relation:
        counts[tup] = counts.get(tup, 0) + 1
    return counts


PREDICATE_NAMES = sorted(PREDICATES)


class TestPredicatesMatchOracle:
    @given(
        relations(SCHEMA_R, "a"),
        relations(SCHEMA_S, "b"),
        st.sampled_from(PREDICATE_NAMES),
    )
    @prop_settings
    def test_every_predicate(self, r, s, name):
        expected = multiset(oracle(r, s, name))
        results = {}
        for backend in BACKENDS:
            outcome, _ = sweep(r, s, name, backend)
            assert multiset(outcome.result) == expected, (name, backend)
            assert outcome.n_result_tuples == len(outcome.result.tuples)
            assert outcome.overflow_blocks == 0
            assert outcome.cache_tuples_spilled == 0
            results[backend] = (
                list(outcome.result.tuples),
                outcome.n_result_tuples,
                outcome.cache_tuples_peak,
            )
        # Bit identity across backends: same tuples in the same order,
        # same counters -- not just the same multiset.
        assert len(set(map(repr, results.values()))) == 1

    @given(
        skewed_relations(SCHEMA_R, "a"),
        skewed_relations(SCHEMA_S, "b"),
        st.sampled_from(PREDICATE_NAMES),
    )
    @prop_settings
    def test_skewed_long_lived(self, r, s, name):
        expected = multiset(oracle(r, s, name))
        for backend in BACKENDS:
            outcome, _ = sweep(r, s, name, backend)
            assert multiset(outcome.result) == expected, (name, backend)


class TestNaturalJoinParity:
    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"))
    @prop_settings
    def test_intersects_matches_every_partition_mode(self, r, s):
        sweep_config = PartitionJoinConfig(
            memory_pages=12, page_spec=SPEC, execution="forward-sweep"
        )
        sweep_run = partition_join(r, s, sweep_config)
        sweep_tuples = sorted(sweep_run.result.tuples, key=repr)
        for execution in EXECUTION_MODES:
            config = PartitionJoinConfig(
                memory_pages=12, page_spec=SPEC, execution=execution
            )
            run = partition_join(r, s, config)
            assert sorted(run.result.tuples, key=repr) == sweep_tuples, execution
            assert run.outcome.n_result_tuples == sweep_run.outcome.n_result_tuples

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"))
    @prop_settings
    def test_sorted_inputs_never_charge_a_sort_phase(self, r, s):
        r_sorted = r.sorted_by(lambda tup: (tup.vs, tup.ve, tup.key, tup.payload))
        s_sorted = s.sorted_by(lambda tup: (tup.vs, tup.ve, tup.key, tup.payload))
        for backend in BACKENDS:
            outcome, layout = sweep(r_sorted, s_sorted, NATURAL_PREDICATE, backend)
            assert "sort" not in layout.tracker.phases
            assert multiset(outcome.result) == multiset(
                oracle(r_sorted, s_sorted, NATURAL_PREDICATE)
            )
