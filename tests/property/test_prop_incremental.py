"""Property tests: incremental view maintenance equals recomputation."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.intervals import PartitionMap
from repro.incremental.maintenance import verify_against_recompute
from repro.incremental.view import MaterializedVTJoin
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))

prop_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples(tag):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 3),
        start=st.integers(0, 28),
        duration=st.integers(0, 20),
        payload=st.integers(0, 6),
    )


def partition_maps():
    return st.sampled_from(
        [
            PartitionMap([Interval(0, 48)]),
            PartitionMap([Interval(0, 15), Interval(16, 48)]),
            PartitionMap([Interval(0, 9), Interval(10, 19), Interval(20, 48)]),
            PartitionMap(
                [Interval(0, 4), Interval(5, 11), Interval(12, 30), Interval(31, 48)]
            ),
        ]
    )


class TestMaintenanceEqualsRecompute:
    @given(
        partition_maps(),
        st.lists(vt_tuples("a"), max_size=15),
        st.lists(vt_tuples("b"), max_size=15),
        st.data(),
    )
    @prop_settings
    def test_random_update_sequences(self, pmap, r_pool, s_pool, data):
        view = MaterializedVTJoin(SCHEMA_R, SCHEMA_S, pmap)
        r_rel = ValidTimeRelation(SCHEMA_R)
        s_rel = ValidTimeRelation(SCHEMA_S)
        live_r, live_s = [], []

        n_ops = data.draw(st.integers(0, 25))
        for _ in range(n_ops):
            choices = ["insert_r", "insert_s"]
            if live_r:
                choices.append("delete_r")
            if live_s:
                choices.append("delete_s")
            op = data.draw(st.sampled_from(choices))
            if op == "insert_r" and r_pool:
                tup = r_pool.pop()
                view.insert_r(tup)
                r_rel.add(tup)
                live_r.append(tup)
            elif op == "insert_s" and s_pool:
                tup = s_pool.pop()
                view.insert_s(tup)
                s_rel.add(tup)
                live_s.append(tup)
            elif op == "delete_r" and live_r:
                index = data.draw(st.integers(0, len(live_r) - 1))
                tup = live_r.pop(index)
                view.delete_r(tup)
                r_rel = ValidTimeRelation(SCHEMA_R, live_r)
            elif op == "delete_s" and live_s:
                index = data.draw(st.integers(0, len(live_s) - 1))
                tup = live_s.pop(index)
                view.delete_s(tup)
                s_rel = ValidTimeRelation(SCHEMA_S, live_s)

        assert verify_against_recompute(view, r_rel, s_rel)

    @given(partition_maps(), st.lists(vt_tuples("a"), max_size=12),
           st.lists(vt_tuples("b"), max_size=12))
    @prop_settings
    def test_insert_all_then_delete_all(self, pmap, r_tuples, s_tuples):
        view = MaterializedVTJoin(SCHEMA_R, SCHEMA_S, pmap, r_tuples, s_tuples)
        for tup in r_tuples:
            view.delete_r(tup)
        for tup in s_tuples:
            view.delete_s(tup)
        assert len(view) == 0
