"""Property tests: streamed TE-outerjoin equals the in-memory definition."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.interval import Interval
from repro.variants.event_join import te_outerjoin
from repro.variants.streamed_outerjoin import streamed_te_outerjoin

SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)

prop_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples(tag):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 4),
        start=st.integers(0, 60),
        duration=st.integers(0, 30),
        payload=st.integers(0, 500),
    )


def relations(schema, tag):
    return st.lists(vt_tuples(tag), max_size=30).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


class TestStreamedOuterjoinProperties:
    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(4, 24))
    @prop_settings
    def test_equals_in_memory_definition(self, r, s, memory):
        run = streamed_te_outerjoin(r, s, memory, page_spec=SPEC)
        assert run.result.multiset_equal(te_outerjoin(r, s))

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"))
    @prop_settings
    def test_left_validity_fully_covered(self, r, s):
        """Every chronon of every left tuple appears in exactly the rows the
        snapshot semantics dictates (matched and padded pieces partition it)."""
        run = streamed_te_outerjoin(r, s, 8, page_spec=SPEC)
        for chronon in range(0, 95, 7):
            left_rows = r.timeslice(chronon)
            out_rows = run.result.timeslice(chronon)
            s_rows = s.timeslice(chronon)
            expected = 0
            for row in left_rows:
                matches = sum(1 for s_row in s_rows if s_row[0] == row[0])
                expected += matches if matches else 1  # padded row otherwise
            assert len(out_rows) == expected
