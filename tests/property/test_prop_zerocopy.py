"""Property tests: the five execution modes are one algorithm, bit for bit.

The zero-copy columnar path (packed pages, shared-memory fan-out,
multibuffer-planned auxiliary buffers) is pure mechanism: on arbitrary
inputs -- including cache-overflow workloads, crash/resume runs, and
concurrent service executions -- every execution mode must emit exactly
the same result tuples in the same order and land on exactly the same
:class:`JoinOutcome` counters as the PR-1 tuple-at-a-time evaluator.
"""

from __future__ import annotations

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.partition_join import (
    EXECUTION_MODES,
    PartitionJoinConfig,
    partition_join,
    resume_join,
)
from repro.model.errors import SimulatedCrashError
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.resilience import FaultInjector, RecoveryLog
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",), tuple_bytes=128)
SCHEMA_S = RelationSchema("s", ("k",), ("b",), tuple_bytes=128)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)  # 4 tuples/page: many pages

prop_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples(tag, n_keys=5):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, n_keys),
        start=st.integers(0, 80),
        duration=st.integers(0, 40),
        payload=st.integers(0, 1000),
    )


def relations(schema, tag, **kwargs):
    return st.lists(vt_tuples(tag, **kwargs), max_size=40).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


def fingerprint(run):
    """Everything the bit-identity contract covers."""
    return (
        list(run.result.tuples),
        run.outcome.n_result_tuples,
        run.outcome.overflow_blocks,
        run.outcome.cache_tuples_peak,
        run.outcome.cache_tuples_spilled,
    )


def run_mode(r, s, execution, memory=12, **config_overrides):
    config = PartitionJoinConfig(
        memory_pages=memory, page_spec=SPEC, execution=execution, **config_overrides
    )
    return partition_join(r, s, config)


class TestAllModesBitIdentical:
    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"), st.integers(6, 24))
    @prop_settings
    def test_arbitrary_inputs(self, r, s, memory):
        baseline = fingerprint(run_mode(r, s, "tuple", memory))
        for execution in EXECUTION_MODES[1:]:
            assert fingerprint(run_mode(r, s, execution, memory)) == baseline, execution

    @given(
        relations(SCHEMA_R, "a", n_keys=0),
        relations(SCHEMA_S, "b", n_keys=0),
    )
    @prop_settings
    def test_single_key_skew(self, r, s):
        """One join key: the tuple cache saturates and overflow blocks
        appear at the smallest legal budget; the counters must agree."""
        baseline = fingerprint(run_mode(r, s, "tuple", memory=6))
        for execution in EXECUTION_MODES[1:]:
            assert fingerprint(run_mode(r, s, execution, memory=6)) == baseline


class TestOverflowPath:
    def test_overflow_actually_exercised_and_identical(self):
        """A deterministic workload known to overflow: 240 tuples of one
        key against 180 of the same key under a 6-page budget."""
        r = ValidTimeRelation(
            SCHEMA_R,
            [
                VTTuple(("hot",), (f"a{i}",), Interval(i % 50, i % 50 + 8))
                for i in range(240)
            ],
        )
        s = ValidTimeRelation(
            SCHEMA_S,
            [
                VTTuple(("hot",), (f"b{i}",), Interval(i % 50, i % 50 + 5))
                for i in range(180)
            ],
        )
        baseline_run = run_mode(r, s, "tuple", memory=6)
        assert baseline_run.outcome.overflow_blocks > 0, "workload must overflow"
        baseline = fingerprint(baseline_run)
        for execution in EXECUTION_MODES[1:]:
            assert fingerprint(run_mode(r, s, execution, memory=6)) == baseline


class TestResumeAfterCrash:
    @given(
        relations(SCHEMA_R, "a").filter(lambda rel: len(rel) >= 8),
        relations(SCHEMA_S, "b").filter(lambda rel: len(rel) >= 8),
        st.integers(0, 9),
    )
    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_zero_copy_resume_matches_tuple_mode(self, r, s, crash_slot):
        """Crash the zero-copy run at a hypothesis-chosen charged op; the
        resumed run must equal the tuple-mode evaluation exactly."""
        baseline = fingerprint(run_mode(r, s, "tuple", checkpoint_interval=2))

        probe_injector = FaultInjector(seed=0)
        probe_layout = DiskLayout(spec=SPEC, fault_injector=probe_injector)
        config = PartitionJoinConfig(
            memory_pages=12,
            page_spec=SPEC,
            execution="zero-copy-sweep",
            checkpoint_interval=2,
        )
        probe = partition_join(r, s, config, layout=probe_layout, recovery=RecoveryLog())
        assert fingerprint(probe) == baseline
        total_ops = probe_injector.ops_seen

        at_op = 1 + (crash_slot * max(1, total_ops - 1)) // 10
        injector = FaultInjector(seed=0)
        injector.schedule_crash(at_op=at_op)
        layout = DiskLayout(spec=SPEC, fault_injector=injector)
        recovery = RecoveryLog()
        try:
            run = partition_join(r, s, config, layout=layout, recovery=recovery)
        except SimulatedCrashError:
            run = resume_join(r, s, config, layout=layout, recovery=recovery)
        assert fingerprint(run) == baseline


class TestConcurrentService:
    @given(st.integers(0, 3))
    @settings(
        max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_concurrent_zero_copy_equals_batch(self, seed):
        """Concurrent sessions under admission control: the zero-copy
        service must produce the same relation and counters as a batch
        service on the same catalog -- including interner-cache reuse
        across the repeated queries.

        The memory ask (6 pages) sits below every mode's useful budget, so
        admission grants exactly the request in both services: equal grants
        mean equal ``buffSize``, which the bit-identity contract requires
        (zero-copy's grant estimate covers extra auxiliary pages, so an
        *uncapped* ask would legitimately partition differently)."""
        from repro.engine.catalog import VersionedCatalog
        from repro.service import QueryService

        from tests.service.conftest import make_tuples

        def build_catalog():
            catalog = VersionedCatalog()
            catalog.register(
                RelationSchema("r", join_attributes=("k",), payload_attributes=("pr",)),
                make_tuples(60, seed=seed, n_keys=5, lifespan=50),
            )
            catalog.register(
                RelationSchema("s", join_attributes=("k",), payload_attributes=("ps",)),
                make_tuples(45, seed=seed + 10, n_keys=5, lifespan=50),
            )
            return catalog

        outcomes = {}
        for execution in ("batch", "zero-copy-sweep"):
            results = []
            errors = []
            lock = threading.Lock()
            with QueryService(
                build_catalog(),
                pool_pages=24,
                memory_pages=6,
                workers=3,
                execution=execution,
                page_spec=PageSpec(page_bytes=256, tuple_bytes=32),
                result_cache_entries=0,
                admission_timeout=60.0,
            ) as service:

                def run_one():
                    try:
                        with service.open_session() as session:
                            result = session.join("r", "s", result_timeout=120.0)
                            with lock:
                                results.append(result)
                    except Exception as error:  # pragma: no cover
                        with lock:
                            errors.append(error)

                threads = [threading.Thread(target=run_one) for _ in range(3)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert not errors
            assert len(results) == 3
            fingerprints = {
                (
                    tuple(result.relation.tuples),
                    result.outcome.n_result_tuples,
                    result.outcome.overflow_blocks,
                    result.outcome.cache_tuples_peak,
                    result.outcome.cache_tuples_spilled,
                )
                for result in results
            }
            assert len(fingerprints) == 1, f"{execution} sessions disagree"
            outcomes[execution] = fingerprints.pop()
        assert outcomes["zero-copy-sweep"] == outcomes["batch"]
