"""Property tests: observability is *observation only*.

The whole contract of ``src/repro/obs``: switching tracing + metrics on
changes nothing the simulation can see.  On arbitrary inputs -- including
the overflow machinery under tight memory and the permanent-fault
degradation ladder -- the result tuples (payloads **and** overlap
intervals, in emission order), the :class:`JoinOutcome` counters, the full
charged-I/O ledger (tag fields included), the per-phase breakdown, and the
chosen plan are bit-identical with observability on or off, in every
execution mode.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.partition_join import (
    EXECUTION_MODES,
    PartitionJoinConfig,
    partition_join,
)
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.obs import ObservabilityConfig
from repro.resilience import FaultInjector
from repro.storage.layout import DiskLayout
from repro.storage.page import PageSpec
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",), tuple_bytes=128)
SCHEMA_S = RelationSchema("s", ("k",), ("b",), tuple_bytes=128)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)  # 4 tuples/page: many pages

prop_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def vt_tuples(tag):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 5),
        start=st.integers(0, 80),
        duration=st.integers(0, 40),
        payload=st.integers(0, 1000),
    )


def relations(schema, tag, min_size=0):
    return st.lists(vt_tuples(tag), min_size=min_size, max_size=40).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


def config(execution, memory, **overrides):
    settings_ = dict(memory_pages=memory, page_spec=SPEC, execution=execution)
    settings_.update(overrides)
    return PartitionJoinConfig(**settings_)


def observed(config):
    """*config* with the full observability stack switched on."""
    return dataclasses.replace(
        config, observability=ObservabilityConfig(io_events=True)
    )


def fingerprint(run):
    """Everything the simulation can see -- what obs must never change."""
    outcome = run.outcome
    return {
        "tuples": list(run.result.tuples),
        "n_result_tuples": outcome.n_result_tuples,
        "overflow_blocks": outcome.overflow_blocks,
        "cache_tuples_peak": outcome.cache_tuples_peak,
        "cache_tuples_spilled": outcome.cache_tuples_spilled,
        "stats": run.layout.tracker.stats.as_dict(),
        "phases": {
            name: stats.as_dict()
            for name, stats in run.layout.tracker.phases.items()
        },
        "plan_intervals": list(run.plan.intervals),
    }


class TestBitIdenticalWithObservabilityOn:
    @given(
        relations(SCHEMA_R, "a"),
        relations(SCHEMA_S, "b"),
        st.integers(6, 24),
        st.sampled_from(EXECUTION_MODES),
    )
    @prop_settings
    def test_every_mode_is_unchanged(self, r, s, memory, execution):
        plain = partition_join(r, s, config(execution, memory))
        traced = partition_join(r, s, observed(config(execution, memory)))
        assert fingerprint(traced) == fingerprint(plain)
        obs = traced.observability
        assert obs is not None
        assert obs.tracer is None or obs.tracer.open_spans == 0

    @given(
        relations(SCHEMA_R, "a", min_size=25),
        relations(SCHEMA_S, "b", min_size=25),
        st.integers(6, 8),
        st.sampled_from(EXECUTION_MODES),
    )
    @prop_settings
    def test_overflow_and_buffer_reduction_unchanged(self, r, s, memory, execution):
        """Tight memory drives overflow blocks and buffer-reduction
        degradations; instrumenting them must not move a single counter."""
        plain = partition_join(r, s, config(execution, memory))
        traced = partition_join(r, s, observed(config(execution, memory)))
        assert fingerprint(traced) == fingerprint(plain)


def run_with_fault(r, s, execution, *, observe):
    injector = FaultInjector(seed=0)
    injector.fail_read("r_part0", 0, times=50)
    layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
    cfg = config(execution, 8)
    if observe:
        cfg = observed(cfg)
    run = partition_join(r, s, cfg, layout=layout)
    return run, layout


def pinned_relations():
    """A workload whose scripted page fault reliably forces degradation."""
    import random

    rng = random.Random(11)

    def build(schema, tag):
        return ValidTimeRelation(
            schema,
            [
                VTTuple(
                    (rng.randrange(6),),
                    (f"{tag}{i}",),
                    Interval(s0, s0 + rng.randrange(40)),
                )
                for i in range(120)
                for s0 in (rng.randrange(400),)
            ],
        )

    return build(SCHEMA_R, "a"), build(SCHEMA_S, "b")


class TestDegradationPathUnchanged:
    def test_nested_loop_fallback_is_bit_identical(self):
        """The deepest rung of the degradation ladder, instrumented vs not:
        same verdict, same tuples, same ledger."""
        r, s = pinned_relations()
        plain, plain_layout = run_with_fault(r, s, "batch", observe=False)
        traced, traced_layout = run_with_fault(r, s, "batch", observe=True)
        for layout in (plain_layout, traced_layout):
            assert layout.resilience_report.degraded
            assert [e.kind for e in layout.resilience_report.degradations] == [
                "nested-loop-fallback"
            ]
        assert fingerprint(traced) == fingerprint(plain)
        # The degradation surfaced in the metrics without touching the run.
        snapshot = traced.observability.metrics_snapshot()
        series = snapshot["repro_degradations_total"]["series"]
        assert series.get("kind=nested-loop-fallback", 0) >= 1

    def test_metrics_reconcile_with_charged_ledger(self):
        """Every charged op lands in ``repro_io_ops_total`` exactly once."""
        r, s = pinned_relations()
        traced, _ = run_with_fault(r, s, "tuple", observe=True)
        snapshot = traced.observability.metrics_snapshot()
        metric_ops = sum(
            snapshot["repro_io_ops_total"]["series"].values()
        )
        assert metric_ops == traced.layout.tracker.stats.total_ops
