"""Property tests: the AP-tree agrees with a linear scan on any query."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.index.ap_tree import build_ap_tree
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

prop_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def append_only_sequences():
    """(gaps, durations) pairs encode a valid append-only insertion order."""
    return st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 30)), max_size=80
    )


def materialize(pairs):
    tuples = []
    vs = 0
    for number, (gap, duration) in enumerate(pairs):
        vs += gap
        tuples.append(VTTuple(("k",), (number,), Interval(vs, vs + duration)))
    return tuples


class TestAPTreeProperties:
    @given(append_only_sequences(), st.integers(2, 9),
           st.integers(0, 500), st.integers(0, 60))
    @prop_settings
    def test_overlapping_matches_scan(self, pairs, fanout, lo, width):
        tuples = materialize(pairs)
        tree = build_ap_tree(tuples, fanout)
        query = Interval(lo, lo + width)
        expected = [tup for tup in tuples if tup.valid.overlaps(query)]
        assert tree.overlapping(query) == expected

    @given(append_only_sequences(), st.integers(2, 9))
    @prop_settings
    def test_full_range_returns_everything(self, pairs, fanout):
        tuples = materialize(pairs)
        tree = build_ap_tree(tuples, fanout)
        assert len(tree) == len(tuples)
        assert tree.overlapping(Interval(0, 10_000)) == tuples

    @given(append_only_sequences(), st.integers(2, 9), st.integers(0, 500))
    @prop_settings
    def test_stab_matches_timeslice(self, pairs, fanout, chronon):
        tuples = materialize(pairs)
        tree = build_ap_tree(tuples, fanout)
        expected = [t for t in tuples if t.valid.contains_chronon(chronon)]
        assert tree.stab(chronon) == expected

    @given(append_only_sequences(), st.integers(2, 9))
    @prop_settings
    def test_visited_pages_are_valid_and_unique(self, pairs, fanout):
        tuples = materialize(pairs)
        tree = build_ap_tree(tuples, fanout)
        _, visited = tree.probe(Interval(0, 10_000))
        assert len(set(visited)) == len(visited)
        assert all(0 <= page < tree.n_nodes for page in visited)
