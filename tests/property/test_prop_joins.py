"""Property tests: every join implementation agrees with the specification.

The central correctness claim of the reproduction: partition join (migrating
and replicating), sort-merge with backing-up, and block nested loops all
compute exactly the Section 2 valid-time natural join, on arbitrary inputs
including pathological ones hypothesis likes to find (empty relations,
all-identical timestamps, single giant tuples, duplicate tuples).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.reference import reference_join
from repro.baselines.sort_merge import sort_merge_join
from repro.core.partition_join import PartitionJoinConfig, partition_join
from repro.core.replicating import replicating_partition_join
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.storage.page import PageSpec
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",), tuple_bytes=128)
SCHEMA_S = RelationSchema("s", ("k",), ("b",), tuple_bytes=128)
SPEC = PageSpec(page_bytes=512, tuple_bytes=128)  # 4 tuples/page: many pages


def vt_tuples(tag):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 5),
        start=st.integers(0, 80),
        duration=st.integers(0, 40),
        payload=st.integers(0, 1000),
    )


def relations(schema, tag):
    return st.lists(vt_tuples(tag), max_size=40).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


join_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAlgorithmEquivalence:
    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(6, 30))
    @join_settings
    def test_partition_join(self, r, s, memory):
        expected = reference_join(r, s)
        config = PartitionJoinConfig(memory_pages=memory, page_spec=SPEC)
        if len(r) == 0:
            # Planner needs a non-empty outer; the driver shortcuts instead.
            run = partition_join(r, s, config)
            assert len(run.result) == 0
            return
        run = partition_join(r, s, config)
        assert run.result.multiset_equal(expected)

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(6, 30))
    @join_settings
    def test_partition_join_forward_sweep(self, r, s, memory):
        expected = reference_join(r, s)
        config = PartitionJoinConfig(
            memory_pages=memory, page_spec=SPEC, sweep_direction="forward"
        )
        run = partition_join(r, s, config)
        assert run.result.multiset_equal(expected)

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(6, 30))
    @join_settings
    def test_replicating_join(self, r, s, memory):
        expected = reference_join(r, s)
        config = PartitionJoinConfig(memory_pages=memory, page_spec=SPEC)
        run = replicating_partition_join(r, s, config)
        assert run.outcome.result.multiset_equal(expected)

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(4, 30))
    @join_settings
    def test_sort_merge(self, r, s, memory):
        expected = reference_join(r, s)
        run = sort_merge_join(r, s, memory, page_spec=SPEC)
        assert run.result.multiset_equal(expected)

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(3, 30))
    @join_settings
    def test_nested_loop(self, r, s, memory):
        expected = reference_join(r, s)
        run = nested_loop_join(r, s, memory, page_spec=SPEC)
        assert run.result.multiset_equal(expected)


class TestJoinAlgebra:
    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"))
    @join_settings
    def test_commutative_up_to_payload_order(self, r, s):
        forward = reference_join(r, s)
        backward = reference_join(s, r)
        assert len(forward) == len(backward)
        forward_stamps = sorted((t.key, t.valid.start, t.valid.end) for t in forward)
        backward_stamps = sorted((t.key, t.valid.start, t.valid.end) for t in backward)
        assert forward_stamps == backward_stamps

    @given(relations(SCHEMA_R, "a"))
    @join_settings
    def test_self_join_contains_diagonal(self, r):
        other = ValidTimeRelation(
            SCHEMA_S, [VTTuple(t.key, (f"b{i}",), t.valid) for i, t in enumerate(r)]
        )
        result = reference_join(r, other)
        assert len(result) >= len(r)
