"""Property tests for the storage substrate's accounting invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.disk import SimulatedDisk
from repro.storage.iostats import CostModel, IOStatistics

prop_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def operation_sequences():
    """Random interleavings of appends and reads across two extents/devices."""
    return st.lists(
        st.tuples(
            st.integers(0, 1),  # which extent
            st.sampled_from(["append", "read"]),
            st.integers(0, 30),  # read position hint
        ),
        max_size=60,
    )


class TestAccountingInvariants:
    @given(operation_sequences(), st.booleans())
    @prop_settings
    def test_every_operation_counted_exactly_once(self, operations, same_device):
        stats = IOStatistics()
        disk = SimulatedDisk(stats)
        extents = [
            disk.allocate("a", device=0, capacity=64),
            disk.allocate("b", device=0 if same_device else 1, capacity=64),
        ]
        performed = 0
        for which, op, hint in operations:
            extent = extents[which]
            if op == "append":
                disk.append(extent, f"p{performed}")
                performed += 1
            elif extent.n_pages > 0:
                disk.read(extent, hint % extent.n_pages)
                performed += 1
        assert stats.total_ops == performed
        per_device = sum(s.total_ops for s in disk.device_stats.values())
        assert per_device == performed

    @given(operation_sequences())
    @prop_settings
    def test_cost_bounds(self, operations):
        """Weighted cost is bounded by all-random above, all-sequential below."""
        stats = IOStatistics()
        disk = SimulatedDisk(stats)
        extent = disk.allocate("a", device=0, capacity=64)
        for _, op, hint in operations:
            if op == "append":
                disk.append(extent, "x")
            elif extent.n_pages > 0:
                disk.read(extent, hint % extent.n_pages)
        model = CostModel.with_ratio(5)
        total = stats.total_ops
        assert total * model.io_seq <= stats.cost(model) <= total * model.io_ran

    @given(st.integers(1, 50), st.integers(2, 10))
    @prop_settings
    def test_separate_scans_each_cost_one_seek(self, pages, n_scans):
        stats = IOStatistics()
        disk = SimulatedDisk(stats)
        extent = disk.allocate("a", capacity=pages)
        disk.load(extent, list(range(pages)))
        for _ in range(n_scans):
            disk.park_heads()
            for index in range(pages):
                disk.read(extent, index)
        assert stats.random_reads == n_scans
        assert stats.sequential_reads == n_scans * (pages - 1)
