"""Property tests: snapshot reducibility of the valid-time natural join.

For every chronon t:  timeslice(r JOIN_V s, t) == timeslice(r, t) JOIN timeslice(s, t).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.timeslice import snapshot_join, timeslice
from repro.baselines.reference import reference_join
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

SCHEMA_R = RelationSchema("r", ("k",), ("a",))
SCHEMA_S = RelationSchema("s", ("k",), ("b",))

prop_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples(tag):
    return st.builds(
        lambda key, start, duration, payload: VTTuple(
            (key,), (f"{tag}{payload}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 3),
        start=st.integers(0, 30),
        duration=st.integers(0, 15),
        payload=st.integers(0, 20),
    )


def relations(schema, tag):
    return st.lists(vt_tuples(tag), max_size=15).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


class TestSnapshotReducibility:
    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"),
           st.integers(-2, 50))
    @prop_settings
    def test_timeslice_commutes_with_join(self, r, s, chronon):
        joined = reference_join(r, s)
        left = sorted(map(repr, timeslice(joined, chronon)))
        right = sorted(
            map(
                repr,
                snapshot_join(
                    timeslice(r, chronon), timeslice(s, chronon), SCHEMA_R, SCHEMA_S
                ),
            )
        )
        assert left == right

    @given(relations(SCHEMA_R, "a"), relations(SCHEMA_S, "b"))
    @prop_settings
    def test_result_timestamps_within_both_inputs(self, r, s):
        joined = reference_join(r, s)
        for z in joined:
            supported_r = any(
                x.key == z.key and x.valid.contains(z.valid) for x in r
            )
            supported_s = any(
                y.key == z.key and y.valid.contains(z.valid) for y in s
            )
            assert supported_r and supported_s
