"""Property tests: aggregation tree == sweep == naive per-chronon truth."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.aggregate.sweep import sweep_aggregate
from repro.aggregate.tree import AggregationTree
from repro.time.interval import Interval

prop_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

DOMAIN = Interval(0, 80)


def weighted_intervals():
    return st.lists(
        st.builds(
            lambda start, duration, weight: (
                Interval(start, min(DOMAIN.end, start + duration)),
                float(weight),
            ),
            start=st.integers(0, 80),
            duration=st.integers(0, 40),
            weight=st.integers(1, 9),
        ),
        max_size=25,
    )


def naive_sum(weighted, chronon):
    return sum(
        value for interval, value in weighted if interval.contains_chronon(chronon)
    )


class TestTreeAgainstTruth:
    @given(weighted_intervals())
    @prop_settings
    def test_value_at_every_chronon(self, weighted):
        tree = AggregationTree(DOMAIN)
        for interval, value in weighted:
            tree.insert(interval, value)
        for chronon in range(DOMAIN.start, DOMAIN.end + 1):
            assert tree.value_at(chronon) == naive_sum(weighted, chronon)

    @given(weighted_intervals())
    @prop_settings
    def test_segments_partition_nonzero_support(self, weighted):
        tree = AggregationTree(DOMAIN)
        for interval, value in weighted:
            tree.insert(interval, value)
        segments = tree.segments()
        # Segments are ordered, disjoint, and value-maximal.
        for (a, va), (b, vb) in zip(segments, segments[1:]):
            assert a.end < b.start
            if a.end + 1 == b.start:
                assert va != vb
        covered = set()
        for interval, value in segments:
            assert value != 0.0
            covered.update(interval.chronons())
        expected = {
            chronon
            for chronon in range(DOMAIN.start, DOMAIN.end + 1)
            if naive_sum(weighted, chronon) != 0.0
        }
        assert covered == expected

    @given(weighted_intervals())
    @prop_settings
    def test_tree_equals_sweep(self, weighted):
        tree = AggregationTree(DOMAIN)
        for interval, value in weighted:
            tree.insert(interval, value)
        assert tree.segments() == sweep_aggregate(weighted, "sum")


class TestSweepAgainstTruth:
    @given(weighted_intervals(), st.sampled_from(["count", "sum", "min", "max", "avg"]))
    @prop_settings
    def test_segment_values_match_naive(self, weighted, op):
        segments = sweep_aggregate(weighted, op)
        for segment, value in segments:
            for chronon in segment.chronons():
                active = [
                    v for interval, v in weighted if interval.contains_chronon(chronon)
                ]
                assert active, "segment emitted with no active tuples"
                if op == "count":
                    expected = float(len(active))
                elif op == "sum":
                    expected = sum(active)
                elif op == "avg":
                    expected = sum(active) / len(active)
                elif op == "min":
                    expected = min(active)
                else:
                    expected = max(active)
                assert abs(value - expected) < 1e-9
