"""Property tests for coalescing, set operations, and normalization."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.coalesce import coalesce, is_coalesced
from repro.algebra.normalize import decompose, reconstruct
from repro.algebra.setops import (
    temporal_difference,
    temporal_intersection,
    temporal_union,
)
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval

SCHEMA = RelationSchema("r", ("k",), ("a",))
SCHEMA_B = RelationSchema("s", ("k",), ("a",))
WIDE = RelationSchema("w", ("k",), ("a", "b"))

prop_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def vt_tuples(values=3):
    return st.builds(
        lambda key, value, start, duration: VTTuple(
            (key,), (f"v{value}",), Interval(start, start + duration)
        ),
        key=st.integers(0, 2),
        value=st.integers(0, values - 1),
        start=st.integers(0, 30),
        duration=st.integers(0, 12),
    )


def relations(schema=SCHEMA):
    return st.lists(vt_tuples(), max_size=15).map(
        lambda tuples: ValidTimeRelation(schema, tuples)
    )


def snapshots_equal(a, b, lo=-1, hi=50):
    return all(
        set(map(tuple, a.timeslice(t))) == set(map(tuple, b.timeslice(t)))
        for t in range(lo, hi)
    )


class TestCoalesceProperties:
    @given(relations())
    @prop_settings
    def test_output_is_coalesced(self, relation):
        assert is_coalesced(coalesce(relation))

    @given(relations())
    @prop_settings
    def test_snapshot_equivalent(self, relation):
        assert snapshots_equal(relation, coalesce(relation))

    @given(relations())
    @prop_settings
    def test_idempotent(self, relation):
        once = coalesce(relation)
        assert coalesce(once).multiset_equal(once)


class TestSetOpProperties:
    @given(relations(), relations(SCHEMA_B))
    @prop_settings
    def test_union_snapshot(self, r, s):
        union = temporal_union(r, s)
        for t in range(-1, 50):
            assert set(map(tuple, union.timeslice(t))) == set(
                map(tuple, r.timeslice(t))
            ) | set(map(tuple, s.timeslice(t)))

    @given(relations(), relations(SCHEMA_B))
    @prop_settings
    def test_difference_snapshot(self, r, s):
        diff = temporal_difference(r, s)
        for t in range(-1, 50):
            assert set(map(tuple, diff.timeslice(t))) == set(
                map(tuple, r.timeslice(t))
            ) - set(map(tuple, s.timeslice(t)))

    @given(relations(), relations(SCHEMA_B))
    @prop_settings
    def test_intersection_is_difference_of_difference(self, r, s):
        via_diff = temporal_difference(r, temporal_difference(r, s))
        direct = temporal_intersection(r, s)
        assert snapshots_equal(coalesce(via_diff), coalesce(direct))

    @given(relations())
    @prop_settings
    def test_union_idempotent_on_self(self, r):
        self_union = temporal_union(
            r, ValidTimeRelation(SCHEMA_B, list(r.tuples))
        )
        assert snapshots_equal(self_union, r)


class TestNormalizationRoundTrip:
    @given(
        st.lists(
            st.builds(
                lambda key, a, b, start, duration: VTTuple(
                    (key,), (f"a{a}", f"b{b}"), Interval(start, start + duration)
                ),
                key=st.integers(0, 2),
                a=st.integers(0, 2),
                b=st.integers(0, 2),
                start=st.integers(0, 25),
                duration=st.integers(0, 10),
            ),
            max_size=10,
        )
    )
    @prop_settings
    def test_decompose_reconstruct_snapshots(self, tuples):
        """For snapshot-FD-respecting inputs, the round trip preserves every
        snapshot.  Inputs where a key maps to several payloads at one chronon
        are filtered to keep the decomposition lossless."""
        relation = ValidTimeRelation(WIDE)
        occupied = {}
        for tup in tuples:
            conflict = False
            for chronon in tup.valid.chronons():
                existing = occupied.get((tup.key, chronon))
                if existing is not None and existing != tup.payload:
                    conflict = True
                    break
            if conflict:
                continue
            for chronon in tup.valid.chronons():
                occupied[(tup.key, chronon)] = tup.payload
            relation.add(tup)

        fragments = decompose(relation, [("a",), ("b",)])
        rebuilt = reconstruct(fragments)
        assert snapshots_equal(rebuilt, relation)
