"""Property tests: intervals, overlap, and Allen's relations."""

from hypothesis import given, strategies as st

from repro.time.allen import AllenRelation, relate
from repro.time.interval import Interval, overlap


def intervals(max_chronon=200):
    return st.tuples(
        st.integers(0, max_chronon), st.integers(0, max_chronon)
    ).map(lambda pair: Interval(min(pair), max(pair)))


class TestOverlapAlgebra:
    @given(intervals(), intervals())
    def test_commutative(self, u, v):
        assert overlap(u, v) == overlap(v, u)

    @given(intervals())
    def test_idempotent(self, u):
        assert overlap(u, u) == u

    @given(intervals(), intervals())
    def test_bottom_iff_disjoint(self, u, v):
        common = overlap(u, v)
        assert (common is None) == (u.end < v.start or v.end < u.start)

    @given(intervals(), intervals())
    def test_result_contained_in_both(self, u, v):
        common = overlap(u, v)
        if common is not None:
            assert u.contains(common)
            assert v.contains(common)

    @given(intervals(max_chronon=40), intervals(max_chronon=40))
    def test_matches_chronon_set_specification(self, u, v):
        """The paper's procedural definition, executed literally."""
        common_chronons = set(u.chronons()) & set(v.chronons())
        expected = (
            Interval(min(common_chronons), max(common_chronons))
            if common_chronons
            else None
        )
        assert overlap(u, v) == expected

    @given(intervals(), intervals(), intervals())
    def test_associative(self, u, v, w):
        left = overlap(overlap(u, v), w)
        right = overlap(u, overlap(v, w))
        assert left == right

    @given(intervals(), intervals())
    def test_maximality(self, u, v):
        """No strictly larger interval fits in both (maximal overlap)."""
        common = overlap(u, v)
        if common is None:
            return
        if common.start > 0:
            grown = Interval(common.start - 1, common.end)
            assert not (u.contains(grown) and v.contains(grown))
        grown = Interval(common.start, common.end + 1)
        assert not (u.contains(grown) and v.contains(grown))


class TestAllenProperties:
    @given(intervals(max_chronon=60), intervals(max_chronon=60))
    def test_exactly_one_relation(self, u, v):
        relation = relate(u, v)
        assert isinstance(relation, AllenRelation)

    @given(intervals(max_chronon=60), intervals(max_chronon=60))
    def test_inverse_symmetry(self, u, v):
        assert relate(u, v).inverse is relate(v, u)

    @given(intervals(max_chronon=60), intervals(max_chronon=60))
    def test_intersects_consistent_with_overlap(self, u, v):
        assert relate(u, v).intersects == (overlap(u, v) is not None)

    @given(intervals(max_chronon=60))
    def test_self_relation_is_equal(self, u):
        assert relate(u, u) is AllenRelation.EQUAL
