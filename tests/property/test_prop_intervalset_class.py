"""Property tests: IntervalSet algebra against chronon-set semantics."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.time.interval import Interval
from repro.time.intervalset_class import IntervalSet

prop_settings = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def interval_sets(max_chronon=40):
    return st.lists(
        st.tuples(st.integers(0, max_chronon), st.integers(0, 15)).map(
            lambda pair: Interval(pair[0], pair[0] + pair[1])
        ),
        max_size=6,
    ).map(IntervalSet)


def chronons(interval_set):
    covered = set()
    for interval in interval_set:
        covered.update(interval.chronons())
    return covered


class TestSetSemantics:
    @given(interval_sets(), interval_sets())
    @prop_settings
    def test_union(self, a, b):
        assert chronons(a | b) == chronons(a) | chronons(b)

    @given(interval_sets(), interval_sets())
    @prop_settings
    def test_difference(self, a, b):
        assert chronons(a - b) == chronons(a) - chronons(b)

    @given(interval_sets(), interval_sets())
    @prop_settings
    def test_intersection(self, a, b):
        assert chronons(a & b) == chronons(a) & chronons(b)

    @given(interval_sets(), interval_sets())
    @prop_settings
    def test_symmetric_difference(self, a, b):
        assert chronons(a ^ b) == chronons(a) ^ chronons(b)

    @given(interval_sets(), interval_sets())
    @prop_settings
    def test_equality_is_extensional(self, a, b):
        assert (a == b) == (chronons(a) == chronons(b))

    @given(interval_sets())
    @prop_settings
    def test_duration_counts_chronons(self, a):
        assert a.duration == len(chronons(a))

    @given(interval_sets(), st.integers(0, 60))
    @prop_settings
    def test_membership(self, a, chronon):
        assert (chronon in a) == (chronon in chronons(a))

    @given(interval_sets())
    @prop_settings
    def test_complement_is_involution(self, a):
        bounds = Interval(0, 60)
        clipped = a & IntervalSet([bounds])
        assert clipped.complement_within(bounds).complement_within(bounds) == clipped
