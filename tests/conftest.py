"""Shared fixtures and relation builders for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.time.interval import Interval


@pytest.fixture(autouse=True)
def _no_leaked_spans():
    """Fail any test that leaves a tracer span open at teardown.

    An instrumentation site that opens a span without closing it (a missing
    ``with``, an early return around ``_end``) would otherwise only show up
    as a silently truncated trace.
    """
    from repro.obs.trace import open_span_leaks

    yield
    leaks = open_span_leaks()
    assert not leaks, (
        "tracer span(s) left open after test: "
        + ", ".join(f"{tracer!r} ({count} open)" for tracer, count in leaks)
    )


@pytest.fixture
def schema_r() -> RelationSchema:
    return RelationSchema(
        "works_on", join_attributes=("emp",), payload_attributes=("project",)
    )


@pytest.fixture
def schema_s() -> RelationSchema:
    return RelationSchema(
        "earns", join_attributes=("emp",), payload_attributes=("salary",)
    )


def make_relation(
    schema: RelationSchema,
    rows: List[tuple],
) -> ValidTimeRelation:
    """Rows are (key..., payload..., vs, ve)."""
    return ValidTimeRelation.from_rows(schema, rows)


def random_relation(
    schema: RelationSchema,
    n_tuples: int,
    seed: int,
    *,
    n_keys: int = 12,
    lifespan: int = 512,
    long_lived_fraction: float = 0.25,
    payload_tag: str = "v",
) -> ValidTimeRelation:
    """A mixed instantaneous/long-lived relation for equivalence tests."""
    rng = random.Random(seed)
    relation = ValidTimeRelation(schema)
    for number in range(n_tuples):
        key = (f"k{rng.randrange(n_keys)}",)
        start = rng.randrange(lifespan)
        if rng.random() < long_lived_fraction:
            end = min(lifespan - 1, start + rng.randrange(1, lifespan // 2))
        else:
            end = start
        relation.add(VTTuple(key, (f"{payload_tag}{number}",), Interval(start, end)))
    return relation


@pytest.fixture
def small_r(schema_r) -> ValidTimeRelation:
    return random_relation(schema_r, 60, seed=11, payload_tag="p")


@pytest.fixture
def small_s(schema_s) -> ValidTimeRelation:
    return random_relation(schema_s, 60, seed=23, payload_tag="q")
