"""Admission control: the granted-pages invariant, policies, degradation.

The central assertion, checked at every instant by a sampling thread while
workers hammer the controller: granted pages never exceed capacity.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.model.errors import (
    AdmissionTimeoutError,
    QueryCancelledError,
    ServiceError,
)
from repro.service.admission import AdmissionController


class TestGrantInvariant:
    def test_granted_never_exceeds_capacity_under_stress(self):
        seed = int(os.environ.get("SERVICE_STRESS_SEED", "0"))
        controller = AdmissionController(32, default_timeout=10.0)
        violations = []
        errors = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                granted = controller.granted_pages
                if granted > controller.capacity_pages or granted < 0:
                    violations.append(granted)

        def worker(worker_id: int):
            rng = random.Random(seed * 100 + worker_id)
            for _ in range(40):
                pages = rng.randrange(1, 20)
                try:
                    with controller.acquire(pages, label=f"w{worker_id}") as grant:
                        if controller.granted_pages > controller.capacity_pages:
                            violations.append(controller.granted_pages)
                        assert grant.pages == pages
                        time.sleep(rng.random() * 0.002)
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return

        sampler_thread = threading.Thread(target=sampler)
        sampler_thread.start()
        workers = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stop.set()
        sampler_thread.join()
        assert not errors
        assert not violations
        assert controller.granted_pages == 0
        assert controller.peak_granted_pages <= controller.capacity_pages
        assert controller.grants == 6 * 40

    def test_oversubscribed_workload_completes_by_queueing(self):
        controller = AdmissionController(16, default_timeout=10.0)
        done = []

        def worker(worker_id: int):
            # Each wants most of the pool: at most one can run at a time.
            with controller.acquire(12, label=f"w{worker_id}"):
                time.sleep(0.005)
            done.append(worker_id)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(done) == list(range(8))
        assert controller.timeouts == 0
        assert controller.granted_pages == 0


class TestPolicies:
    def _holder(self, controller, pages):
        return controller.acquire(pages, label="holder")

    def test_fifo_preserves_arrival_order(self):
        controller = AdmissionController(10, policy="fifo", default_timeout=5.0)
        holder = self._holder(controller, 9)
        order = []

        def waiter(name, pages):
            with controller.acquire(pages, label=name):
                order.append(name)
                time.sleep(0.002)

        big = threading.Thread(target=waiter, args=("big", 8))
        big.start()
        while controller.queue_length < 1:
            time.sleep(0.001)
        small = threading.Thread(target=waiter, args=("small", 1))
        small.start()
        # 1 page is free, but FIFO holds "small" behind "big".
        time.sleep(0.05)
        assert order == []
        holder.release()
        big.join()
        small.join()
        assert order == ["big", "small"]

    def test_smallest_grant_first_overtakes(self):
        controller = AdmissionController(10, policy="smallest", default_timeout=5.0)
        holder = self._holder(controller, 9)
        order = []

        def waiter(name, pages):
            with controller.acquire(pages, label=name):
                order.append(name)
                time.sleep(0.002)

        big = threading.Thread(target=waiter, args=("big", 8))
        big.start()
        while controller.queue_length < 1:
            time.sleep(0.001)
        small = threading.Thread(target=waiter, args=("small", 1))
        small.start()
        small.join(timeout=2.0)
        # The free page went to "small" even though "big" arrived first.
        assert order == ["small"]
        holder.release()
        big.join()
        assert order == ["small", "big"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServiceError, match="policy"):
            AdmissionController(16, policy="largest")


class TestDegradationAndTimeout:
    def test_degraded_grant_under_pressure(self):
        controller = AdmissionController(
            16, default_timeout=5.0, degrade_after=0.02
        )
        holder = controller.acquire(10, label="holder")
        grant = controller.acquire(10, label="needy")
        # Only 6 pages were free; past degrade_after the waiter takes them.
        assert grant.pages == 6
        assert grant.degraded
        assert controller.degraded_grants == 1
        assert grant.queue_wait_seconds >= 0.02
        grant.release()
        holder.release()
        events = [e for e in controller.events if e.kind == "degraded-grant"]
        assert len(events) == 1 and events[0].granted_pages == 6

    def test_degraded_grant_respects_min_pages(self):
        controller = AdmissionController(
            16, default_timeout=0.2, degrade_after=0.01
        )
        holder = controller.acquire(14, label="holder")
        # 2 free < min_pages=4: degradation cannot engage, so it times out.
        with pytest.raises(AdmissionTimeoutError):
            controller.acquire(10, label="needy")
        holder.release()

    def test_timeout_raises_and_cleans_queue(self):
        controller = AdmissionController(8, default_timeout=0.1)
        holder = controller.acquire(8, label="holder")
        before = time.monotonic()
        with pytest.raises(AdmissionTimeoutError) as exc:
            controller.acquire(4, label="needy")
        assert time.monotonic() - before >= 0.1
        assert controller.timeouts == 1
        assert controller.queue_length == 0  # the waiter removed itself
        assert exc.value.context["requested_pages"] == 4
        holder.release()
        # The pool is usable again afterwards.
        with controller.acquire(4, label="retry") as grant:
            assert grant.pages == 4

    def test_request_larger_than_pool_is_clamped(self):
        controller = AdmissionController(8, default_timeout=1.0)
        with controller.acquire(100, label="huge") as grant:
            assert grant.pages == 8
            assert grant.clamped
            assert grant.asked_pages == 100
            assert grant.requested_pages == 8  # the post-clamp request
            # The clamped request was satisfied in full: not degraded, in
            # agreement with the degraded_grants counter.
            assert not grant.degraded
        assert controller.clamped_requests == 1
        assert controller.degraded_grants == 0

    def test_cancellation_aborts_the_wait(self):
        controller = AdmissionController(8, default_timeout=5.0)
        holder = controller.acquire(8, label="holder")
        cancelled = threading.Event()
        failures = []

        def waiter():
            try:
                controller.acquire(4, label="victim", cancelled=cancelled)
            except QueryCancelledError:
                failures.append("cancelled")

        thread = threading.Thread(target=waiter)
        thread.start()
        while controller.queue_length < 1:
            time.sleep(0.001)
        cancelled.set()
        thread.join(timeout=2.0)
        assert failures == ["cancelled"]
        assert controller.queue_length == 0
        holder.release()

    def test_invalid_request_rejected(self):
        controller = AdmissionController(8)
        with pytest.raises(ServiceError):
            controller.acquire(0)

    def test_release_is_idempotent(self):
        controller = AdmissionController(8)
        grant = controller.acquire(5)
        grant.release()
        grant.release()
        assert controller.granted_pages == 0
