"""Service-layer semantics of lane failure: breaker, caching, deadlines.

The supervisor makes a killed lane invisible to correctness; this suite
pins down what the *service* must still do about it: keep disturbed runs
out of the result cache, release every granted page, trip the circuit
breaker to serial when failures cluster, half-open it on probe queries,
and enforce whole-query deadline budgets across admission and execution.
"""

import pytest

from repro.exec.backend import HAVE_NUMPY
from repro.model.errors import QueryDeadlineError, ServiceError
from repro.resilience.supervisor import clear_lane_injector, install_lane_injector
from repro.service import LaneCircuitBreaker, QueryService
from repro.service.breaker import BREAKER_STATES
from repro.storage.page import PageSpec

from tests.service.conftest import make_catalog, outcome_counters


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestLaneCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        kwargs = dict(threshold=2, window_seconds=10.0, cooldown_seconds=5.0)
        kwargs.update(overrides)
        return LaneCircuitBreaker(clock=clock, **kwargs), clock

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0},
            {"window_seconds": 0.0},
            {"cooldown_seconds": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            LaneCircuitBreaker(**kwargs)

    def test_trips_after_threshold_failures_in_window(self):
        breaker, _ = self.make()
        assert breaker.admit()
        breaker.record(used_lanes=True, lane_failed=True)
        assert breaker.state == "closed"
        breaker.record(used_lanes=True, lane_failed=True)
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.admit()

    def test_failures_outside_the_window_age_out(self):
        breaker, clock = self.make()
        breaker.record(used_lanes=True, lane_failed=True)
        clock.advance(11.0)  # past window_seconds
        breaker.record(used_lanes=True, lane_failed=True)
        assert breaker.state == "closed"

    def test_serial_runs_carry_no_signal(self):
        breaker, _ = self.make(threshold=1)
        breaker.record(used_lanes=False, lane_failed=True)
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe_and_closes_on_clean(self):
        breaker, clock = self.make(threshold=1)
        breaker.record(used_lanes=True, lane_failed=True)
        assert breaker.state == "open"
        assert not breaker.admit()  # still cooling down
        clock.advance(5.0)
        assert breaker.admit()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.admit()  # peers stay serial
        breaker.record(used_lanes=True, lane_failed=False)
        assert breaker.state == "closed"
        assert breaker.admit()

    def test_disturbed_probe_reopens(self):
        breaker, clock = self.make(threshold=1)
        breaker.record(used_lanes=True, lane_failed=True)
        clock.advance(5.0)
        assert breaker.admit()
        breaker.record(used_lanes=True, lane_failed=True)
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.admit()  # a fresh cooldown started

    def test_state_index_matches_gauge_order(self):
        breaker, clock = self.make(threshold=1)
        assert BREAKER_STATES[breaker.state_index] == "closed"
        breaker.record(used_lanes=True, lane_failed=True)
        assert BREAKER_STATES[breaker.state_index] == "open"
        clock.advance(5.0)
        breaker.admit()
        assert BREAKER_STATES[breaker.state_index] == "half-open"


class TestDeadlineBudget:
    def test_deadline_must_be_positive(self, service):
        with pytest.raises(ServiceError):
            service.open_session(deadline_seconds=0.0)
        with pytest.raises(ServiceError):
            service.open_session(deadline_seconds=-1.0)

    def test_tiny_deadline_raises_before_evaluation(self, service):
        with service.open_session(deadline_seconds=1e-6, label="rushed") as session:
            with pytest.raises(QueryDeadlineError):
                session.join("r", "s")
        snapshot = service.metrics_snapshot()
        deadline_counts = [
            count
            for key, count in snapshot["repro_service_queries_total"]["series"].items()
            if "status=deadline" in key
        ]
        assert sum(deadline_counts) >= 1.0
        assert "repro_service_deadline_exceeded_total" in snapshot

    def test_admission_wait_is_capped_by_the_deadline(self, service):
        """A saturated pool plus a short budget must surface as a deadline
        error, not an admission timeout -- the deadline was the binding
        bound."""
        hog = service.admission.acquire(32, label="hog")  # the whole pool
        try:
            with service.open_session(
                deadline_seconds=0.3, admission_timeout=30.0, label="queued"
            ) as session:
                with pytest.raises(QueryDeadlineError):
                    session.join("r", "s")
        finally:
            hog.release()

    def test_generous_deadline_does_not_interfere(self, service):
        with service.open_session(deadline_seconds=60.0) as session:
            result = session.join("r", "s")
        assert result.outcome.n_result_tuples > 0


needs_pools = pytest.mark.skipif(
    not HAVE_NUMPY, reason="lane pools only dispatch with numpy workers"
)


@pytest.fixture
def forced_lanes(monkeypatch):
    """Force a real 2-lane pool even on a 1-core runner.

    The service path takes the default lane count, so the default itself
    must be lifted to 2 (the join's answer never depends on it).
    """
    sweep = pytest.importorskip("repro.exec.sweep_parallel")
    monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
    monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
    monkeypatch.setattr(sweep, "default_sweep_workers", lambda: 2)


def lane_service(**overrides):
    kwargs = dict(
        pool_pages=64,
        memory_pages=8,
        workers=2,
        execution="zero-copy-sweep",
        page_spec=PageSpec(page_bytes=256, tuple_bytes=32),
    )
    kwargs.update(overrides)
    return QueryService(make_catalog(220, 200, seed=7), **kwargs)


class Injector:
    """Minimal one-shot lane-fault script (the FaultInjector hook shape)."""

    def __init__(self, faults):
        self.faults = dict(faults)

    def on_lane_dispatch(self, dispatch_no):
        return self.faults.pop(dispatch_no, None)


@needs_pools
class TestLaneDeathHygiene:
    def test_killed_lane_releases_pages_and_skips_the_result_cache(
        self, forced_lanes
    ):
        install_lane_injector(Injector({1: "kill"}))
        try:
            with lane_service(lane_failure_threshold=100) as service:
                with service.open_session(label="victim", method="partition") as session:
                    disturbed = session.join("r", "s")
                    # Every page the killed-lane query was granted is back.
                    assert service.admission.granted_pages == 0
                    assert not disturbed.result_cache_hit
                    # The disturbed run must NOT have populated the cache:
                    # the repeat recomputes (and only *it* becomes cacheable).
                    repeat = session.join("r", "s")
                    assert not repeat.result_cache_hit
                    third = session.join("r", "s")
                    assert third.result_cache_hit
                    for other in (repeat, third):
                        assert list(other.relation.tuples) == list(
                            disturbed.relation.tuples
                        )
                        assert outcome_counters(other.outcome) == outcome_counters(
                            disturbed.outcome
                        )
        finally:
            clear_lane_injector()


@needs_pools
class TestBreakerIntegration:
    def test_one_disturbed_query_trips_a_hair_trigger_breaker(self, forced_lanes):
        install_lane_injector(Injector({1: "kill"}))
        try:
            with lane_service(
                lane_failure_threshold=1, lane_breaker_cooldown=3600.0
            ) as service:
                with service.open_session(label="tripper", method="partition") as session:
                    disturbed = session.join("r", "s")
                    report = service.report()["lane_breaker"]
                    assert report["state"] == "open"
                    assert report["trips"] == 1
                    # The next query runs serial -- and answers identically.
                    serial = session.join("r", "s")
                    assert list(serial.relation.tuples) == list(
                        disturbed.relation.tuples
                    )
                    assert service.report()["lane_breaker"]["state"] == "open"
        finally:
            clear_lane_injector()

    def test_breaker_half_opens_and_closes_on_a_clean_probe(self, forced_lanes):
        install_lane_injector(Injector({1: "kill"}))
        try:
            with lane_service(
                lane_failure_threshold=1, lane_breaker_cooldown=0.0
            ) as service:
                with service.open_session(label="prober", method="partition") as session:
                    session.join("r", "s")  # disturbed: trips the breaker
                    assert service.report()["lane_breaker"]["state"] == "open"
                    # Zero cooldown: the very next query is the probe, it
                    # runs clean on lanes, and the breaker closes.
                    session.join("r", "s")
                    assert service.report()["lane_breaker"]["state"] == "closed"
        finally:
            clear_lane_injector()
