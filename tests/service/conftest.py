"""Shared builders for the query-service suite."""

from __future__ import annotations

import random

import pytest

from repro.engine.catalog import VersionedCatalog
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.service import QueryService
from repro.time.interval import Interval


def make_tuples(n: int, *, seed: int, n_keys: int = 8, lifespan: int = 60):
    """Seeded overlap-heavy tuples (few keys, short lifespan => real matches)."""
    rng = random.Random(seed)
    rows = []
    for number in range(n):
        start = rng.randrange(lifespan)
        end = min(lifespan - 1, start + rng.randrange(6))
        rows.append(
            VTTuple((f"k{rng.randrange(n_keys)}",), (number,), Interval(start, end))
        )
    return rows


def make_catalog(n_r: int = 60, n_s: int = 45, *, seed: int = 0) -> VersionedCatalog:
    catalog = VersionedCatalog()
    catalog.register(
        RelationSchema("r", join_attributes=("k",), payload_attributes=("pr",)),
        make_tuples(n_r, seed=seed),
    )
    catalog.register(
        RelationSchema("s", join_attributes=("k",), payload_attributes=("ps",)),
        make_tuples(n_s, seed=seed + 1),
    )
    return catalog


@pytest.fixture
def catalog() -> VersionedCatalog:
    return make_catalog()


@pytest.fixture
def service(catalog):
    with QueryService(catalog, pool_pages=32, workers=3) as svc:
        yield svc


def outcome_counters(outcome):
    """The JoinOutcome fingerprint minus the relation object itself."""
    return (
        outcome.n_result_tuples,
        outcome.overflow_blocks,
        outcome.cache_tuples_peak,
        outcome.cache_tuples_spilled,
    )
