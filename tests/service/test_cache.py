"""The epoch-keyed plan and result caches: LRU, stats, invalidation."""

from __future__ import annotations

import pytest

from repro.core.joiner import JoinOutcome
from repro.core.partition_join import PartitionJoinConfig
from repro.model.errors import ServiceError
from repro.service.cache import (
    CachedJoin,
    EpochKeyedCache,
    PlanCache,
    ResultCache,
    plan_key,
    result_key,
)

CONFIG = PartitionJoinConfig(memory_pages=16)


class TestEpochKeyedCache:
    def test_lru_evicts_oldest(self):
        cache = EpochKeyedCache(2, name="t")
        cache.put("a", 1, names=("r",))
        cache.put("b", 2, names=("r",))
        cache.put("c", 3, names=("r",))  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = EpochKeyedCache(2, name="t")
        cache.put("a", 1, names=("r",))
        cache.put("b", 2, names=("r",))
        cache.get("a")  # "b" is now the LRU victim
        cache.put("c", 3, names=("r",))
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_invalidate_relation_drops_only_matching(self):
        cache = EpochKeyedCache(8, name="t")
        cache.put("ra", 1, names=("r", "a"))
        cache.put("rb", 2, names=("r", "b"))
        cache.put("ab", 3, names=("a", "b"))
        assert cache.invalidate_relation("r") == 2
        assert cache.get("ra") is None and cache.get("rb") is None
        assert cache.get("ab") == 3
        assert cache.stats.invalidations == 2

    def test_hit_ratio(self):
        cache = EpochKeyedCache(4, name="t")
        cache.put("a", 1, names=())
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2 and cache.stats.misses == 1
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ServiceError, match="capacity"):
            EpochKeyedCache(0, name="t")


class TestKeys:
    def test_epoch_in_key_makes_stale_entries_unreachable(self):
        old = plan_key("r", "s", (1, 2), CONFIG)
        new = plan_key("r", "s", (3, 2), CONFIG)
        assert old != new

    def test_config_in_key(self):
        small = plan_key("r", "s", (1, 2), CONFIG)
        big = plan_key(
            "r", "s", (1, 2), PartitionJoinConfig(memory_pages=32)
        )
        assert small != big

    def test_plan_and_result_key_spaces_disjoint(self):
        assert plan_key("r", "s", (1, 2), CONFIG) != result_key(
            "r", "s", (1, 2), "partition", CONFIG
        )

    def test_method_in_result_key(self):
        assert result_key("r", "s", (1, 2), "partition", CONFIG) != result_key(
            "r", "s", (1, 2), "sort_merge", CONFIG
        )


class TestTypedCaches:
    def test_result_cache_round_trip(self):
        cache = ResultCache(4)
        entry = CachedJoin(
            relation=None,
            outcome=JoinOutcome(result=None, n_result_tuples=7),
            algorithm="partition",
            cost=12.5,
            charged_ops=40,
            epochs=(1, 2),
        )
        cache.store("r", "s", (1, 2), "partition", CONFIG, entry)
        hit = cache.lookup("r", "s", (1, 2), "partition", CONFIG)
        assert hit is entry
        assert cache.lookup("r", "s", (1, 3), "partition", CONFIG) is None

    def test_plan_cache_invalidation_by_name(self):
        cache = PlanCache(4)
        cache.store("r", "s", (1, 2), CONFIG, object())
        cache.store("x", "y", (3, 4), CONFIG, object())
        assert cache.invalidate_relation("s") == 1
        assert cache.lookup("r", "s", (1, 2), CONFIG) is None
        assert cache.lookup("x", "y", (3, 4), CONFIG) is not None


class TestInternerCache:
    def make(self, capacity=4):
        from repro.service.cache import InternerCache

        return InternerCache(capacity)

    def test_same_version_shares_one_interner(self):
        cache = self.make()
        first = cache.lookup_or_create("r", 1, "numpy")
        assert cache.lookup_or_create("r", 1, "numpy") is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_epoch_and_backend_partition_the_space(self):
        cache = self.make()
        base = cache.lookup_or_create("r", 1, "numpy")
        assert cache.lookup_or_create("r", 2, "numpy") is not base
        assert cache.lookup_or_create("r", 1, "python") is not base
        assert cache.stats.misses == 3

    def test_lru_eviction_at_capacity(self):
        cache = self.make(capacity=2)
        first = cache.lookup_or_create("a", 1, "numpy")
        cache.lookup_or_create("b", 1, "numpy")
        cache.lookup_or_create("c", 1, "numpy")  # evicts "a"
        assert cache.stats.evictions == 1
        assert cache.lookup_or_create("a", 1, "numpy") is not first

    def test_lookup_refreshes_recency(self):
        cache = self.make(capacity=2)
        first = cache.lookup_or_create("a", 1, "numpy")
        cache.lookup_or_create("b", 1, "numpy")
        cache.lookup_or_create("a", 1, "numpy")  # "b" is now the victim
        cache.lookup_or_create("c", 1, "numpy")
        assert cache.lookup_or_create("a", 1, "numpy") is first

    def test_invalidate_relation_drops_only_that_outer(self):
        cache = self.make()
        stale = cache.lookup_or_create("r", 1, "numpy")
        kept = cache.lookup_or_create("s", 1, "numpy")
        assert cache.invalidate_relation("r") == 1
        assert cache.lookup_or_create("r", 1, "numpy") is not stale
        assert cache.lookup_or_create("s", 1, "numpy") is kept


class TestInternerCacheInService:
    def test_repeat_joins_hit_and_mutations_invalidate(self, service):
        """A session's repeated batch joins of one relation version reuse
        the interner; an append installs a new epoch and invalidates."""
        with service.open_session(
            use_result_cache=False, execution="batch"
        ) as session:
            session.join("r", "s")
            session.join("r", "s")
            assert service.interner_cache.stats.misses == 1
            assert service.interner_cache.stats.hits == 1

            from tests.service.conftest import make_tuples

            session.append("r", make_tuples(5, seed=123))
            assert service.interner_cache.stats.invalidations >= 1
            session.join("r", "s")
            assert service.interner_cache.stats.misses == 2

    def test_tuple_mode_never_touches_the_cache(self, service):
        with service.open_session(use_result_cache=False) as session:
            session.join("r", "s")
        assert service.interner_cache.stats.misses == 0
        assert service.interner_cache.stats.hits == 0
