"""The epoch-keyed plan and result caches: LRU, stats, invalidation."""

from __future__ import annotations

import pytest

from repro.core.joiner import JoinOutcome
from repro.core.partition_join import PartitionJoinConfig
from repro.model.errors import ServiceError
from repro.service.cache import (
    CachedJoin,
    EpochKeyedCache,
    PlanCache,
    ResultCache,
    plan_key,
    result_key,
)

CONFIG = PartitionJoinConfig(memory_pages=16)


class TestEpochKeyedCache:
    def test_lru_evicts_oldest(self):
        cache = EpochKeyedCache(2, name="t")
        cache.put("a", 1, names=("r",))
        cache.put("b", 2, names=("r",))
        cache.put("c", 3, names=("r",))  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = EpochKeyedCache(2, name="t")
        cache.put("a", 1, names=("r",))
        cache.put("b", 2, names=("r",))
        cache.get("a")  # "b" is now the LRU victim
        cache.put("c", 3, names=("r",))
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_invalidate_relation_drops_only_matching(self):
        cache = EpochKeyedCache(8, name="t")
        cache.put("ra", 1, names=("r", "a"))
        cache.put("rb", 2, names=("r", "b"))
        cache.put("ab", 3, names=("a", "b"))
        assert cache.invalidate_relation("r") == 2
        assert cache.get("ra") is None and cache.get("rb") is None
        assert cache.get("ab") == 3
        assert cache.stats.invalidations == 2

    def test_hit_ratio(self):
        cache = EpochKeyedCache(4, name="t")
        cache.put("a", 1, names=())
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2 and cache.stats.misses == 1
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ServiceError, match="capacity"):
            EpochKeyedCache(0, name="t")


class TestKeys:
    def test_epoch_in_key_makes_stale_entries_unreachable(self):
        old = plan_key("r", "s", (1, 2), CONFIG)
        new = plan_key("r", "s", (3, 2), CONFIG)
        assert old != new

    def test_config_in_key(self):
        small = plan_key("r", "s", (1, 2), CONFIG)
        big = plan_key(
            "r", "s", (1, 2), PartitionJoinConfig(memory_pages=32)
        )
        assert small != big

    def test_plan_and_result_key_spaces_disjoint(self):
        assert plan_key("r", "s", (1, 2), CONFIG) != result_key(
            "r", "s", (1, 2), "partition", CONFIG
        )

    def test_method_in_result_key(self):
        assert result_key("r", "s", (1, 2), "partition", CONFIG) != result_key(
            "r", "s", (1, 2), "sort_merge", CONFIG
        )


class TestTypedCaches:
    def test_result_cache_round_trip(self):
        cache = ResultCache(4)
        entry = CachedJoin(
            relation=None,
            outcome=JoinOutcome(result=None, n_result_tuples=7),
            algorithm="partition",
            cost=12.5,
            charged_ops=40,
            epochs=(1, 2),
        )
        cache.store("r", "s", (1, 2), "partition", CONFIG, entry)
        hit = cache.lookup("r", "s", (1, 2), "partition", CONFIG)
        assert hit is entry
        assert cache.lookup("r", "s", (1, 3), "partition", CONFIG) is None

    def test_plan_cache_invalidation_by_name(self):
        cache = PlanCache(4)
        cache.store("r", "s", (1, 2), CONFIG, object())
        cache.store("x", "y", (3, 4), CONFIG, object())
        assert cache.invalidate_relation("s") == 1
        assert cache.lookup("r", "s", (1, 2), CONFIG) is None
        assert cache.lookup("x", "y", (3, 4), CONFIG) is not None
