"""The bounded worker-thread executor and per-query cancellation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.model.errors import QueryCancelledError, ServiceError
from repro.service.executor import QueryExecutor


@pytest.fixture
def executor():
    ex = QueryExecutor(workers=2, queue_limit=4)
    yield ex
    ex.shutdown(wait=True)


class TestExecution:
    def test_result_round_trip(self, executor):
        handle = executor.submit(lambda h: 21 * 2, label="answer")
        assert handle.result(timeout=5.0) == 42
        assert handle.done and not handle.cancelled

    def test_errors_reraise_in_caller(self, executor):
        def boom(_handle):
            raise ValueError("broken query")

        handle = executor.submit(boom)
        with pytest.raises(ValueError, match="broken query"):
            handle.result(timeout=5.0)
        assert handle.exception(timeout=1.0) is not None

    def test_many_queries_all_complete(self, executor):
        handles = [
            executor.submit(lambda h, n=n: n * n) for n in range(4)
        ]
        assert [h.result(5.0) for h in handles] == [0, 1, 4, 9]

    def test_result_timeout_raises(self, executor):
        release = threading.Event()
        handle = executor.submit(lambda h: release.wait(5.0))
        with pytest.raises(ServiceError, match="still running"):
            handle.result(timeout=0.05)
        release.set()
        handle.result(timeout=5.0)


class TestBoundedQueue:
    def test_submit_rejects_beyond_queue_limit(self):
        executor = QueryExecutor(workers=1, queue_limit=2)
        try:
            release = threading.Event()
            blocker = executor.submit(lambda h: release.wait(10.0))
            while executor.active < 1:
                time.sleep(0.001)
            executor.submit(lambda h: None)
            executor.submit(lambda h: None)
            with pytest.raises(ServiceError, match="run queue full"):
                executor.submit(lambda h: None)
            release.set()
            blocker.result(5.0)
        finally:
            executor.shutdown(wait=True)

    def test_submit_after_shutdown_raises(self):
        executor = QueryExecutor(workers=1)
        executor.shutdown(wait=True)
        with pytest.raises(ServiceError, match="shut down"):
            executor.submit(lambda h: None)


class TestCancellation:
    def test_cancel_while_queued_skips_the_work(self):
        executor = QueryExecutor(workers=1, queue_limit=8)
        try:
            release = threading.Event()
            ran = []
            blocker = executor.submit(lambda h: release.wait(10.0))
            while executor.active < 1:
                time.sleep(0.001)
            queued = executor.submit(lambda h: ran.append(1))
            assert queued.cancel()
            release.set()
            blocker.result(5.0)
            with pytest.raises(QueryCancelledError):
                queued.result(5.0)
            assert queued.cancelled
            assert not ran
        finally:
            executor.shutdown(wait=True)

    def test_cancel_running_query_at_its_checkpoint(self, executor):
        entered = threading.Event()

        def cooperative(handle):
            entered.set()
            for _ in range(200):
                handle.check_cancelled()
                time.sleep(0.005)
            return "finished"

        handle = executor.submit(cooperative)
        entered.wait(5.0)
        assert handle.cancel()
        with pytest.raises(QueryCancelledError):
            handle.result(5.0)
        assert handle.cancelled

    def test_cancel_after_completion_returns_false(self, executor):
        handle = executor.submit(lambda h: 1)
        handle.result(5.0)
        assert not handle.cancel()

    def test_shutdown_cancels_running_when_asked(self):
        executor = QueryExecutor(workers=1, queue_limit=8)
        entered = threading.Event()

        def cooperative(handle):
            entered.set()
            # Blocks until cancelled; a plain wait would hold shutdown for 30s.
            if handle.cancel_event.wait(30.0):
                handle.check_cancelled()
            return "finished"

        handle = executor.submit(cooperative)
        assert entered.wait(5.0)
        before = time.monotonic()
        executor.shutdown(wait=True, cancel_queued=True, cancel_running=True)
        assert time.monotonic() - before < 10.0
        with pytest.raises(QueryCancelledError):
            handle.result(1.0)
        assert handle.cancelled

    def test_shutdown_cancels_backlog(self):
        executor = QueryExecutor(workers=1, queue_limit=8)
        release = threading.Event()
        blocker = executor.submit(lambda h: release.wait(10.0))
        while executor.active < 1:
            time.sleep(0.001)
        queued = executor.submit(lambda h: "never")
        release.set()
        executor.shutdown(wait=True, cancel_queued=True)
        blocker.result(1.0)
        with pytest.raises(QueryCancelledError):
            queued.result(1.0)

    def test_invalid_sizing_rejected(self):
        with pytest.raises(ServiceError):
            QueryExecutor(workers=0)
        with pytest.raises(ServiceError):
            QueryExecutor(workers=1, queue_limit=0)
