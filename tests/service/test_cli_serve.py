"""``python -m repro serve``: the concurrent workload driver."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.service.workload import (
    demo_workload,
    load_workload,
    percentile,
    split_statements,
)


class TestServeCommand:
    def test_demo_workload_runs_and_reports(self, capsys):
        code = main(["serve", "--sessions", "2", "--pool-pages", "32"])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["sessions"] == 2
        assert summary["queries"] > 0
        assert summary["errors"] == 0
        assert summary["result_cache_hits"] >= 1  # the demo repeats queries
        assert "queue_wait_p95_seconds" in summary
        assert summary["service"]["admission"]["capacity_pages"] == 32

    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "workload.jsonl"
        lines = [
            "# comment lines and blanks are fine",
            "",
            json.dumps(
                {"op": "generate", "name": "r", "n_tuples": 120, "seed": 1}
            ),
            json.dumps(
                {"op": "generate", "name": "s", "n_tuples": 90, "seed": 2}
            ),
            json.dumps(
                {"op": "join", "session": 0, "outer": "r", "inner": "s",
                 "repeat": 2}
            ),
            json.dumps(
                {"op": "append", "session": 1, "name": "r", "n_tuples": 8}
            ),
            json.dumps(
                {"op": "join", "session": 1, "outer": "r", "inner": "s"}
            ),
        ]
        script.write_text("\n".join(lines) + "\n")
        code = main(["serve", "--script", str(script), "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["sessions"] == 2
        assert summary["queries"] == 3
        assert summary["writes"] == 1


class TestWorkloadHelpers:
    def test_load_workload_round_trip(self, tmp_path):
        script = tmp_path / "w.jsonl"
        statements = demo_workload(sessions=2, n_tuples=10)
        script.write_text(
            "\n".join(json.dumps(statement) for statement in statements)
        )
        assert load_workload(str(script)) == statements

    def test_split_statements(self):
        setup, per_session = split_statements(demo_workload(sessions=3))
        assert [s["op"] for s in setup] == ["generate", "generate"]
        assert set(per_session) == {0, 1, 2}

    def test_percentile(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == 2.5
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.9) == 7.0
