"""Session lifecycle, per-session overrides, and the session cap."""

from __future__ import annotations

import pytest

from repro.model.errors import ServiceError, SessionClosedError
from repro.service import QueryService, SessionConfig

from tests.service.conftest import make_catalog


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, service):
        session = service.open_session()
        assert not session.closed
        assert service.active_sessions == 1
        session.close()
        session.close()
        assert session.closed
        assert service.active_sessions == 0
        with pytest.raises(SessionClosedError):
            session.join("r", "s")
        with pytest.raises(SessionClosedError):
            session.append("r", [])

    def test_context_manager_closes(self, service):
        with service.open_session() as session:
            assert service.active_sessions == 1
        assert session.closed
        assert service.active_sessions == 0

    def test_session_cap(self):
        with QueryService(make_catalog(), pool_pages=16, max_sessions=2) as svc:
            a = svc.open_session()
            svc.open_session()
            with pytest.raises(ServiceError, match="session limit"):
                svc.open_session()
            a.close()
            svc.open_session()  # freed slot is reusable

    def test_service_close_closes_sessions(self):
        svc = QueryService(make_catalog(), pool_pages=16)
        session = svc.open_session()
        svc.close()
        assert session.closed
        with pytest.raises(ServiceError, match="closed"):
            svc.open_session()


class TestOverrides:
    def test_config_and_keyword_overrides(self, service):
        base = SessionConfig(memory_pages=8, label="cfg")
        with service.open_session(base, execution="batch") as session:
            assert session.config.memory_pages == 8
            assert session.config.execution == "batch"
            assert session.config.label == "cfg"

    def test_memory_override_drives_the_grant(self, service):
        with service.open_session(memory_pages=8) as session:
            result = session.join("r", "s", method="partition")
            assert result.requested_pages <= 8
            assert result.granted_pages <= 8

    def test_execution_override_still_bit_identical(self, service):
        with service.open_session(execution="tuple", use_result_cache=False) as a:
            tuple_result = a.join("r", "s", method="partition")
        with service.open_session(execution="batch", use_result_cache=False) as b:
            batch_result = b.join("r", "s", method="partition")
        assert list(tuple_result.relation.tuples) == list(batch_result.relation.tuples)

    def test_invalid_overrides_rejected_at_open(self, service):
        with pytest.raises(ServiceError, match="execution"):
            service.open_session(execution="warp")
        with pytest.raises(ServiceError, match="method"):
            service.open_session(method="hash")
        with pytest.raises(ServiceError, match="memory_pages"):
            service.open_session(memory_pages=2)

    def test_method_override_per_session(self, service):
        with service.open_session(method="sort_merge") as session:
            result = session.join("r", "s")
            assert result.algorithm == "sort_merge"
            # The per-call method beats the session default.
            forced = session.join("r", "s", method="nested_loop")
            assert forced.algorithm == "nested_loop"
