"""The sharded query service: bit-identity, merge accounting, topology.

The fast (tier-1) slice of the shard suite: a 2-shard coordinator must be
indistinguishable from the single-process :class:`QueryService` -- same
result multiset, same JoinOutcome counters, same summed charged I/O --
while its report and metrics expose the fan-out.  The heavyweight
shard-count x execution-mode matrices live in the ``shard_slow``-marked
property tests.
"""

from __future__ import annotations

import pytest

from repro.engine.catalog import VersionedCatalog
from repro.model.errors import ServiceError
from repro.service import QueryService
from repro.shard import ShardedQueryService, active_channel_count
from repro.storage.iostats import IOStatistics

from tests.service.conftest import make_catalog, make_tuples, outcome_counters


def canonical(relation):
    return sorted((t.key, t.payload, t.vs, t.ve) for t in relation.tuples)


@pytest.fixture
def sharded():
    with ShardedQueryService(make_catalog(), shards=2, pool_pages=32) as svc:
        yield svc


def single_process_result(method="partition", execution="tuple"):
    with QueryService(
        make_catalog(),
        pool_pages=32,
        execution=execution,
        plan_cache_entries=0,
        result_cache_entries=0,
    ) as svc:
        with svc.open_session() as session:
            return session.join("r", "s", method=method)


class TestBitIdentity:
    def test_one_shard_is_literally_the_single_process_service(self):
        base = single_process_result()
        with ShardedQueryService(make_catalog(), shards=1, pool_pages=32) as svc:
            with svc.open_session() as session:
                result = session.join("r", "s", method="partition")
        # shards=1 is the anchor: the fragment IS the relation, so the
        # result order, counters, and charged I/O match to the bit.
        assert [(t.key, t.payload, t.vs, t.ve) for t in result.relation.tuples] == [
            (t.key, t.payload, t.vs, t.ve) for t in base.relation.tuples
        ]
        assert outcome_counters(result.outcome) == outcome_counters(base.outcome)
        assert result.charged_ops == base.charged_ops
        assert result.cost == pytest.approx(base.cost)
        assert result.service_cost == pytest.approx(base.cost)
        assert result.totals.total_ops == base.charged_ops

    @pytest.mark.parametrize("method", ["partition", "sweep", "sort_merge"])
    def test_two_shards_match_single_process_multiset(self, sharded, method):
        base = single_process_result(method=method)
        with sharded.open_session() as session:
            result = session.join("r", "s", method=method)
        assert canonical(result.relation) == canonical(base.relation)
        assert result.outcome.n_result_tuples == base.outcome.n_result_tuples

    def test_time_range_sharding_matches_too(self):
        base = single_process_result()
        with ShardedQueryService(
            make_catalog(), shards=3, shard_by="time-range", pool_pages=32
        ) as svc:
            with svc.open_session() as session:
                result = session.join("r", "s", method="partition")
        assert canonical(result.relation) == canonical(base.relation)
        assert result.outcome.n_result_tuples == base.outcome.n_result_tuples

    def test_merge_is_deterministic_across_runs(self, sharded):
        with sharded.open_session() as session:
            first = session.join("r", "s", method="partition")
            second = session.join("r", "s", method="partition")
        assert [(t.key, t.payload, t.vs, t.ve) for t in first.relation.tuples] == [
            (t.key, t.payload, t.vs, t.ve) for t in second.relation.tuples
        ]


class TestMergeAccounting:
    def test_counters_and_ledgers_fold_exactly(self, sharded):
        with sharded.open_session() as session:
            result = session.join("r", "s", method="partition")
        assert len(result.shards) == 2
        assert result.outcome.n_result_tuples == sum(
            shard.n_result_tuples for shard in result.shards
        )
        assert result.charged_ops == sum(s.charged_ops for s in result.shards)
        assert result.cost == pytest.approx(sum(s.cost for s in result.shards))
        assert result.service_cost == pytest.approx(
            max(s.cost for s in result.shards)
        )
        # The merged per-phase ledgers equal folding each shard's dicts.
        for name, stats in result.phases.items():
            expected = IOStatistics()
            for shard in result.shards:
                if name in shard.phases:
                    expected.merge(IOStatistics(**shard.phases[name]))
            assert stats.as_dict() == expected.as_dict()
        expected_totals = IOStatistics()
        for shard in result.shards:
            expected_totals.merge(IOStatistics(**shard.totals))
        assert result.totals.as_dict() == expected_totals.as_dict()

    def test_epochs_pin_the_snapshot(self, sharded):
        with sharded.open_session() as session:
            before = session.join("r", "s")
            session.append("r", make_tuples(4, seed=99))
            after = session.join("r", "s")
        assert before.epochs[0] < after.epochs[0]
        assert before.epochs[1] == after.epochs[1]
        assert after.outcome.n_result_tuples >= before.outcome.n_result_tuples


class TestTopology:
    def test_report_shape(self, sharded):
        with sharded.open_session() as session:
            session.join("r", "s")
        report = sharded.report()
        assert report["shards"] == 2
        assert report["strategy"] == "key-hash"
        assert len(report["workers"]) == 2
        assert all(w["alive"] for w in report["workers"])
        assert all(w["loaded_fragments"] == 2 for w in report["workers"])
        assert report["transport"]["frames_sent"] > 0
        assert report["transport"]["crc_failures"] == 0

    def test_metrics_families(self, sharded):
        with sharded.open_session() as session:
            session.join("r", "s")
        snapshot = sharded.metrics_snapshot()
        names = set(snapshot)
        assert "repro_shard_queries_total" in names
        assert "repro_shard_fragments_total" in names
        assert "repro_shard_fragment_loads_total" in names
        assert "repro_shard_workers" in names

    def test_ping_all_reaches_every_worker(self, sharded):
        statuses = sharded.ping_all()
        assert [s["rank"] for s in statuses] == [0, 1]

    def test_shard_map_recorded_in_catalog(self, sharded):
        recorded = sharded.catalog.shard_map_at(sharded.catalog.epoch)
        assert recorded == sharded.shard_map.as_dict()

    def test_close_releases_every_channel_and_worker(self):
        baseline = active_channel_count()
        svc = ShardedQueryService(make_catalog(), shards=2, pool_pages=32)
        with svc.open_session() as session:
            session.join("r", "s")
        svc.close()
        svc.close()  # idempotent
        assert active_channel_count() == baseline
        assert svc.alive_workers() == 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ServiceError):
            ShardedQueryService(make_catalog(), shards=0)
        with pytest.raises(ServiceError):
            ShardedQueryService(make_catalog(), shards=2, execution="warp")
        with pytest.raises(ServiceError):
            ShardedQueryService(make_catalog(), shards=2, memory_pages=2)


class TestFacadeWiring:
    def test_database_serve_shards(self):
        import random

        from repro.engine.database import TemporalDatabase
        from repro.model.schema import RelationSchema

        db = TemporalDatabase(memory_pages=32)
        rng = random.Random(1)
        for name in ("r", "s"):
            db.create_relation(
                RelationSchema(
                    name, join_attributes=("k",), payload_attributes=(f"p_{name}",)
                )
            )
            db.insert(
                name,
                [
                    (rng.randrange(8), f"{name}{i}", vs, vs + 1 + rng.randrange(30))
                    for i in range(40)
                    for vs in [rng.randrange(100)]
                ],
            )
        single = db.join("r", "s", method="partition")
        with db.serve(shards=2) as svc:
            with svc.open_session() as session:
                sharded = session.join("r", "s", method="partition")
        assert canonical(sharded.relation) == canonical(single.relation)

    def test_explain_shard_fanout(self):
        import random

        from repro.engine.database import TemporalDatabase
        from repro.model.schema import RelationSchema

        db = TemporalDatabase(memory_pages=32)
        rng = random.Random(2)
        for name in ("r", "s"):
            db.create_relation(
                RelationSchema(
                    name, join_attributes=("k",), payload_attributes=(f"p_{name}",)
                )
            )
            db.insert(
                name,
                [
                    (rng.randrange(8), f"{name}{i}", vs, vs + 1 + rng.randrange(30))
                    for i in range(40)
                    for vs in [rng.randrange(100)]
                ],
            )
        report = db.explain("r", "s", shards=4)
        fanout = report.shard_fanout
        assert fanout["shards"] == 4
        assert len(fanout["per_shard"]) == 4
        assert all(row["predicted_cost"] >= 0 for row in fanout["per_shard"])
        assert "shard fan-out: 4 shard(s)" in report.render()
        assert report.as_dict()["shard_fanout"] == fanout
        # Unsharded EXPLAIN stays unsharded.
        assert db.explain("r", "s").shard_fanout is None


class TestPerSessionPeaks:
    def test_query_service_report_includes_per_session_peaks(self):
        with QueryService(
            make_catalog(),
            pool_pages=32,
            plan_cache_entries=0,
            result_cache_entries=0,
        ) as svc:
            with svc.open_session() as first:
                first.join("r", "s")
                with svc.open_session() as second:
                    second.join("r", "s")
            peaks = svc.report()["admission"]["per_session_peak_pages"]
        assert set(peaks) == {"s1", "s2"}
        assert all(0 < peak <= 32 for peak in peaks.values())

    def test_peaks_track_concurrent_grants_per_owner(self):
        from repro.service.admission import AdmissionController

        controller = AdmissionController(32)
        a1 = controller.acquire(8, owner="s1")
        a2 = controller.acquire(8, owner="s1")
        b1 = controller.acquire(4, owner="s2")
        assert controller.owner_peak_pages() == {"s1": 16, "s2": 4}
        a1.release()
        a2.release()
        b1.release()
        a3 = controller.acquire(6, owner="s1")
        a3.release()
        # The peak is a high-water mark: releasing never lowers it.
        assert controller.owner_peak_pages() == {"s1": 16, "s2": 4}

    def test_unowned_grants_stay_invisible(self):
        from repro.service.admission import AdmissionController

        controller = AdmissionController(16)
        grant = controller.acquire(8)
        grant.release()
        assert controller.owner_peak_pages() == {}
