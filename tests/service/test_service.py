"""QueryService end-to-end: caching semantics, admission, writes, metrics."""

from __future__ import annotations

import threading
import time

import pytest

from repro.model.errors import AdmissionTimeoutError, QueryCancelledError
from repro.service import QueryService

from tests.service.conftest import make_catalog, make_tuples, outcome_counters


def _series(service, family):
    return service.metrics_snapshot().get(family, {}).get("series", {})


def _counter(service, family, key=""):
    return _series(service, family).get(key, 0.0)


class TestResultCache:
    def test_hit_charges_zero_io_and_counts(self, service):
        with service.open_session() as session:
            first = session.join("r", "s")
            assert not first.result_cache_hit
            assert first.charged_ops > 0
            second = session.join("r", "s")
        assert second.result_cache_hit
        # The acceptance gate: a hit charges nothing anywhere.
        assert second.charged_ops == 0
        assert second.cost == 0.0
        assert second.granted_pages == 0  # no memory was even requested
        assert _counter(service, "repro_service_result_cache_hits") == 1.0
        # Bit-identical replay: same relation, same outcome counters.
        assert second.relation is first.relation
        assert second.outcome == first.outcome
        assert second.epochs == first.epochs

    def test_append_invalidates_and_bumps_epochs(self, service):
        with service.open_session() as session:
            first = session.join("r", "s")
            session.append("r", make_tuples(10, seed=77))
            third = session.join("r", "s")
        assert not third.result_cache_hit
        assert third.epochs[0] > first.epochs[0]
        assert third.epochs[1] == first.epochs[1]
        assert third.outcome.n_result_tuples >= first.outcome.n_result_tuples
        assert service.result_cache.stats.invalidations >= 1
        assert (
            _counter(
                service,
                "repro_service_cache_invalidations_total",
                "cache=result",
            )
            >= 1.0
        )

    def test_delete_invalidates_too(self, service):
        rows = make_tuples(6, seed=5)
        with service.open_session() as session:
            session.append("s", rows)
            before = session.join("r", "s")
            session.delete("s", rows)
            after = session.join("r", "s")
        assert not after.result_cache_hit
        assert after.epochs[1] > before.epochs[1]

    def test_session_opt_out(self, service):
        with service.open_session(use_result_cache=False) as session:
            session.join("r", "s")
            again = session.join("r", "s")
        assert not again.result_cache_hit
        assert again.charged_ops > 0

    def test_caches_can_be_disabled_service_wide(self):
        with QueryService(
            make_catalog(),
            pool_pages=32,
            plan_cache_entries=0,
            result_cache_entries=0,
        ) as svc:
            assert svc.plan_cache is None and svc.result_cache is None
            with svc.open_session() as session:
                session.join("r", "s")
                again = session.join("r", "s")
            assert not again.result_cache_hit


class TestPlanCache:
    def test_second_partition_join_reuses_the_plan(self):
        with QueryService(
            make_catalog(120, 90), pool_pages=32, result_cache_entries=1
        ) as svc:
            with svc.open_session() as session:
                first = session.join("r", "s", method="partition")
                assert not first.plan_cache_hit
                # Flush the result cache so the join actually re-runs.
                svc.result_cache.clear()
                second = session.join("r", "s", method="partition")
            assert second.plan_cache_hit
            # Skipping the sample phase can only reduce the charge.
            assert second.charged_ops <= first.charged_ops
            # Identical evaluation either way.
            assert list(second.relation.tuples) == list(first.relation.tuples)
            assert outcome_counters(second.outcome) == outcome_counters(first.outcome)

    def test_append_invalidates_plans(self, service):
        with service.open_session() as session:
            session.join("r", "s", method="partition")
            session.append("r", make_tuples(4, seed=9))
            service.result_cache.clear()
            result = session.join("r", "s", method="partition")
        assert not result.plan_cache_hit


class TestAdmissionIntegration:
    def test_oversubscribed_sessions_all_complete(self):
        # Pool fits roughly one query at a time; 4 sessions pile on.
        with QueryService(
            make_catalog(),
            pool_pages=16,
            workers=4,
            result_cache_entries=0,
            plan_cache_entries=0,
            admission_timeout=30.0,
        ) as svc:
            sessions = [svc.open_session(memory_pages=14) for _ in range(4)]
            handles = [
                session.submit_join("r", "s", method="partition")
                for session in sessions
                for _ in range(2)
            ]
            results = [handle.result(60.0) for handle in handles]
            for session in sessions:
                session.close()
        assert len(results) == 8
        assert svc.admission.peak_granted_pages <= 16
        assert svc.admission.granted_pages == 0
        reference = list(results[0].relation.tuples)
        for result in results[1:]:
            assert list(result.relation.tuples) == reference

    def test_degraded_grant_still_answers_correctly(self):
        with QueryService(
            make_catalog(),
            pool_pages=24,
            workers=2,
            degrade_after=0.01,
            result_cache_entries=0,
            plan_cache_entries=0,
        ) as svc:
            block = svc.admission.acquire(16, label="squatter")
            try:
                with svc.open_session(memory_pages=20) as session:
                    degraded = session.join("r", "s", method="partition")
            finally:
                block.release()
            with svc.open_session(memory_pages=20) as session:
                full = session.join("r", "s", method="partition")
        assert degraded.degraded
        assert degraded.granted_pages < degraded.requested_pages
        # Same answer as the full-memory run (the replan ladder absorbed it).
        assert sorted(map(repr, degraded.relation.tuples)) == sorted(
            map(repr, full.relation.tuples)
        )

    def test_degraded_grant_never_populates_the_result_cache(self):
        # The serving guarantee is bit-identity with a serial replay; a
        # degraded run's budget is pressure-dependent, so its outcome must
        # never be stored under the full-budget cache key.
        with QueryService(
            make_catalog(),
            pool_pages=24,
            workers=2,
            degrade_after=0.01,
            plan_cache_entries=0,
        ) as svc:
            block = svc.admission.acquire(16, label="squatter")
            try:
                with svc.open_session(memory_pages=20) as session:
                    degraded = session.join("r", "s", method="partition")
            finally:
                block.release()
            assert degraded.degraded
            assert len(svc.result_cache) == 0
            with svc.open_session(memory_pages=20) as session:
                full = session.join("r", "s", method="partition")
                hit = session.join("r", "s", method="partition")
        # The full-grant run had to compute fresh -- a hit here would have
        # replayed the degraded run's counters as if they were its own.
        assert not full.result_cache_hit and full.charged_ops > 0
        assert hit.result_cache_hit
        assert hit.outcome == full.outcome

    def test_cancel_queued_query(self):
        with QueryService(
            make_catalog(),
            pool_pages=16,
            workers=2,
            result_cache_entries=0,
            plan_cache_entries=0,
        ) as svc:
            squatter = svc.admission.acquire(16, label="squatter")
            try:
                with svc.open_session(memory_pages=12) as session:
                    handle = session.submit_join("r", "s", method="partition")
                    while svc.admission.queue_length < 1:
                        threading.Event().wait(0.001)
                    assert handle.cancel()
                    with pytest.raises(Exception):
                        handle.result(5.0)
                    assert handle.cancelled
            finally:
                squatter.release()
        assert svc.admission.granted_pages == 0

    def test_close_cancels_inflight_admission_waiters(self):
        svc = QueryService(
            make_catalog(),
            pool_pages=16,
            workers=2,
            result_cache_entries=0,
            plan_cache_entries=0,
            admission_timeout=30.0,
        )
        squatter = svc.admission.acquire(16, label="squatter")
        try:
            session = svc.open_session(memory_pages=12)
            handle = session.submit_join("r", "s", method="partition")
            while svc.admission.queue_length < 1:
                threading.Event().wait(0.001)
            before = time.monotonic()
            svc.close()  # must not sit out the 30s admission timeout
            assert time.monotonic() - before < 10.0
            with pytest.raises(QueryCancelledError):
                handle.result(5.0)
            assert handle.cancelled
        finally:
            squatter.release()
        assert svc.admission.granted_pages == 0


class TestMetricsAndReport:
    def test_metric_families_present(self, service):
        with service.open_session() as session:
            session.join("r", "s")
            session.join("r", "s")
            session.append("r", make_tuples(2, seed=3))
        snapshot = service.metrics_snapshot()
        for family in (
            "repro_service_queries_total",
            "repro_service_result_cache_hits",
            "repro_service_result_cache_misses",
            "repro_service_queue_wait_seconds",
            "repro_service_active_sessions",
            "repro_service_granted_pages",
            "repro_service_queued_pages",
            "repro_service_sessions_total",
            "repro_service_writes_total",
        ):
            assert family in snapshot, family
        ok = [
            count
            for key, count in snapshot["repro_service_queries_total"]["series"].items()
            if "status=ok" in key
        ]
        assert sum(ok) == 2.0
        histogram = snapshot["repro_service_queue_wait_seconds"]["series"][""]
        assert histogram["count"] == 1  # one grant: the hit never queued

    def test_status_counts_share_resolved_method_label(self):
        # "auto" is resolved before dispatch, so ok/error/timeout counts of
        # repro_service_queries_total all land on the same method label and
        # per-method totals add up across statuses.
        with QueryService(
            make_catalog(),
            pool_pages=16,
            workers=2,
            result_cache_entries=0,
            plan_cache_entries=0,
        ) as svc:
            with svc.open_session() as session:
                session.join("r", "s", method="auto")
                squatter = svc.admission.acquire(16, label="squatter")
                try:
                    with pytest.raises(AdmissionTimeoutError):
                        session.join("r", "s", method="auto", timeout=0.05)
                finally:
                    squatter.release()
            series = _series(svc, "repro_service_queries_total")
        statuses = {
            part
            for key in series
            for part in key.split(",")
            if part.startswith("status=")
        }
        assert statuses == {"status=ok", "status=admission_timeout"}
        assert all("method=auto" not in key for key in series)

    def test_exact_counts_under_concurrency(self):
        with QueryService(make_catalog(), pool_pages=32, workers=4) as svc:
            n_sessions, per_session = 4, 6

            def hammer(session):
                for _ in range(per_session):
                    session.join("r", "s")

            sessions = [svc.open_session() for _ in range(n_sessions)]
            threads = [
                threading.Thread(target=hammer, args=(s,)) for s in sessions
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for session in sessions:
                session.close()
            snapshot = svc.metrics_snapshot()
            total = sum(
                snapshot["repro_service_queries_total"]["series"].values()
            )
            assert total == n_sessions * per_session
            hits = _counter(svc, "repro_service_result_cache_hits")
            misses = _counter(svc, "repro_service_result_cache_misses")
            assert hits + misses == total
            assert misses >= 1  # someone computed it first

    def test_report_shape(self, service):
        with service.open_session() as session:
            session.join("r", "s")
        report = service.report()
        assert report["admission"]["capacity_pages"] == 32
        assert report["result_cache"]["misses"] >= 1
        assert 0.0 <= report["result_cache"]["hit_ratio"] <= 1.0


class TestBaselineMethods:
    @pytest.mark.parametrize("method", ["sort_merge", "nested_loop"])
    def test_baselines_serve_and_cache(self, service, method):
        with service.open_session() as session:
            first = session.join("r", "s", method=method)
            second = session.join("r", "s", method=method)
        assert first.algorithm == method
        assert first.charged_ops >= 0 and not first.result_cache_hit
        assert second.result_cache_hit and second.charged_ops == 0
        assert second.outcome.n_result_tuples == first.outcome.n_result_tuples

    def test_methods_agree_on_cardinality(self, service):
        with service.open_session() as session:
            results = [
                session.join("r", "s", method=m)
                for m in ("partition", "sort_merge", "nested_loop")
            ]
        cardinalities = {r.outcome.n_result_tuples for r in results}
        assert len(cardinalities) == 1
