"""The snapshot-isolation property: concurrent == serial, bit for bit.

Mixed workloads of joins and appends run on concurrent sessions; every
query records the relation-version epochs it saw.  Afterwards each query
is replayed *serially* against exactly those versions (via
``VersionedCatalog.version_at``), with the same configuration and method.
The concurrent result must match the serial one bit-identically: the same
result tuples in the same order, and the same JoinOutcome counters.

Runs under three seeds (shiftable via ``SERVICE_STRESS_SEED``) and all
four execution modes.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro.core.partition_join import EXECUTION_MODES
from repro.engine.catalog import VersionedCatalog
from repro.model.schema import RelationSchema
from repro.service import QueryService

from tests.service.conftest import make_tuples, outcome_counters

_BASE_SEED = int(os.environ.get("SERVICE_STRESS_SEED", "0"))
SEEDS = [_BASE_SEED, _BASE_SEED + 1, _BASE_SEED + 2]

POOL_PAGES = 16  # one query's worth: concurrency forces real queueing
MEMORY_PAGES = 16


def _build_catalog(seed: int) -> VersionedCatalog:
    catalog = VersionedCatalog()
    catalog.register(
        RelationSchema("r", join_attributes=("k",), payload_attributes=("pr",)),
        make_tuples(70, seed=seed, n_keys=6, lifespan=50),
    )
    catalog.register(
        RelationSchema("s", join_attributes=("k",), payload_attributes=("ps",)),
        make_tuples(55, seed=seed + 10, n_keys=6, lifespan=50),
    )
    return catalog


def _session_script(rng: random.Random, n_ops: int):
    """A session's ops: mostly joins, interleaved with appends."""
    script = []
    for number in range(n_ops):
        roll = rng.random()
        if roll < 0.55:
            script.append(("join", "partition"))
        elif roll < 0.7:
            script.append(("join", "auto"))
        else:
            name = rng.choice(["r", "s"])
            script.append(("append", name, rng.randrange(1_000_000)))
    return script


def _replay_serially(catalog: VersionedCatalog, record, execution: str):
    """Re-run one recorded query against its exact snapshot versions."""
    serial_catalog = VersionedCatalog()
    for name, epoch in zip(("r", "s"), record.epochs):
        version = catalog.version_at(name, epoch)
        serial_catalog.register(version.schema, version.relation.tuples)
    with QueryService(
        serial_catalog,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        workers=1,
        execution=execution,
        plan_cache_entries=0,
        result_cache_entries=0,
    ) as serial_service:
        with serial_service.open_session() as session:
            return session.join("r", "s", method=record.algorithm)


@pytest.mark.parametrize("execution", EXECUTION_MODES)
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_equals_serial_replay(seed: int, execution: str):
    catalog = _build_catalog(seed)
    results = []
    errors = []
    lock = threading.Lock()

    with QueryService(
        catalog,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        workers=3,
        execution=execution,
        admission_timeout=60.0,
    ) as service:

        def run_session(session_number: int) -> None:
            rng = random.Random((seed, execution, session_number).__repr__())
            script = _session_script(rng, n_ops=5)
            try:
                with service.open_session() as session:
                    for op in script:
                        if op[0] == "join":
                            result = session.join(
                                "r", "s", method=op[1], result_timeout=120.0
                            )
                            with lock:
                                results.append(result)
                        else:
                            session.append(
                                op[1], make_tuples(3, seed=op[2], n_keys=6, lifespan=50)
                            )
            except Exception as error:  # pragma: no cover
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=run_session, args=(n,)) for n in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert results, "the workload must actually produce queries"
        # Degradation off (no degrade_after): grants are always full, so the
        # concurrent plan equals the serial plan and bit-identity can hold.
        assert all(not r.degraded for r in results)
        assert service.admission.peak_granted_pages <= POOL_PAGES

    for record in results:
        serial = _replay_serially(catalog, record, execution)
        assert serial.algorithm == record.algorithm
        assert outcome_counters(serial.outcome) == outcome_counters(record.outcome)
        assert list(serial.relation.tuples) == list(record.relation.tuples), (
            f"snapshot isolation violated at epochs {record.epochs} "
            f"(seed {seed}, execution {execution!r})"
        )


# -- the sharded variant ------------------------------------------------------
#
# The same property, one level up: queries fan out over N shard worker
# processes, and the *merged* result must still equal a serial replay of
# the same fragment decomposition -- tuples in order, JoinOutcome
# counters, and the per-phase charged-I/O ledgers, at every shard count.
# The full shard-count x execution-mode matrix is `shard_slow` (the CI
# shard-stress job runs it, optionally overriding SHARD_COUNTS); an
# unmarked 2-shard smoke keeps the property in tier-1.

_SHARD_COUNTS = tuple(
    int(n) for n in os.environ.get("SHARD_COUNTS", "1,2,4,8").split(",")
)


def _replay_sharded_serially(catalog, record, execution: str, shards: int):
    """Re-run one recorded sharded query: same fragments, one at a time."""
    from repro.shard import ShardedQueryService

    serial_catalog = VersionedCatalog()
    for name, epoch in zip(("r", "s"), record.epochs):
        version = catalog.version_at(name, epoch)
        serial_catalog.register(version.schema, version.relation.tuples)
    method = "sweep" if record.algorithm == "forward-sweep" else record.algorithm
    with ShardedQueryService(
        serial_catalog,
        shards=shards,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        workers=1,
        execution=execution,
    ) as serial_service:
        with serial_service.open_session() as session:
            return session.join("r", "s", method=method)


def _run_sharded_property(seed: int, execution: str, shards: int) -> None:
    from repro.shard import ShardedQueryService

    catalog = _build_catalog(seed)
    results = []
    errors = []
    lock = threading.Lock()

    with ShardedQueryService(
        catalog,
        shards=shards,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        workers=2,
        execution=execution,
    ) as service:

        def run_session(session_number: int) -> None:
            rng = random.Random((seed, execution, shards, session_number).__repr__())
            script = _session_script(rng, n_ops=3)
            try:
                with service.open_session() as session:
                    for op in script:
                        if op[0] == "join":
                            result = session.join(
                                "r", "s", method=op[1], result_timeout=240.0
                            )
                            with lock:
                                results.append(result)
                        else:
                            session.append(
                                op[1], make_tuples(3, seed=op[2], n_keys=6, lifespan=50)
                            )
            except Exception as error:  # pragma: no cover
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=run_session, args=(n,)) for n in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        assert results, "the workload must actually produce queries"
        assert service.report()["redispatches"] == 0

    for record in results:
        serial = _replay_sharded_serially(catalog, record, execution, shards)
        assert serial.algorithm == record.algorithm
        assert outcome_counters(serial.outcome) == outcome_counters(record.outcome)
        assert list(serial.relation.tuples) == list(record.relation.tuples), (
            f"sharded bit-identity violated at epochs {record.epochs} "
            f"(seed {seed}, execution {execution!r}, shards {shards})"
        )
        # The merged per-phase charged-I/O ledgers replay exactly too.
        assert serial.charged_ops == record.charged_ops
        assert set(serial.phases) == set(record.phases)
        for name, stats in record.phases.items():
            assert serial.phases[name].as_dict() == stats.as_dict()
        assert serial.totals.as_dict() == record.totals.as_dict()


def test_sharded_concurrent_equals_serial_replay_smoke():
    """Tier-1 smoke: the sharded property at 2 shards, tuple execution."""
    _run_sharded_property(SEEDS[0], "tuple", shards=2)


@pytest.mark.shard_slow
@pytest.mark.parametrize("shards", _SHARD_COUNTS)
@pytest.mark.parametrize("execution", EXECUTION_MODES)
def test_sharded_concurrent_equals_serial_replay(execution: str, shards: int):
    _run_sharded_property(SEEDS[0], execution, shards)


@pytest.mark.shard_slow
@pytest.mark.parametrize("shards", _SHARD_COUNTS)
def test_sharded_result_multiset_stable_across_shard_counts(shards: int):
    """Every shard count produces the same result multiset and counters
    as the single-process service (n_result_tuples exact at every N)."""
    from repro.shard import ShardedQueryService

    with QueryService(
        _build_catalog(SEEDS[0]),
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
        plan_cache_entries=0,
        result_cache_entries=0,
    ) as single:
        with single.open_session() as session:
            base = session.join("r", "s", method="partition")
    with ShardedQueryService(
        _build_catalog(SEEDS[0]),
        shards=shards,
        pool_pages=POOL_PAGES,
        memory_pages=MEMORY_PAGES,
    ) as service:
        with service.open_session() as session:
            result = session.join("r", "s", method="partition")
    assert sorted(
        (t.key, t.payload, t.vs, t.ve) for t in result.relation.tuples
    ) == sorted((t.key, t.payload, t.vs, t.ve) for t in base.relation.tuples)
    assert result.outcome.n_result_tuples == base.outcome.n_result_tuples


@pytest.mark.parametrize("seed", SEEDS)
def test_queries_straddling_appends_see_consistent_epochs(seed: int):
    """Every observed epoch pair corresponds to versions that existed
    together: the outer epoch and inner epoch are each <= the snapshot
    epoch, and a query never mixes a pre-append outer with a post-append
    inner from a *later* snapshot."""
    catalog = _build_catalog(seed)
    results = []
    lock = threading.Lock()
    with QueryService(
        catalog, pool_pages=32, memory_pages=16, workers=3
    ) as service:

        def writer():
            with service.open_session() as session:
                for number in range(4):
                    session.append(
                        "r", make_tuples(2, seed=seed * 31 + number)
                    )

        def reader():
            with service.open_session() as session:
                for _ in range(6):
                    with lock:
                        results.append(session.join("r", "s"))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    for record in results:
        assert max(record.epochs) <= record.snapshot_epoch
        # The inner relation was never written: its epoch is the registration
        # epoch, whatever the outer's version is.
        assert record.epochs[1] == 2
    # Monotonic reads per session ordering: successive reader queries never
    # go back in time on the outer relation.
    outer_epochs = [record.epochs[0] for record in results]
    assert outer_epochs == sorted(outer_epochs)
