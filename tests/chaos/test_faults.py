"""Seeded transient-fault storms: retried, charged, and result-preserving.

With checksummed frames and a bounded retry policy, random read/write faults
and torn deliveries must never change the join's output -- only its cost.
Every retry attempt and backoff penalty shows up in the
``retry_reads``/``retry_writes`` counters of :class:`~repro.storage.iostats.
IOStatistics`, reconciling exactly with the resilience report.
"""

import pytest

from repro.core.partition_join import partition_join
from repro.resilience import FaultInjector
from repro.storage.layout import DiskLayout

from tests.chaos.conftest import (
    CHAOS_SEED,
    EXECUTION_MODES,
    SPEC,
    chaos_config,
    chaos_relation,
)

R = chaos_relation("r", 300, CHAOS_SEED + 3)
S = chaos_relation("s", 300, CHAOS_SEED + 4)


def storm_injector(seed):
    return FaultInjector(
        seed=seed,
        read_fault_rate=0.05,
        write_fault_rate=0.05,
        corruption_rate=0.02,
    )


class TestFaultStorm:
    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    def test_storm_preserves_results_and_charges_retries(self, execution):
        # A generous retry limit keeps permanent failure astronomically
        # unlikely at these rates, so the planned evaluation always finishes.
        config = chaos_config(execution, checkpoint_interval=0, retry_limit=6)
        clean_layout = DiskLayout(spec=SPEC)
        clean = partition_join(R, S, config, layout=clean_layout)

        layout = DiskLayout(
            spec=SPEC, fault_injector=storm_injector(CHAOS_SEED), checksums=True
        )
        run = partition_join(R, S, config, layout=layout)

        assert list(run.result.tuples) == list(clean.result.tuples)
        report = layout.resilience_report
        stats = layout.tracker.stats
        assert report.retries > 0
        assert report.transient_read_faults + report.transient_write_faults > 0
        assert report.corruptions_undetected == 0
        assert not report.degraded
        # Exact reconciliation: one tagged op per re-attempt plus the
        # deterministic backoff penalties, all charged on top of the
        # fault-free cost.
        assert stats.retry_ops == report.retries + report.backoff_ops
        assert stats.total_ops > clean_layout.tracker.stats.total_ops
        assert (
            stats.total_ops - stats.retry_ops
            == clean_layout.tracker.stats.total_ops
        )

    @pytest.mark.parametrize("offset", [0, 1, 2])
    def test_storm_is_reproducible_per_seed(self, offset):
        config = chaos_config("tuple", checkpoint_interval=0, retry_limit=6)
        reports = []
        for _ in range(2):
            layout = DiskLayout(
                spec=SPEC,
                fault_injector=storm_injector(CHAOS_SEED + offset),
                checksums=True,
            )
            partition_join(R, S, config, layout=layout)
            reports.append(layout.resilience_report)
        first, second = reports
        assert first.retries == second.retries
        assert first.backoff_ops == second.backoff_ops
        assert first.transient_read_faults == second.transient_read_faults
        assert first.transient_write_faults == second.transient_write_faults
        assert first.corruptions_detected == second.corruptions_detected

    def test_corruption_is_silent_without_checksums(self):
        config = chaos_config("tuple", checkpoint_interval=0)
        injector = FaultInjector(seed=CHAOS_SEED, corruption_rate=0.05)
        layout = DiskLayout(spec=SPEC, fault_injector=injector)
        try:
            partition_join(R, S, config, layout=layout)
        except Exception:
            # Torn pages delivered as good data may violate arbitrary
            # invariants downstream; without checksums that is exactly the
            # failure mode on offer.
            pass
        report = layout.resilience_report
        # The injector knows pages were torn; nothing detected or retried.
        assert report.corruptions_undetected > 0
        assert report.corruptions_detected == 0
        assert report.retries == 0

    def test_checksums_catch_the_same_stream(self):
        config = chaos_config("tuple", checkpoint_interval=0, retry_limit=6)
        injector = FaultInjector(seed=CHAOS_SEED, corruption_rate=0.05)
        layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
        run = partition_join(R, S, config, layout=layout)
        report = layout.resilience_report
        assert report.corruptions_detected > 0
        assert report.corruptions_undetected == 0
        clean = partition_join(
            R, S, config, layout=DiskLayout(spec=SPEC)
        )
        assert list(run.result.tuples) == list(clean.result.tuples)
