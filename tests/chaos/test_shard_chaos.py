"""Shard chaos: SIGKILL and hang a worker mid-fragment; recover bit-identically.

The coordinator's supervision ladder under deliberate violence, seeded by
``CHAOS_SEED`` like the rest of the chaos suite:

* a shard worker SIGKILLed between queries and *during* a fragment must
  cost one deterministic re-dispatch, never the query -- the merged
  result matches the undisturbed run tuple for tuple;
* a worker armed to hang (the CHAOS frame sleeps it past the fragment
  deadline) rides the same ladder with ``kind="shard-hang"``;
* nothing leaks: every socket channel deregisters and no shared-memory
  arena segments survive a test (the PR-6 leak discipline, extended to
  the shard transport).

Quick single-shot tests run in tier-1; the seeded kill-matrix is
``shard_slow`` (the CI shard-stress job runs it under a seed matrix).
"""

from __future__ import annotations

import glob
import os
import random
import signal

import pytest

from repro.engine.catalog import VersionedCatalog
from repro.exec.arena import active_arena_count
from repro.model.schema import RelationSchema
from repro.model.vtuple import VTTuple
from repro.resilience.supervisor import SupervisionPolicy
from repro.shard import ShardedQueryService, active_channel_count
from repro.time.interval import Interval

from tests.chaos.conftest import CHAOS_SEED


def shard_catalog(seed: int) -> VersionedCatalog:
    catalog = VersionedCatalog()
    rng = random.Random(seed)
    for name, n in (("r", 70), ("s", 55)):
        schema = RelationSchema(
            name, join_attributes=("emp",), payload_attributes=(f"p_{name}",)
        )
        tuples = []
        for i in range(n):
            vs = rng.randrange(400)
            tuples.append(
                VTTuple(
                    (rng.randrange(10),),
                    (f"{name}{i}",),
                    Interval(vs, vs + 1 + rng.randrange(50)),
                )
            )
        catalog.register(schema, tuples)
    return catalog


def fingerprint(relation):
    return [(t.key, t.payload, t.vs, t.ve) for t in relation.tuples]


def make_service(seed: int, *, shards: int = 2, timeout: float = 2.0):
    return ShardedQueryService(
        shard_catalog(seed),
        shards=shards,
        pool_pages=32,
        supervision=SupervisionPolicy(
            lane_timeout_seconds=timeout, max_redispatches=3
        ),
    )


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must leave zero open channels and zero arena segments."""
    channels_before = active_channel_count()
    shm_before = set(glob.glob("/dev/shm/repro_arena_*"))
    yield
    assert active_channel_count() == channels_before, "a test leaked a shard channel"
    assert active_arena_count() == 0, "a test leaked a shared-memory segment"
    leaked = set(glob.glob("/dev/shm/repro_arena_*")) - shm_before
    assert not leaked, f"leaked shm segments: {leaked}"


class TestSigkillRecovery:
    def test_kill_between_queries_recovers_identically(self):
        with make_service(CHAOS_SEED) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                os.kill(service.worker_pids()[1], signal.SIGKILL)
                recovered = session.join("r", "s", method="partition")
            assert fingerprint(recovered.relation) == fingerprint(baseline.relation)
            assert recovered.redispatches == 1
            report = service.report()
            assert report["redispatches"] == 1
            kinds = [d["kind"] for d in report["degradations"]]
            assert kinds == ["shard-death"]
            assert service.alive_workers() == 2  # respawned, not lost

    def test_kill_during_fragment_recovers_identically(self):
        """SIGKILL lands while the worker is inside the fragment (armed
        hang holds it there), so the coordinator sees EOF mid-query."""
        with make_service(CHAOS_SEED, timeout=30.0) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                service._arm_chaos_hang(0, 1.0)
                victim = service.worker_pids()[0]
                handle = session.submit_join("r", "s", method="partition")
                os.kill(victim, signal.SIGKILL)
                recovered = handle.result(timeout=240.0)
            assert fingerprint(recovered.relation) == fingerprint(baseline.relation)
            assert recovered.redispatches >= 1

    def test_counters_and_ledgers_survive_redispatch(self):
        with make_service(CHAOS_SEED) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                os.kill(service.worker_pids()[0], signal.SIGKILL)
                recovered = session.join("r", "s", method="partition")
            assert recovered.charged_ops == baseline.charged_ops
            assert recovered.totals.as_dict() == baseline.totals.as_dict()
            assert (
                recovered.outcome.n_result_tuples
                == baseline.outcome.n_result_tuples
            )


class TestHangRecovery:
    def test_hung_worker_times_out_and_redispatches(self):
        with make_service(CHAOS_SEED, timeout=1.0) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                service._arm_chaos_hang(1, 15.0)
                recovered = session.join("r", "s", method="partition")
            assert fingerprint(recovered.relation) == fingerprint(baseline.relation)
            report = service.report()
            assert "shard-hang" in [d["kind"] for d in report["degradations"]]

    def test_repeated_failures_quarantine_to_inline_execution(self):
        """A shard that hangs on every respawn exhausts the re-dispatch
        budget and retires to in-process execution -- the bottom rung of
        the ladder still answers bit-identically."""
        with make_service(CHAOS_SEED, timeout=1.0) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                service._arm_chaos_respawn_hang(1, 30.0)
                final = session.join(
                    "r", "s", method="partition", result_timeout=240.0
                )
            assert fingerprint(final.relation) == fingerprint(baseline.relation)
            report = service.report()
            assert report["workers"][1]["quarantined"]
            assert service.worker_pids()[1] is None
            assert "shard-quarantine" in [
                d["kind"] for d in report["degradations"]
            ]
            # The quarantined shard keeps serving inline, identically.
            with service.open_session() as session:
                again = session.join("r", "s", method="partition")
            assert fingerprint(again.relation) == fingerprint(baseline.relation)


@pytest.mark.shard_slow
class TestSeededKillMatrix:
    @pytest.mark.parametrize("shards", (2, 4))
    def test_random_victims_random_moments(self, shards: int):
        rng = random.Random(CHAOS_SEED * 1009 + shards)
        with make_service(CHAOS_SEED, shards=shards, timeout=2.0) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                expected = fingerprint(baseline.relation)
                for round_number in range(4):
                    victim = rng.randrange(shards)
                    pid = service.worker_pids()[victim]
                    if pid is not None:
                        if rng.random() < 0.5:
                            os.kill(pid, signal.SIGKILL)
                        else:
                            try:
                                service._arm_chaos_hang(victim, 10.0)
                            except Exception:
                                pass  # quarantined shards refuse the frame
                    result = session.join("r", "s", method="partition")
                    assert fingerprint(result.relation) == expected, (
                        f"round {round_number}, victim {victim}, "
                        f"seed {CHAOS_SEED}, shards {shards}"
                    )

    @pytest.mark.parametrize("execution", ("tuple", "zero-copy-sweep"))
    def test_kill_under_each_execution_mode(self, execution: str):
        with ShardedQueryService(
            shard_catalog(CHAOS_SEED + 7),
            shards=2,
            pool_pages=32,
            execution=execution,
            supervision=SupervisionPolicy(
                lane_timeout_seconds=2.0, max_redispatches=3
            ),
        ) as service:
            with service.open_session() as session:
                baseline = session.join("r", "s", method="partition")
                os.kill(service.worker_pids()[1], signal.SIGKILL)
                recovered = session.join("r", "s", method="partition")
            assert fingerprint(recovered.relation) == fingerprint(baseline.relation)
