"""Shared machinery of the chaos suite.

Every test in this package is deterministic given ``CHAOS_SEED`` (read from
the environment, default 0): relation contents, injected fault streams, and
crash points are all pure functions of it.  CI runs the suite under a small
matrix of seeds; a failure reproduces locally with the same value.
"""

import os
import random

from repro.core.partition_join import PartitionJoinConfig
from repro.model.relation import ValidTimeRelation
from repro.model.schema import RelationSchema
from repro.storage.page import PageSpec

#: Seed of the whole chaos run, settable from the environment (CI matrix).
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Small pages so modest relations still span many partitions.
SPEC = PageSpec(page_bytes=256, tuple_bytes=32)

EXECUTION_MODES = (
    "tuple",
    "batch",
    "batch-parallel",
    "batch-parallel-sweep",
    "zero-copy-sweep",
)


def chaos_relation(name: str, n_tuples: int, seed: int) -> ValidTimeRelation:
    """A seeded valid-time relation with per-relation payload attributes."""
    schema = RelationSchema(
        name, join_attributes=("emp",), payload_attributes=(f"p_{name}",)
    )
    rng = random.Random(seed)
    rows = []
    for i in range(n_tuples):
        vs = rng.randrange(480)
        rows.append((rng.randrange(12), f"{name}{i}", vs, vs + 1 + rng.randrange(64)))
    return ValidTimeRelation.from_rows(schema, rows)


def chaos_config(execution: str = "tuple", **overrides) -> PartitionJoinConfig:
    """The suite's standard configuration: tight memory, frequent checkpoints."""
    settings = dict(
        memory_pages=8,
        page_spec=SPEC,
        checkpoint_interval=2,
        execution=execution,
    )
    settings.update(overrides)
    return PartitionJoinConfig(**settings)
