"""Kill the sweep at the k-th I/O, resume, and demand bit-identical results.

The central resilience claim: a partition join interrupted at *any* charged
disk operation and restarted with :func:`repro.core.partition_join.
resume_join` produces exactly the tuples (and exactly the outcome counters)
of an uninterrupted run, in every execution mode -- including the pipelined
``"batch-parallel-sweep"``, whose prefetched pages and deferred writes are
volatile state that must vanish cleanly at the crash.
"""

import pytest

from repro.core.partition_join import partition_join, resume_join
from repro.model.errors import CheckpointError, SimulatedCrashError
from repro.resilience import FaultInjector, RecoveryLog
from repro.storage.layout import DiskLayout

from tests.chaos.conftest import (
    CHAOS_SEED,
    EXECUTION_MODES,
    SPEC,
    chaos_config,
    chaos_relation,
)

R = chaos_relation("r", 400, CHAOS_SEED + 1)
S = chaos_relation("s", 400, CHAOS_SEED + 2)

_ORACLES = {}


def oracle(execution):
    """The uninterrupted run each crashed run must reproduce exactly."""
    if execution not in _ORACLES:
        run = partition_join(
            R, S, chaos_config(execution), layout=DiskLayout(spec=SPEC)
        )
        _ORACLES[execution] = run
    return _ORACLES[execution]


def crashing_layout(at_op=None):
    injector = FaultInjector(seed=CHAOS_SEED)
    if at_op is not None:
        injector.schedule_crash(at_op=at_op)
    return DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)


def assert_same_outcome(run, expected):
    assert list(run.result.tuples) == list(expected.result.tuples)
    assert run.outcome.n_result_tuples == expected.outcome.n_result_tuples
    assert run.outcome.overflow_blocks == expected.outcome.overflow_blocks
    assert run.outcome.cache_tuples_peak == expected.outcome.cache_tuples_peak
    assert run.outcome.cache_tuples_spilled == expected.outcome.cache_tuples_spilled


class TestCrashResume:
    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    def test_crash_at_kth_op_resumes_bit_identical(self, execution):
        expected = oracle(execution)

        # Probe run: same checkpointed configuration, injector attached but
        # no crash armed -- its operation count bounds the crash sweep.
        probe_layout = crashing_layout()
        probe = partition_join(
            R, S, chaos_config(execution), layout=probe_layout, recovery=RecoveryLog()
        )
        assert_same_outcome(probe, expected)
        assert probe_layout.resilience_report.checkpoints_written >= 1
        total_ops = probe_layout.disk.fault_injector.ops_seen
        assert total_ops > 0

        stride = max(1, total_ops // 8)
        for k in range(1, total_ops + 1, stride):
            layout = crashing_layout(at_op=k)
            recovery = RecoveryLog()
            config = chaos_config(execution)
            try:
                run = partition_join(R, S, config, layout=layout, recovery=recovery)
            except SimulatedCrashError:
                run = resume_join(R, S, config, layout=layout, recovery=recovery)
                assert layout.resilience_report.resumes == 1
            assert_same_outcome(run, expected)

    def test_double_crash_needs_two_resumes(self):
        expected = oracle("tuple")
        layout = crashing_layout()
        injector = layout.disk.fault_injector
        recovery = RecoveryLog()
        config = chaos_config("tuple")

        # First crash mid-run, second crash re-armed during the resume.
        injector.schedule_crash(at_op=120)
        with pytest.raises(SimulatedCrashError):
            partition_join(R, S, config, layout=layout, recovery=recovery)
        injector.schedule_crash(at_op=injector.ops_seen + 150)
        with pytest.raises(SimulatedCrashError):
            resume_join(R, S, config, layout=layout, recovery=recovery)
        run = resume_join(R, S, config, layout=layout, recovery=recovery)

        assert_same_outcome(run, expected)
        assert layout.resilience_report.resumes == 2
        assert recovery.resumes == 2

    def test_resume_requires_checkpointing_enabled(self):
        config = chaos_config("tuple", checkpoint_interval=0)
        with pytest.raises(CheckpointError, match="checkpoint"):
            resume_join(
                R,
                S,
                config,
                layout=DiskLayout(spec=SPEC),
                recovery=RecoveryLog(),
            )


class TestPipelinedSweepCrash:
    """Mid-partition crashes of the pipelined sweep specifically.

    A crash between two checkpoint barriers catches the pipeline with pages
    read ahead but not consumed and cache tuples deferred but not written.
    Both are volatile: the resumed run must replay to bit-identical results,
    and the pipeline tags must stay consistent with the main buckets across
    the crash/resume boundary (a tag can only mark an op that was charged).
    """

    @pytest.mark.parametrize("fraction", [0.35, 0.55, 0.8])
    def test_crash_mid_partition_resumes_bit_identical(self, fraction):
        execution = "batch-parallel-sweep"
        expected = oracle(execution)

        probe_layout = crashing_layout()
        probe = partition_join(
            R, S, chaos_config(execution), layout=probe_layout, recovery=RecoveryLog()
        )
        assert_same_outcome(probe, expected)
        total_ops = probe_layout.disk.fault_injector.ops_seen

        k = max(1, int(total_ops * fraction))
        layout = crashing_layout(at_op=k)
        recovery = RecoveryLog()
        config = chaos_config(execution)
        try:
            run = partition_join(R, S, config, layout=layout, recovery=recovery)
        except SimulatedCrashError:
            run = resume_join(R, S, config, layout=layout, recovery=recovery)
            assert layout.resilience_report.resumes == 1
        assert_same_outcome(run, expected)

        stats = layout.tracker.stats
        assert stats.prefetch_reads <= stats.reads
        assert stats.writeback_writes <= stats.writes


class TestSwappedSinglePartitionResume:
    """Crash/resume through the single-partition shortcut's swap.

    When one relation fits in the buffer area, ``_single_partition_join``
    makes the *smaller* side the outer partition and compensates for the
    argument flip inside its own ``pair_fn`` wrapper.  The checkpointed
    context stores the partitions in that swapped orientation, so a resume
    that forgets the flip replays every pair payload-reversed -- identical
    counters, wrong tuples.  Regression for exactly that: r spans more
    pages than the buffer, s fits, so swap is forced.
    """

    #: 80 tuples = 10 pages of r (exceeds the 5-page outer area) against
    #: 16 tuples = 2 pages of s (fits): single partition, swapped.
    R_SMALL = chaos_relation("rswap", 80, CHAOS_SEED + 5)
    S_SMALL = chaos_relation("sswap", 16, CHAOS_SEED + 6)

    @pytest.mark.parametrize("execution", EXECUTION_MODES)
    def test_resume_preserves_pair_orientation(self, execution):
        config = chaos_config(execution)
        expected = partition_join(
            self.R_SMALL, self.S_SMALL, config, layout=DiskLayout(spec=SPEC)
        )
        assert expected.plan.num_partitions == 1

        probe_layout = crashing_layout()
        probe = partition_join(
            self.R_SMALL,
            self.S_SMALL,
            config,
            layout=probe_layout,
            recovery=RecoveryLog(),
        )
        assert_same_outcome(probe, expected)
        total_ops = probe_layout.disk.fault_injector.ops_seen

        stride = max(1, total_ops // 6)
        for k in range(1, total_ops + 1, stride):
            layout = crashing_layout(at_op=k)
            recovery = RecoveryLog()
            try:
                run = partition_join(
                    self.R_SMALL, self.S_SMALL, config, layout=layout, recovery=recovery
                )
            except SimulatedCrashError:
                run = resume_join(
                    self.R_SMALL, self.S_SMALL, config, layout=layout, recovery=recovery
                )
            assert_same_outcome(run, expected)


class TestCheckpointAccounting:
    def test_checkpoints_are_charged_io(self):
        plain_layout = DiskLayout(spec=SPEC)
        plain = partition_join(
            R, S, chaos_config("tuple", checkpoint_interval=0), layout=plain_layout
        )
        checked_layout = DiskLayout(spec=SPEC)
        checked = partition_join(
            R, S, chaos_config("tuple"), layout=checked_layout, recovery=RecoveryLog()
        )
        assert_same_outcome(checked, plain)
        report = checked_layout.resilience_report
        assert report.checkpoints_written >= 1
        # Checkpoint pages are real writes on the charged stream.
        assert (
            checked_layout.tracker.stats.total_ops
            > plain_layout.tracker.stats.total_ops
        )

    def test_uncrashed_run_commits_recovery_state(self):
        recovery = RecoveryLog()
        run = partition_join(
            R, S, chaos_config("tuple"), layout=DiskLayout(spec=SPEC), recovery=recovery
        )
        assert run.recovery is recovery
        assert recovery.resumable
        assert recovery.plan is not None
        assert recovery.checkpoint is not None
