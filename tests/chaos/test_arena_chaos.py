"""Chaos tests for the shared-memory arena fan-out of the zero-copy sweep.

Two claims under fire:

1. **No segment survives the join.**  Shared-memory segments are volatile
   per-sweep scratch; success, simulated crashes, lane death, and
   create-failure degradation must all funnel through ``close()`` and
   unlink every segment (``active_arena_count() == 0`` after each test).
2. **The arena is a pure transport.**  Killing a lane mid-write, crashing
   the whole sweep between checkpoints and resuming, or refusing segment
   creation outright must leave the join's tuples and outcome counters
   bit-identical to an undisturbed run.
"""

import pytest

from repro.core.partition_join import partition_join, resume_join
from repro.exec.backend import HAVE_NUMPY
from repro.model.errors import SimulatedCrashError
from repro.resilience import FaultInjector, RecoveryLog
from repro.storage.layout import DiskLayout

from tests.chaos.conftest import CHAOS_SEED, SPEC, chaos_config, chaos_relation

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the shared-memory arena is numpy-only"
)

if HAVE_NUMPY:
    from repro.exec import arena as arena_mod
    from repro.exec import sweep_parallel as sweep
    from repro.exec.arena import active_arena_count, copy_counters, reset_copy_counters

R = chaos_relation("ar", 400, CHAOS_SEED + 11)
S = chaos_relation("as", 400, CHAOS_SEED + 12)

_ORACLE = []


def oracle():
    """An undisturbed zero-copy run (in-process lanes; no pool needed)."""
    if not _ORACLE:
        _ORACLE.append(
            partition_join(
                R, S, chaos_config("zero-copy-sweep"), layout=DiskLayout(spec=SPEC)
            )
        )
    return _ORACLE[0]


def assert_same_outcome(run, expected):
    assert list(run.result.tuples) == list(expected.result.tuples)
    assert run.outcome.n_result_tuples == expected.outcome.n_result_tuples
    assert run.outcome.overflow_blocks == expected.outcome.overflow_blocks
    assert run.outcome.cache_tuples_peak == expected.outcome.cache_tuples_peak
    assert run.outcome.cache_tuples_spilled == expected.outcome.cache_tuples_spilled


@pytest.fixture(autouse=True)
def no_leaked_segments():
    reset_copy_counters()
    yield
    assert active_arena_count() == 0, "a join leaked a shared-memory segment"


@pytest.fixture
def forced_lanes(monkeypatch):
    """Force a real 2-lane pool + shared arena even on a 1-core runner."""
    monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
    monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)


def pooled_config(**overrides):
    return chaos_config("zero-copy-sweep", sweep_workers=2, **overrides)


class TestArenaLifecycle:
    def test_success_path_unlinks_segments(self, forced_lanes):
        run = partition_join(R, S, pooled_config(), layout=DiskLayout(spec=SPEC))
        assert_same_outcome(run, oracle())
        # The shared transport actually carried the fan-out...
        assert copy_counters()["bytes_shared"] > 0
        # ...and nothing survived the join.
        assert active_arena_count() == 0

    def test_crash_unwinding_unlinks_segments(self, forced_lanes):
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.schedule_crash(at_op=150)
        layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
        with pytest.raises(SimulatedCrashError):
            partition_join(R, S, pooled_config(), layout=layout, recovery=RecoveryLog())
        assert active_arena_count() == 0

    def test_segment_create_failure_degrades_bit_identical(
        self, forced_lanes, monkeypatch
    ):
        """No /dev/shm (sandboxes): pickled dispatch, same results."""

        def refuse(self, *args, **kwargs):
            raise OSError("shared memory refused")

        monkeypatch.setattr(arena_mod.ShmLaneDispatcher, "__init__", refuse)
        run = partition_join(R, S, pooled_config(), layout=DiskLayout(spec=SPEC))
        assert_same_outcome(run, oracle())
        assert copy_counters()["bytes_shared"] == 0


class TestLaneCrashMidWrite:
    def test_lane_death_mid_write_degrades_bit_identical(
        self, forced_lanes, monkeypatch
    ):
        """Kill the shared dispatch after real columns hit the arena: the
        engine must drop to in-process probing with identical results."""
        original = arena_mod.ShmLaneDispatcher._dispatch_shared
        state = {"calls": 0}

        def dying(self, shared, lane_tasks):
            state["calls"] += 1
            if state["calls"] == 3:  # columns of dispatches 1-2 are live
                raise RuntimeError("lane died mid-write")
            return original(self, shared, lane_tasks)

        monkeypatch.setattr(arena_mod.ShmLaneDispatcher, "_dispatch_shared", dying)
        run = partition_join(R, S, pooled_config(), layout=DiskLayout(spec=SPEC))
        assert state["calls"] >= 3, "the dispatch never reached the crash point"
        assert_same_outcome(run, oracle())
        assert active_arena_count() == 0


class TestCrashResumeZeroCopy:
    def test_resume_recreates_arena_and_stays_bit_identical(self, forced_lanes):
        """Crash the pooled zero-copy sweep at several charged ops; resume
        must rebuild fresh segments of the checkpointed geometry and land on
        the undisturbed run exactly."""
        expected = oracle()

        probe_injector = FaultInjector(seed=CHAOS_SEED)
        probe_layout = DiskLayout(
            spec=SPEC, fault_injector=probe_injector, checksums=True
        )
        probe = partition_join(
            R, S, pooled_config(), layout=probe_layout, recovery=RecoveryLog()
        )
        assert_same_outcome(probe, expected)
        total_ops = probe_injector.ops_seen
        assert total_ops > 0

        # Three crash points spread over the run (the exhaustive k-sweep
        # lives in test_crash_resume.py; here each run pays for a real pool).
        for k in (total_ops // 4, total_ops // 2, (3 * total_ops) // 4):
            injector = FaultInjector(seed=CHAOS_SEED)
            injector.schedule_crash(at_op=max(1, k))
            layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
            recovery = RecoveryLog()
            config = pooled_config()
            try:
                run = partition_join(R, S, config, layout=layout, recovery=recovery)
            except SimulatedCrashError:
                assert active_arena_count() == 0  # crash unlinked everything
                run = resume_join(R, S, config, layout=layout, recovery=recovery)
                assert layout.resilience_report.resumes == 1
            assert_same_outcome(run, expected)
            assert active_arena_count() == 0
