"""Graceful degradation: the join survives what it cannot retry away.

Three rungs of the ladder, plus the exception-safety regression that a
failed join never leaks buffer-pool reservations:

* a page that fails permanently mid-sweep degrades the run to a block
  nested-loop over the base relations (same tuples, different order);
* a buffer budget smaller than configured triggers a re-plan before the
  sweep starts;
* a budget reduction *during* the sweep engages the Section 3.4 overflow
  machinery instead of aborting.
"""

import pytest

from repro.core.partition_join import partition_join, resume_join
from repro.model.errors import PermanentIOFaultError, SimulatedCrashError
from repro.resilience import BufferReduction, FaultInjector, RecoveryLog
from repro.storage.buffer import BufferPool
from repro.storage.layout import DiskLayout

from tests.chaos.conftest import CHAOS_SEED, SPEC, chaos_config, chaos_relation

R = chaos_relation("r", 300, CHAOS_SEED + 5)
S = chaos_relation("s", 300, CHAOS_SEED + 6)


def sorted_tuples(run):
    return sorted(run.result.tuples, key=repr)


@pytest.fixture(scope="module")
def oracle():
    return partition_join(
        R, S, chaos_config("tuple", checkpoint_interval=0), layout=DiskLayout(spec=SPEC)
    )


class TestNestedLoopFallback:
    def test_permanent_read_failure_falls_back(self, oracle):
        injector = FaultInjector(seed=CHAOS_SEED)
        # The backward sweep reads partition 0 last; make its first page
        # fail more times than the retry policy tolerates.
        injector.fail_read("r_part0", 0, times=20)
        layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
        run = partition_join(
            R, S, chaos_config("tuple", checkpoint_interval=0), layout=layout
        )
        assert sorted_tuples(run) == sorted_tuples(oracle)
        assert run.outcome.n_result_tuples == oracle.outcome.n_result_tuples
        report = layout.resilience_report
        assert report.degraded
        assert [e.kind for e in report.degradations] == ["nested-loop-fallback"]
        assert report.permanent_failures
        # The fallback ran as its own accounted phase.
        assert "degraded-join" in layout.tracker.phases

    def test_fallback_can_be_disabled(self):
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.fail_read("r_part0", 0, times=20)
        layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
        config = chaos_config(
            "tuple", checkpoint_interval=0, degraded_fallback=False
        )
        with pytest.raises(PermanentIOFaultError) as excinfo:
            partition_join(R, S, config, layout=layout)
        assert excinfo.value.context["extent"] == "r_part0"
        assert excinfo.value.context["page_index"] == 0

    def test_stored_corruption_after_crash_degrades_the_resume(self, oracle):
        injector = FaultInjector(seed=CHAOS_SEED)
        layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
        recovery = RecoveryLog()
        config = chaos_config("tuple")

        probe_layout = DiskLayout(
            spec=SPEC, fault_injector=FaultInjector(seed=CHAOS_SEED), checksums=True
        )
        partition_join(R, S, config, layout=probe_layout, recovery=RecoveryLog())
        total_ops = probe_layout.disk.fault_injector.ops_seen

        injector.schedule_crash(at_op=int(total_ops * 0.7))
        with pytest.raises(SimulatedCrashError):
            partition_join(R, S, config, layout=layout, recovery=recovery)

        # Between the crash and the restart, a stored partition page rots.
        # Checksums make every re-read fail, exhausting the retry policy.
        extent = layout.disk.find_extent("r_part0")
        assert extent is not None and extent.n_pages > 0
        layout.disk.corrupt_stored(extent, 0)

        run = resume_join(R, S, config, layout=layout, recovery=recovery)
        assert sorted_tuples(run) == sorted_tuples(oracle)
        report = layout.resilience_report
        assert report.resumes == 1
        assert report.corruptions_detected > 0
        assert "nested-loop-fallback" in [e.kind for e in report.degradations]


class TestReplanAndReduction:
    def test_small_pool_triggers_replan(self, oracle):
        pool = BufferPool(6)
        layout = DiskLayout(spec=SPEC)
        run = partition_join(
            R,
            S,
            chaos_config("tuple", checkpoint_interval=0),
            layout=layout,
            pool=pool,
        )
        assert sorted_tuples(run) == sorted_tuples(oracle)
        report = layout.resilience_report
        assert [e.kind for e in report.degradations] == ["replan"]
        assert pool.used_pages == 0

    def test_midsweep_buffer_reduction_uses_overflow_blocks(self, oracle):
        reduction = BufferReduction(at_position=2, buff_size=1)
        layout = DiskLayout(spec=SPEC)
        run = partition_join(
            R,
            S,
            chaos_config(
                "tuple", checkpoint_interval=0, buffer_reductions=(reduction,)
            ),
            layout=layout,
        )
        assert sorted_tuples(run) == sorted_tuples(oracle)
        assert run.outcome.n_result_tuples == oracle.outcome.n_result_tuples
        assert run.outcome.overflow_blocks > oracle.outcome.overflow_blocks
        report = layout.resilience_report
        assert "buffer-reduction" in [e.kind for e in report.degradations]


class TestPoolLeakRegression:
    def test_failed_join_releases_every_reservation(self):
        injector = FaultInjector(seed=CHAOS_SEED)
        layout = DiskLayout(spec=SPEC, fault_injector=injector, checksums=True)
        config = chaos_config("tuple")

        probe_layout = DiskLayout(
            spec=SPEC, fault_injector=FaultInjector(seed=CHAOS_SEED), checksums=True
        )
        partition_join(R, S, config, layout=probe_layout, recovery=RecoveryLog())
        total_ops = probe_layout.disk.fault_injector.ops_seen

        pool = BufferPool(config.memory_pages)
        injector.schedule_crash(at_op=int(total_ops * 0.7))
        with pytest.raises(SimulatedCrashError):
            partition_join(
                R, S, config, layout=layout, recovery=RecoveryLog(), pool=pool
            )
        # The sweep died mid-flight, yet every reservation was returned.
        assert pool.used_pages == 0
        assert pool.free_pages == pool.total_pages
