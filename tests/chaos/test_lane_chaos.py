"""Chaos tests for lane supervision: kill, hang, and poison real workers.

The acceptance contract under fire: a SIGKILLed lane, a hung lane, and a
corrupted result slab must each recover through the supervisor's
deterministic re-dispatch with results, ``JoinOutcome`` counters, and the
full per-phase charged-I/O ledgers **bit-identical** to an undisturbed run
-- recovery visible only in ``lane-*`` degradation events and the
supervisor's own ledger, never in the charged bill -- and with zero leaked
shared-memory segments, in both pooled sweep modes and under concurrent
service load.
"""

import pytest

from repro.core.partition_join import partition_join
from repro.exec.backend import HAVE_NUMPY
from repro.resilience import FaultInjector
from repro.resilience.supervisor import clear_lane_injector, install_lane_injector
from repro.storage.layout import DiskLayout

from tests.chaos.conftest import CHAOS_SEED, SPEC, chaos_config, chaos_relation

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="lane pools only dispatch with numpy workers"
)

if HAVE_NUMPY:
    from repro.exec import sweep_parallel as sweep
    from repro.exec.arena import active_arena_count, reset_copy_counters

R = chaos_relation("lr", 400, CHAOS_SEED + 21)
S = chaos_relation("ls", 400, CHAOS_SEED + 22)

#: Both pooled sweep modes must survive the same faults.
POOLED_MODES = ("batch-parallel-sweep", "zero-copy-sweep")

_BASELINES = {}


@pytest.fixture(autouse=True)
def no_leaked_segments():
    reset_copy_counters()
    yield
    assert active_arena_count() == 0, "a join leaked a shared-memory segment"


@pytest.fixture
def forced_lanes(monkeypatch):
    """Force a real 2-lane pool even on a 1-core runner.

    The service path takes the default lane count, so the default itself is
    lifted to 2 as well (the join's answer never depends on it)."""
    monkeypatch.setattr(sweep, "OVERSUBSCRIBE", True)
    monkeypatch.setattr(sweep, "MIN_LANE_ROWS", 0)
    monkeypatch.setattr(sweep, "default_sweep_workers", lambda: 2)


def pooled_config(execution, **overrides):
    overrides.setdefault("sweep_workers", 2)
    overrides.setdefault("lane_timeout_seconds", 10.0)
    return chaos_config(execution, **overrides)


def undisturbed(execution):
    """A memoized pooled-but-undisturbed run of *execution* (per process)."""
    if execution not in _BASELINES:
        layout = DiskLayout(
            spec=SPEC, columnar=(execution == "zero-copy-sweep")
        )
        _BASELINES[execution] = partition_join(
            R, S, pooled_config(execution), layout=layout
        )
    return _BASELINES[execution]


def disturbed_layout(injector, execution):
    return DiskLayout(
        spec=SPEC,
        fault_injector=injector,
        columnar=(execution == "zero-copy-sweep"),
    )


def assert_bit_identical(run, expected):
    """Results, outcome counters, AND the tagged charged-I/O ledgers."""
    assert list(run.result.tuples) == list(expected.result.tuples)
    assert run.outcome.n_result_tuples == expected.outcome.n_result_tuples
    assert run.outcome.overflow_blocks == expected.outcome.overflow_blocks
    assert run.outcome.cache_tuples_peak == expected.outcome.cache_tuples_peak
    assert (
        run.outcome.cache_tuples_spilled == expected.outcome.cache_tuples_spilled
    )
    # The supervisor's backoff lands on its own ledger, never the disk's:
    # every per-phase charged counter must match the undisturbed run.
    assert (
        run.layout.tracker.stats.as_dict()
        == expected.layout.tracker.stats.as_dict()
    )
    assert {
        name: stats.as_dict() for name, stats in run.layout.tracker.phases.items()
    } == {
        name: stats.as_dict()
        for name, stats in expected.layout.tracker.phases.items()
    }


def lane_kinds(layout):
    return [
        event.kind
        for event in layout.resilience_report.degradations
        if event.kind.startswith("lane-")
    ]


class TestLaneDeath:
    @pytest.mark.parametrize("execution", POOLED_MODES)
    def test_sigkilled_lane_recovers_bit_identical(self, forced_lanes, execution):
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.kill_lane(at_dispatch=1)
        layout = disturbed_layout(injector, execution)
        run = partition_join(R, S, pooled_config(execution), layout=layout)
        assert "lane-death" in lane_kinds(layout)
        assert_bit_identical(run, undisturbed(execution))


class TestLaneHang:
    @pytest.mark.parametrize("execution", POOLED_MODES)
    def test_hung_lane_recovers_bit_identical(self, forced_lanes, execution):
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.hang_lane(at_dispatch=1)
        layout = disturbed_layout(injector, execution)
        run = partition_join(
            R,
            S,
            pooled_config(execution, lane_timeout_seconds=0.5),
            layout=layout,
        )
        assert "lane-hang" in lane_kinds(layout)
        assert_bit_identical(run, undisturbed(execution))


class TestSlabPoison:
    def test_corrupted_slab_recomputes_bit_identical(self, forced_lanes):
        """Zero-copy only: the CRC catches the scripted corruption and the
        dispatcher recomputes the whole dispatch through pickling."""
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.poison_slab(at_gather=1)
        layout = disturbed_layout(injector, "zero-copy-sweep")
        run = partition_join(
            R, S, pooled_config("zero-copy-sweep"), layout=layout
        )
        assert "lane-poison" in lane_kinds(layout)
        assert_bit_identical(run, undisturbed("zero-copy-sweep"))


class TestQuarantineLadder:
    def test_repeated_death_quarantines_then_retires(self, forced_lanes):
        """Kills on consecutive dispatch attempts walk 3 lanes -> 2 -> 1:
        two quarantines, then retirement to in-process -- same answer."""
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.kill_lane(at_dispatch=1)
        injector.kill_lane(at_dispatch=2)  # the re-dispatch of attempt 1
        layout = disturbed_layout(injector, "zero-copy-sweep")
        run = partition_join(
            R,
            S,
            pooled_config(
                "zero-copy-sweep",
                sweep_workers=3,
                lane_quarantine_after=1,
            ),
            layout=layout,
        )
        kinds = lane_kinds(layout)
        assert kinds.count("lane-death") == 2
        assert kinds.count("lane-quarantine") == 2
        assert "lane-retired" in kinds
        base = partition_join(
            R,
            S,
            pooled_config(
                "zero-copy-sweep", sweep_workers=3, lane_quarantine_after=1
            ),
            layout=DiskLayout(spec=SPEC, columnar=True),
        )
        assert_bit_identical(run, base)


class TestServiceUnderLaneChaos:
    def test_concurrent_service_load_survives_lane_death(self, forced_lanes):
        """Kill a lane while a service runs concurrent pooled queries: every
        query must answer exactly what an undisturbed service answers."""
        from repro.service import QueryService
        from repro.storage.page import PageSpec

        from tests.service.conftest import make_catalog, outcome_counters

        spec = PageSpec(page_bytes=256, tuple_bytes=32)

        def serve(injector=None):
            if injector is not None:
                install_lane_injector(injector)
            try:
                with QueryService(
                    make_catalog(220, 200, seed=CHAOS_SEED),
                    pool_pages=64,
                    memory_pages=8,
                    workers=3,
                    execution="zero-copy-sweep",
                    page_spec=spec,
                    result_cache_entries=0,  # force every query to evaluate
                ) as svc:
                    sessions = [
                        svc.open_session(label=f"c{i}", method="partition")
                        for i in range(3)
                    ]
                    handles = [
                        session.submit_join("r", "s") for session in sessions
                    ]
                    results = [handle.result(120.0) for handle in handles]
                    for session in sessions:
                        session.close()
                    recovered = (
                        svc.metrics_snapshot()
                        .get("repro_service_lane_disturbed_total", {})
                        .get("series", {})
                        .get("", 0.0)
                    )
                    return results, recovered
            finally:
                clear_lane_injector()

        expected, baseline_recovered = serve()
        assert baseline_recovered == 0.0
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.kill_lane(at_dispatch=1)
        disturbed, recovered = serve(injector)
        assert recovered >= 1.0, "the scripted lane kill never fired"

        assert len(disturbed) == len(expected) == 3
        for got, want in zip(disturbed, expected):
            assert list(got.relation.tuples) == list(want.relation.tuples)
            assert outcome_counters(got.outcome) == outcome_counters(want.outcome)
            assert got.charged_ops == want.charged_ops
        assert active_arena_count() == 0
