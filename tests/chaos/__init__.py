"""Chaos suite: crash/resume, fault storms, and graceful degradation."""
